package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/resilience"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// resilienceExperiment drives a sequential-alternatives executor hardened
// with the full resilience-policy stack (circuit breaker, budgeted
// retries, bulkhead, deadlines, degradation ladder) through a
// deterministic chaos campaign. The deterministic phases reproduce the
// preventive-trigger behavior exactly: the breaker opens once on the
// Bohrbug primary and stays open (no reprobe within the run), the
// correlated burst is absorbed by the last-good ladder, and the overload
// phase is shed fast by the bulkhead rather than queueing.
func resilienceExperiment() Experiment {
	return Experiment{
		ID:       "resilience",
		Index:    "E22",
		Artifact: "Table 1 (preventive triggers) + Section 3.2 (graceful degradation)",
		Title:    "Resilience policies under a deterministic chaos campaign",
		Run: func(seed uint64) ([]*stats.Table, error) {
			camp := &faultmodel.Campaign{
				Name:    "sim",
				Seed:    seed,
				MaxHang: faultmodel.Duration(time.Second),
				// Overload runs while the alternates are still healthy, so
				// its 2ms spikes hit real executions and saturate the
				// bulkhead; the later phases are fully deterministic (the
				// ladder serves exactly the correlated burst).
				Phases: []faultmodel.ChaosPhase{
					{Name: "calm", Requests: 100},
					{Name: "overload", Requests: 200, Concurrency: 32,
						LatencySpike: 1, SpikeDelay: faultmodel.Duration(2 * time.Millisecond)},
					{Name: "hangs", Requests: 40, Hangs: 0.5, Variants: []string{"alternate-1"}},
					{Name: "correlated", Requests: 100, ErrorBurst: 1, Correlated: true},
				},
			}

			// The primary carries a Bohrbug that fails every request; the
			// two alternates are correct. OpenFor exceeds the run length,
			// so the breaker's single open transition is deterministic.
			mk := func(name string, broken bool) core.Variant[int, int] {
				base := core.NewVariant(name, func(_ context.Context, x int) (int, error) {
					if broken {
						return 0, fmt.Errorf("bohrbug: deterministic failure")
					}
					return x, nil
				})
				return &faultmodel.Chaos[int, int]{Base: base, Campaign: camp}
			}
			variants := []core.Variant[int, int]{
				mk("primary", true),
				mk("alternate-1", false),
				mk("alternate-2", false),
			}

			collector := obs.NewCollector()
			breakers := resilience.NewBreakers(resilience.BreakerConfig{
				ConsecutiveFailures: 5,
				OpenFor:             time.Hour, // no reprobe within the run
			})
			ladder := resilience.NewLadder[int, int]().CacheLastGood()
			bulkhead := resilience.NewBulkhead(resilience.BulkheadConfig{
				MaxConcurrent: 4,
				MaxWaiting:    4,
			})
			accept := func(_ int, _ int) error { return nil }
			exec, err := pattern.NewSequentialAlternatives(variants, accept, nil,
				pattern.WithObserver(obs.Combine(collector, observer)),
				pattern.WithBreaker(breakers),
				pattern.WithRetryPolicy(resilience.RetryPolicy{
					BaseBackoff: 50 * time.Microsecond,
					MaxBackoff:  500 * time.Microsecond,
					Jitter:      0.5,
					Seed:        seed,
					Budget:      resilience.NewRetryBudget(100, 1),
				}),
				pattern.WithBulkhead(bulkhead),
				pattern.WithDeadline(resilience.DeadlinePolicy{
					Request: 250 * time.Millisecond,
					Variant: 10 * time.Millisecond,
				}),
				pattern.WithFallback(ladder),
			)
			if err != nil {
				return nil, err
			}

			rep, err := faultmodel.RunCampaign(context.Background(), camp, exec,
				func(req uint64) int { return int(req) }, collector)
			if err != nil {
				return nil, err
			}

			outcomes := stats.NewTable(
				fmt.Sprintf("Chaos campaign outcomes (seed %d; deterministic phases)", seed),
				"phase", "requests", "served", "failed")
			for _, p := range rep.Phases {
				if p.Name == "overload" {
					// Overload tallies depend on real scheduling; the
					// deterministic claims about it are in the next table.
					continue
				}
				outcomes.AddRow(p.Name, p.Requests, p.Succeeded, p.Requests-p.Succeeded)
			}

			policies := stats.NewTable(
				"Preventive-trigger actions (breaker, shedder, ladder)",
				"policy action", "value")
			policies.AddRow("breaker state on Bohrbug primary", breakers.State("primary").String())
			policies.AddRow("breaker opens (all variants)", breakers.Opens())
			policies.AddRow("last-good ladder serves", ladder.CacheServes())
			var overload faultmodel.PhaseReport
			for _, p := range rep.Phases {
				if p.Name == "overload" {
					overload = p
				}
			}
			policies.AddRow("overload requests shed fast", yesNo(overload.Shed > 0))
			policies.AddRow("overload served + shed = offered",
				yesNo(overload.Succeeded+overload.Shed+overload.Failed+overload.Degraded+overload.BreakerFast == overload.Requests))
			return []*stats.Table{outcomes, policies}, nil
		},
	}
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

package sim

import (
	"context"
	"fmt"
	"math"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/workload"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// realWorkloadExperiment exercises N-version programming on real subject
// programs rather than coin-flip variants: the Knight-Leveson-style
// triangle classifier in four versions with genuine seeded logic bugs,
// and a square-root routine voted through an inexact median. Unlike the
// synthetic experiments, failure regions here arise from actual code
// paths, so overlaps between versions' bugs (the correlation of E5)
// appear naturally.
func realWorkloadExperiment() Experiment {
	return Experiment{
		ID:       "realworkload",
		Index:    "E19",
		Artifact: "Section 4.1 (N-version programming on real subject programs)",
		Title:    "Triangle-classifier and sqrt version ensembles under random inputs",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const trials = 20000
			ctx := context.Background()
			rng := xrand.New(seed)
			versions := workload.TriangleVersions()

			table := stats.NewTable(
				"Triangle classifier (20000 random inputs, boundary-biased)",
				"configuration", "correct", "wrong", "no consensus")

			// Individual versions first.
			inputs := make([]workload.TriangleInput, trials)
			for i := range inputs {
				inputs[i] = workload.RandomTriangle(rng, 12)
			}
			for _, v := range versions {
				correct, wrong := 0, 0
				for _, in := range inputs {
					got, err := v.Execute(ctx, in)
					if err == nil && got == workload.ClassifyTriangle(in) {
						correct++
					} else {
						wrong++
					}
				}
				table.AddRow(v.Name(), correct, wrong, 0)
			}

			// Voted ensembles.
			ensembles := []struct {
				name     string
				versions []core.Variant[workload.TriangleInput, workload.Triangle]
			}{
				{"vote(v1,v2,v3)", versions[:3]},
				{"vote(v2,v3,v4) — no correct version", versions[1:4]},
			}
			for _, e := range ensembles {
				sys, err := nvp.New(e.versions, core.EqualOf[workload.Triangle]())
				if err != nil {
					return nil, err
				}
				correct, wrong, noCons := 0, 0, 0
				for _, in := range inputs {
					got, err := sys.Execute(ctx, in)
					switch {
					case err != nil:
						noCons++
					case got == workload.ClassifyTriangle(in):
						correct++
					default:
						wrong++
					}
				}
				table.AddRow(e.name, correct, wrong, noCons)
			}

			// Median voting over numeric versions.
			sqrtTable := stats.NewTable(
				"Square root, 3 versions incl. one with a (0, 0.25) failure region (5000 inputs)",
				"configuration", "max abs error")
			sqrtVersions := workload.SqrtVersions()
			maxErr := func(exec core.Executor[float64, float64]) (float64, error) {
				worst := 0.0
				for i := 0; i < 5000; i++ {
					x := rng.Float64() * 2 // half the inputs fall in/near the bug region
					got, err := exec.Execute(ctx, x)
					if err != nil {
						return 0, err
					}
					if d := math.Abs(got - math.Sqrt(x)); d > worst {
						worst = d
					}
				}
				return worst, nil
			}
			for _, v := range sqrtVersions {
				single, err := nvp.NewWithAdjudicator(
					[]core.Variant[float64, float64]{v}, vote.FirstSuccess[float64]())
				if err != nil {
					return nil, err
				}
				worst, err := maxErr(single)
				if err != nil {
					return nil, err
				}
				sqrtTable.AddRow(v.Name(), fmt.Sprintf("%.2e", worst))
			}
			median, err := nvp.NewWithAdjudicator(sqrtVersions, vote.MedianAdjudicator())
			if err != nil {
				return nil, err
			}
			worst, err := maxErr(median)
			if err != nil {
				return nil, err
			}
			sqrtTable.AddRow("median vote over all 3", fmt.Sprintf("%.2e", worst))

			// Expression calculator: two independently designed correct
			// parsers plus a precedence-bugged evaluator.
			calcTable := stats.NewTable(
				"Infix calculator, 3 versions incl. a precedence bug (10000 random expressions)",
				"configuration", "correct", "wrong/rejected")
			calcVersions := workload.CalcVersions()
			exprs := make([]string, 10000)
			wants := make([]int64, len(exprs))
			for i := range exprs {
				exprs[i] = workload.RandomExpr(rng, 1+rng.Intn(6))
				w, err := workload.EvalExpr(exprs[i])
				if err != nil {
					return nil, err
				}
				wants[i] = w
			}
			for _, v := range calcVersions {
				correct, wrong := 0, 0
				for i, expr := range exprs {
					got, err := v.Execute(ctx, expr)
					if err == nil && got == wants[i] {
						correct++
					} else {
						wrong++
					}
				}
				calcTable.AddRow(v.Name(), correct, wrong)
			}
			calcSys, err := nvp.New(calcVersions, core.EqualOf[int64]())
			if err != nil {
				return nil, err
			}
			correct, wrong := 0, 0
			for i, expr := range exprs {
				got, err := calcSys.Execute(ctx, expr)
				if err == nil && got == wants[i] {
					correct++
				} else {
					wrong++
				}
			}
			calcTable.AddRow("vote over all 3", correct, wrong)
			return []*stats.Table{table, sqrtTable, calcTable}, nil
		},
	}
}

package sim

import (
	"strconv"
	"strings"
	"testing"
)

// runExperiment executes an experiment and returns its tables rendered
// and raw.
func runExperiment(t *testing.T, id string, seed uint64) []string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(seed)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	out := make([]string, len(tables))
	for i, tbl := range tables {
		out[i] = tbl.String()
		if tbl.NumRows() == 0 {
			t.Errorf("%s table %d is empty", id, i)
		}
	}
	return out
}

// parseCells extracts the whitespace-separated cells of a rendered table
// row identified by its first-cell prefix.
func findRow(t *testing.T, rendered, prefix string) []string {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, prefix) {
			rest := strings.TrimSpace(strings.TrimPrefix(trimmed, prefix))
			return strings.Fields(rest)
		}
	}
	t.Fatalf("row %q not found in:\n%s", prefix, rendered)
	return nil
}

func cellFloat(t *testing.T, cells []string, idx int) float64 {
	t.Helper()
	if idx >= len(cells) {
		t.Fatalf("cell %d missing in %v", idx, cells)
	}
	v, err := strconv.ParseFloat(cells[idx], 64)
	if err != nil {
		t.Fatalf("cell %d (%q): %v", idx, cells[idx], err)
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	es := All()
	if len(es) != 21 {
		t.Errorf("registered experiments = %d, want 21", len(es))
	}
	seen := map[string]bool{}
	for _, e := range es {
		if e.ID == "" || e.Index == "" || e.Artifact == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("nonexistent"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFigure1Shape(t *testing.T) {
	out := runExperiment(t, "fig1", 1)[0]
	// At p=0.05: majority voting and the selection/sequential patterns
	// must beat the single baseline; parallel patterns pay ~3
	// executions, sequential ~1/(1-p).
	lines := strings.Split(out, "\n")
	var single, pe, ps, sa []string
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) < 3 || f[0] != "0.0500" {
			continue
		}
		switch {
		case strings.Contains(line, "single"):
			single = f
		case strings.Contains(line, "parallel evaluation"):
			pe = f
		case strings.Contains(line, "parallel selection"):
			ps = f
		case strings.Contains(line, "sequential"):
			sa = f
		}
	}
	if single == nil || pe == nil || ps == nil || sa == nil {
		t.Fatalf("missing rows in:\n%s", out)
	}
	rel := func(f []string) float64 {
		v, err := strconv.ParseFloat(f[len(f)-3], 64)
		if err != nil {
			t.Fatalf("parse %v: %v", f, err)
		}
		return v
	}
	execs := func(f []string) float64 {
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("parse %v: %v", f, err)
		}
		return v
	}
	if !(rel(pe) > rel(single)) {
		t.Errorf("parallel evaluation (%f) should beat single (%f)", rel(pe), rel(single))
	}
	if !(rel(ps) > rel(single)) || !(rel(sa) > rel(single)) {
		t.Error("redundant patterns should beat the baseline")
	}
	if execs(pe) != 3 || execs(ps) != 3 {
		t.Errorf("parallel patterns should cost 3 execs, got %f and %f", execs(pe), execs(ps))
	}
	if !(execs(sa) < 1.2) {
		t.Errorf("sequential cost %f should be ~1.05 at p=0.05", execs(sa))
	}
	if !(rel(ps) >= rel(pe)) {
		t.Errorf("any-success patterns (%f) should be at least as reliable as majority (%f)", rel(ps), rel(pe))
	}
}

func TestQuorumBoundary(t *testing.T) {
	out := runExperiment(t, "quorum", 1)[0]
	// Every (n, f) row with f <= k must be "correct"; f = k+1 must not.
	lines := strings.Split(out, "\n")
	checked := 0
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		n, err1 := strconv.Atoi(f[0])
		k, err2 := strconv.Atoi(f[1])
		inj, err3 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		outcome := strings.Join(f[3:], " ")
		if inj <= k && outcome != "correct" {
			t.Errorf("n=%d f=%d: outcome %q, want correct", n, inj, outcome)
		}
		if inj > k && outcome == "correct" {
			t.Errorf("n=%d f=%d: vote should not be correct", n, inj)
		}
		checked++
	}
	if checked < 15 {
		t.Errorf("only %d rows checked:\n%s", checked, out)
	}
}

func TestCorrelationDecay(t *testing.T) {
	out := runExperiment(t, "correlation", 1)[0]
	rho0 := cellFloat(t, findRow(t, out, "0  "), 0)
	rho1 := cellFloat(t, findRow(t, out, "1  "), 0)
	if !(rho0 > rho1) {
		t.Errorf("reliability should decay with correlation: rho0=%f rho1=%f", rho0, rho1)
	}
	// At rho=1 the gain over a single version vanishes (last column ~0).
	row1 := findRow(t, out, "1  ")
	gain := cellFloat(t, row1, len(row1)-1)
	if gain > 0.01 {
		t.Errorf("residual gain at rho=1 = %f, want ~0", gain)
	}
}

func TestRejuvenationUCurve(t *testing.T) {
	tables := runExperiment(t, "rejuvenation", 1)
	optimum := tables[1]
	// Line layout: title, underline, header, separator, data row.
	cells := strings.Fields(strings.Split(optimum, "\n")[4])
	bestN, err := strconv.Atoi(cells[0])
	if err != nil {
		t.Fatalf("optimum row: %v", cells)
	}
	if bestN <= 0 {
		t.Errorf("optimal rejuvenation period N = %d, want interior (> 0)", bestN)
	}
	if bestN >= 20 {
		t.Errorf("optimal N = %d suggests rejuvenation never helps", bestN)
	}
}

func TestMicrorebootBeatsFullReboot(t *testing.T) {
	out := runExperiment(t, "microreboot", 1)[0]
	full := cellFloat(t, findRow(t, out, "full-reboot"), 0)
	micro := cellFloat(t, findRow(t, out, "micro-reboot"), 0)
	if !(micro < full/10) {
		t.Errorf("micro-reboot downtime %f should be far below full reboot %f", micro, full)
	}
	fullLost := cellFloat(t, findRow(t, out, "full-reboot"), 2)
	microLost := cellFloat(t, findRow(t, out, "micro-reboot"), 2)
	if microLost != 0 {
		t.Errorf("micro-reboot collateral session loss = %f, want 0", microLost)
	}
	if fullLost == 0 {
		t.Error("full reboot should destroy sessions on healthy components")
	}
}

func TestPerturbationPerFaultClass(t *testing.T) {
	out := runExperiment(t, "perturbation", 1)[0]
	// Pure Bohrbug: nothing recovers.
	bohr := findRow(t, out, "Bohrbug (pure deterministic)")
	if cellFloat(t, bohr, len(bohr)-1) > 0.01 || cellFloat(t, bohr, len(bohr)-2) > 0.01 {
		t.Errorf("pure Bohrbug should resist recovery: %v", bohr)
	}
	// Overflow bug: only RX recovers.
	overflow := findRow(t, out, "env-dependent Bohrbug (overflow)")
	rx := cellFloat(t, overflow, len(overflow)-1)
	ckp := cellFloat(t, overflow, len(overflow)-2)
	if rx < 0.99 {
		t.Errorf("RX should heal the overflow bug, rate %f", rx)
	}
	if ckp > 0.01 {
		t.Errorf("plain re-execution should not heal the overflow bug, rate %f", ckp)
	}
	// Heisenbug: both re-execution strategies work well.
	heis := findRow(t, out, "Heisenbug (p=0.6)")
	if cellFloat(t, heis, len(heis)-2) < 0.8 {
		t.Errorf("checkpoint-recovery should usually heal Heisenbugs: %v", heis)
	}
}

func TestNVariantDetection(t *testing.T) {
	tables := runExperiment(t, "nvariant", 1)
	out := tables[0]
	benign := findRow(t, out, "benign read/write")
	if cellFloat(t, benign, len(benign)-3) != 0 { // detected column
		t.Errorf("false positives on benign workload: %v", benign)
	}
	if cellFloat(t, benign, len(benign)-1) != 0 {
		t.Errorf("undetected compromises on benign workload: %v", benign)
	}
	for _, attack := range []string{"absolute-address attack", "code-injection attack"} {
		row := findRow(t, out, attack)
		if cellFloat(t, row, len(row)-4) != 0 { // served column
			t.Errorf("%s: some attacks were served: %v", attack, row)
		}
		if cellFloat(t, row, len(row)-1) != 0 {
			t.Errorf("%s: undetected compromises: %v", attack, row)
		}
	}
	// Data variants: all uniform corruptions detected.
	cells := tables[1]
	for _, n := range []string{"2", "3"} {
		row := findRow(t, cells, n)
		if cellFloat(t, row, len(row)-1) != 0 {
			t.Errorf("n=%s: undetected corruptions: %v", n, row)
		}
	}
}

func TestWorkaroundsImproveWithRules(t *testing.T) {
	out := runExperiment(t, "workarounds", 1)[0]
	split := findRow(t, out, "split only")
	all := findRow(t, out, "all three rules")
	// Column layout: bugSpan2, bugSpan3, meanTried.
	splitSpan2 := cellFloat(t, split, len(split)-3)
	allSpan2 := cellFloat(t, all, len(all)-3)
	if !(allSpan2 >= splitSpan2) {
		t.Errorf("more rules should heal at least as much: %f vs %f", allSpan2, splitSpan2)
	}
	if allSpan2 < 0.95 {
		t.Errorf("full rule set should heal nearly everything at span 2: %f", allSpan2)
	}
	allSpan3 := cellFloat(t, all, len(all)-2)
	if allSpan3 < 0.95 {
		t.Errorf("full rule set should heal nearly everything at span 3: %f", allSpan3)
	}
}

func TestGeneticFixRepairs(t *testing.T) {
	out := runExperiment(t, "geneticfix", 1)[0]
	for _, fault := range []string{"swapped branches (max)", "wrong operator (sum as sub)", "wrong constant"} {
		row := findRow(t, out, fault)
		rate := cellFloat(t, row, len(row)-2)
		if rate < 0.5 {
			t.Errorf("%s: repair rate %f too low", fault, rate)
		}
	}
}

func TestSubstitutionAvailability(t *testing.T) {
	out := runExperiment(t, "substitution", 1)[0]
	row := findRow(t, out, "0.2000")
	single := cellFloat(t, row, 0)
	proxy := cellFloat(t, row, 1)
	if !(proxy > single) {
		t.Errorf("substitution should raise availability: %f vs %f", proxy, single)
	}
	if proxy < 0.99 {
		t.Errorf("3 providers at p=0.2 should yield ~0.992 availability, got %f", proxy)
	}
}

func TestCostsShape(t *testing.T) {
	out := runExperiment(t, "costs", 1)[0]
	lines := strings.Split(out, "\n")
	var nvpExecs, rbExecs float64
	var nvpRel, rbRel, scRel float64
	for _, line := range lines {
		if !strings.HasPrefix(strings.TrimSpace(line), "0.0500") {
			continue
		}
		f := strings.Fields(line)
		rel, err := strconv.ParseFloat(f[len(f)-4], 64)
		if err != nil {
			// Adjudicator column has multiple words; reliability and
			// execs sit right after the p column in fixed positions.
			continue
		}
		_ = rel
	}
	// Parse via known prefixes instead.
	get := func(tech string) (rel, execs float64) {
		for _, line := range lines {
			if !strings.Contains(line, tech) || !strings.HasPrefix(strings.TrimSpace(line), "0.0500") {
				continue
			}
			f := strings.Fields(line)
			// layout: p, technique..., reliability, execs, adjudicator...
			for i := range f {
				v, err := strconv.ParseFloat(f[i], 64)
				if err == nil && i > 0 && v <= 1 && v >= 0.5 {
					rel = v
					execs, _ = strconv.ParseFloat(f[i+1], 64)
					return rel, execs
				}
			}
		}
		t.Fatalf("technique %q not found:\n%s", tech, out)
		return 0, 0
	}
	nvpRel, nvpExecs = get("N-version")
	rbRel, rbExecs = get("recovery blocks")
	scRel, _ = get("self-checking")
	if nvpExecs != 3 {
		t.Errorf("NVP execs = %f, want 3", nvpExecs)
	}
	if !(rbExecs < 1.2) {
		t.Errorf("recovery-block execs = %f, want ~1.05", rbExecs)
	}
	if nvpRel < 0.98 || rbRel < 0.98 || scRel < 0.98 {
		t.Errorf("reliabilities too low: %f %f %f", nvpRel, rbRel, scRel)
	}
	// With a perfect acceptance test, recovery blocks beat majority
	// voting in reliability (they tolerate n-1 wrong versions).
	if !(rbRel >= nvpRel) {
		t.Errorf("recovery blocks (%f) should be at least as reliable as NVP (%f)", rbRel, nvpRel)
	}
}

func TestRobustDataCoverage(t *testing.T) {
	tables := runExperiment(t, "robustdata", 1)
	out := tables[0]
	for _, kind := range []string{"next->garbage", "prev->garbage", "next->valid-skip", "count drift"} {
		row := findRow(t, out, kind)
		detected := cellFloat(t, row, len(row)-3)
		repaired := cellFloat(t, row, len(row)-2)
		intact := cellFloat(t, row, len(row)-1)
		if detected < 1 {
			t.Errorf("%s: detection rate %f, want 1", kind, detected)
		}
		if repaired < 1 || intact < 1 {
			t.Errorf("%s: repair %f intact %f, want 1", kind, repaired, intact)
		}
	}
	mapOut := tables[1]
	primary := findRow(t, mapOut, "primary only")
	if cellFloat(t, primary, len(primary)-2) < 1 {
		t.Errorf("primary-only corruption should always be served: %v", primary)
	}
	both := findRow(t, mapOut, "both copies")
	if cellFloat(t, both, len(both)-1) < 1 {
		t.Errorf("both-copies corruption should always be unrepairable: %v", both)
	}
}

func TestWrapperPrevention(t *testing.T) {
	tables := runExperiment(t, "wrappers", 1)
	heap := tables[0]
	raw := findRow(t, heap, "raw (unwrapped)")
	healer := findRow(t, heap, "healer (boundary checks)")
	if cellFloat(t, raw, len(raw)-2) == 0 {
		t.Errorf("raw writes should smash blocks: %v", raw)
	}
	if cellFloat(t, healer, len(healer)-2) != 0 {
		t.Errorf("healer should prevent all smashing: %v", healer)
	}
	if cellFloat(t, healer, len(healer)-1) == 0 {
		t.Errorf("healer should report prevented overflows: %v", healer)
	}
	proto := tables[1]
	direct := findRow(t, proto, "direct calls")
	wrapped := findRow(t, proto, "protocol wrapper")
	if cellFloat(t, direct, len(direct)-2) == 0 {
		t.Errorf("direct misuse should break components: %v", direct)
	}
	if cellFloat(t, wrapped, len(wrapped)-2) != 0 {
		t.Errorf("wrapper should prevent all breakage: %v", wrapped)
	}
}

func TestSelfOptMaintainsQoS(t *testing.T) {
	out := runExperiment(t, "selfopt", 1)[0]
	light := findRow(t, out, "fixed light")
	selfopt := findRow(t, out, "self-optimizing")
	lightViolations := cellFloat(t, light, len(light)-2)
	optViolations := cellFloat(t, selfopt, len(selfopt)-2)
	if !(optViolations < lightViolations/10) {
		t.Errorf("self-optimization should nearly eliminate violations: %f vs %f",
			optViolations, lightViolations)
	}
	switches := cellFloat(t, selfopt, len(selfopt)-1)
	if switches < 1 {
		t.Error("optimizer never switched")
	}
}

func TestDataDiversityEscape(t *testing.T) {
	tables := runExperiment(t, "datadiversity", 1)
	retry := tables[0]
	b1 := findRow(t, retry, "1 ")
	b5 := findRow(t, retry, "5 ")
	if cellFloat(t, b1, 0) != 0 {
		t.Errorf("budget 1 cannot escape (first attempt always in region): %v", b1)
	}
	if cellFloat(t, b5, 0) < 0.99 {
		t.Errorf("budget 5 should almost always escape: %v", b5)
	}
	ncopy := tables[1]
	n2 := findRow(t, ncopy, "2 ")
	if cellFloat(t, n2, 0) < 0.95 {
		t.Errorf("2-copy should usually escape: %v", n2)
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	for _, id := range []string{"quorum", "correlation", "workarounds"} {
		a := runExperiment(t, id, 99)
		b := runExperiment(t, id, 99)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s table %d differs across runs with same seed", id, i)
			}
		}
	}
}

func TestReplicationMasksAndRepairs(t *testing.T) {
	out := runExperiment(t, "replication", 1)[0]
	for _, frac := range []string{"0.0500", "0.2000", "0.5000"} {
		row := findRow(t, out, frac)
		wrong := cellFloat(t, row, 0)
		if wrong != 0 {
			t.Errorf("frac %s: %f wrong reads served, want 0", frac, wrong)
		}
		repairs := cellFloat(t, row, 2)
		if repairs == 0 {
			t.Errorf("frac %s: no repairs performed", frac)
		}
		if row[len(row)-1] != "true" {
			t.Errorf("frac %s: final states not reconciled: %v", frac, row)
		}
	}
}

func TestRealWorkloadEnsembles(t *testing.T) {
	tables := runExperiment(t, "realworkload", 1)
	out := tables[0]
	full := findRow(t, out, "vote(v1,v2,v3)")
	if cellFloat(t, full, len(full)-2) != 0 { // wrong column
		t.Errorf("3-version vote produced wrong classifications: %v", full)
	}
	// Each buggy version alone must fail somewhere.
	for _, v := range []string{"classifier-2-partial-inequality", "classifier-3-partial-isosceles", "classifier-4-degenerate-accepted"} {
		row := findRow(t, out, v)
		if cellFloat(t, row, len(row)-2) == 0 {
			t.Errorf("%s never failed; bug not exercised", v)
		}
	}
}

func TestRealWorkloadCalculator(t *testing.T) {
	tables := runExperiment(t, "realworkload", 1)
	if len(tables) < 3 {
		t.Fatalf("want 3 tables, got %d", len(tables))
	}
	calc := tables[2]
	voted := findRow(t, calc, "vote over all 3")
	if cellFloat(t, voted, len(voted)-1) != 0 {
		t.Errorf("voted calculator produced wrong results: %v", voted)
	}
	buggy := findRow(t, calc, "calc-left-to-right-buggy")
	if cellFloat(t, buggy, len(buggy)-1) == 0 {
		t.Errorf("precedence bug never exercised: %v", buggy)
	}
}

func TestFaultMatrixMatchesTable2FaultColumn(t *testing.T) {
	out := runExperiment(t, "faultmatrix", 1)[0]
	row := func(name string) []string { return findRow(t, out, name) }
	// Column order: Bohrbug, env-Bohrbug, Heisenbug, aging (last 4 cells).
	get := func(cells []string, col int) float64 {
		return cellFloat(t, cells, len(cells)-4+col)
	}
	baseline := row("none (single component)")
	nvp := row("N-version programming")
	rb := row("recovery blocks")
	ckp := row("checkpoint-recovery")
	rx := row("RX environment perturbation")
	rj := row("rejuvenation")

	// Code redundancy masks development faults (all but aging).
	for col := 0; col < 3; col++ {
		if !(get(nvp, col) > get(baseline, col)) {
			t.Errorf("NVP should beat baseline on class %d", col)
		}
		if !(get(rb, col) > get(nvp, col)) {
			t.Errorf("any-of-3 recovery blocks should beat majority NVP on class %d", col)
		}
	}
	// Checkpoint-recovery masks only Heisenbugs.
	if get(ckp, 0) > get(baseline, 0)+0.02 || get(ckp, 1) > get(baseline, 1)+0.02 {
		t.Errorf("checkpoint-recovery should not mask deterministic bugs: %v", ckp)
	}
	if !(get(ckp, 2) > 0.95) {
		t.Errorf("checkpoint-recovery should mask Heisenbugs: %v", ckp)
	}
	// RX additionally masks env-dependent Bohrbugs.
	if get(rx, 1) < 0.99 {
		t.Errorf("RX should mask env-Bohrbugs: %v", rx)
	}
	if get(rx, 0) > get(baseline, 0)+0.02 {
		t.Errorf("RX should not mask pure Bohrbugs: %v", rx)
	}
	// Rejuvenation masks aging and nothing else.
	if get(rj, 3) < 0.95 {
		t.Errorf("rejuvenation should prevent aging failures: %v", rj)
	}
	if get(rj, 0) > get(baseline, 0)+0.02 {
		t.Errorf("rejuvenation should not affect Bohrbugs: %v", rj)
	}
	// Aging defeats code redundancy (correlated age across versions).
	if get(nvp, 3) > 0.2 {
		t.Errorf("same-age version ensemble should not survive aging: %v", nvp)
	}
}

func TestAvailabilityMatchesAlgebra(t *testing.T) {
	out := runExperiment(t, "availability", 1)[0]
	lines := strings.Split(out, "\n")
	checked := 0
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		if _, err := strconv.Atoi(f[0]); err != nil {
			continue
		}
		measured, err1 := strconv.ParseFloat(f[len(f)-2], 64)
		analytic, err2 := strconv.ParseFloat(f[len(f)-1], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if measured < analytic-0.03 || measured > analytic+0.03 {
			t.Errorf("measured %f deviates from analytic %f: %v", measured, analytic, f)
		}
		checked++
	}
	if checked < 5 {
		t.Errorf("checked only %d rows:\n%s", checked, out)
	}
	// Substitution must beat single binding at 3 providers.
	rows := strings.Split(out, "\n")
	var single3, proxy3 float64
	for _, line := range rows {
		f := strings.Fields(line)
		if len(f) < 4 || f[0] != "3" {
			continue
		}
		v, err := strconv.ParseFloat(f[len(f)-2], 64)
		if err != nil {
			continue
		}
		if strings.Contains(line, "single") {
			single3 = v
		} else {
			proxy3 = v
		}
	}
	if !(proxy3 > single3) {
		t.Errorf("substitution (%f) should beat single binding (%f)", proxy3, single3)
	}
}

func TestExperimentsSortedNumerically(t *testing.T) {
	es := All()
	prev := 0
	for _, e := range es {
		n := indexNumber(e.Index)
		if n < prev {
			t.Fatalf("index %s out of order (prev %d)", e.Index, prev)
		}
		prev = n
	}
	if es[0].Index != "E3" {
		t.Errorf("first experiment = %s, want E3", es[0].Index)
	}
}

func TestRedundancyDepletionGrowsWithSpares(t *testing.T) {
	tables := runExperiment(t, "costs", 1)
	if len(tables) < 2 {
		t.Fatal("missing depletion table")
	}
	out := tables[1]
	mean := func(n string) float64 {
		row := findRow(t, out, n)
		return cellFloat(t, row, 0)
	}
	m1, m2, m5 := mean("1 "), mean("2 "), mean("5 ")
	if !(m1 < m2 && m2 < m5) {
		t.Errorf("exhaustion time should grow with spares: %f, %f, %f", m1, m2, m5)
	}
	// Hot spares running in parallel deplete per the max-of-geometrics
	// law: E[max] ≈ (1/p)·H_n, so 5 components last ~2.3x one component,
	// far below 5x (the cost of hot standby vs cold standby).
	if m5 > 4*m1 {
		t.Errorf("hot spares should not multiply lifetime linearly: %f vs %f", m5, m1)
	}
}

func TestAuditLatencyScalesWithPeriod(t *testing.T) {
	tables := runExperiment(t, "robustdata", 1)
	if len(tables) < 3 {
		t.Fatal("missing audit table")
	}
	out := tables[2]
	lat := func(period string) float64 {
		row := findRow(t, out, period)
		return cellFloat(t, row, 0)
	}
	l1, l10, l50 := lat("1 "), lat("10 "), lat("50 ")
	if l1 != 0 {
		t.Errorf("audit-every-op latency = %f, want 0", l1)
	}
	// Mean latency ≈ period/2 for uniformly timed corruption.
	if l10 < 3 || l10 > 7 {
		t.Errorf("period-10 latency = %f, want ≈5", l10)
	}
	if l50 < 15 || l50 > 35 {
		t.Errorf("period-50 latency = %f, want ≈25", l50)
	}
	if !(l1 < l10 && l10 < l50) {
		t.Errorf("latency must grow with period: %f %f %f", l1, l10, l50)
	}
}

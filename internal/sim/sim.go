// Package sim is the experiment harness: it regenerates every table and
// figure of the paper (and the quantitative claims of the paper's cited
// sources) from the technique implementations in this repository. Each
// experiment is deterministic given its seed and reports its results as
// plain-text tables whose rows mirror the paper's artifacts.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records the
// measured outputs against the expected shapes.
package sim

import (
	"fmt"
	"sort"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// observer is an optional process-wide observer attached to the pattern
// executors the experiments build (alongside their per-experiment
// counters), so a live metrics endpoint can watch a run.
var observer obs.Observer

// SetObserver attaches an observer to every subsequently built experiment
// executor. Call it once, before running experiments (cmd/experiments
// wires it to -metrics-addr).
func SetObserver(o obs.Observer) { observer = o }

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the short identifier used by cmd/experiments -run.
	ID string
	// Index is the DESIGN.md experiment index entry (E3, E4, ...).
	Index string
	// Artifact names the paper artifact the experiment reproduces.
	Artifact string
	// Title is a one-line description.
	Title string
	// Run executes the experiment with the given seed and returns its
	// result tables.
	Run func(seed uint64) ([]*stats.Table, error)
}

// registry is populated by experimentList; experiments are pure values,
// so no init() is needed.
func registry() []Experiment {
	return []Experiment{
		figure1Experiment(),
		quorumExperiment(),
		correlationExperiment(),
		rejuvenationExperiment(),
		microrebootExperiment(),
		dataDiversityExperiment(),
		perturbationExperiment(),
		nvariantExperiment(),
		workaroundExperiment(),
		geneticFixExperiment(),
		substitutionExperiment(),
		costsExperiment(),
		robustDataExperiment(),
		wrapperExperiment(),
		selfOptExperiment(),
		replicationExperiment(),
		realWorkloadExperiment(),
		faultMatrixExperiment(),
		availabilityExperiment(),
		resilienceExperiment(),
		recoveryExperiment(),
	}
}

// All returns every experiment, sorted by numeric index (E3 before E10).
func All() []Experiment {
	es := registry()
	sort.SliceStable(es, func(i, j int) bool {
		return indexNumber(es[i].Index) < indexNumber(es[j].Index)
	})
	return es
}

// indexNumber extracts the numeric part of an index like "E12".
func indexNumber(index string) int {
	n := 0
	for i := 1; i < len(index); i++ {
		c := index[i]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("sim: unknown experiment %q", id)
}

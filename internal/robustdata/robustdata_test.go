package robustdata

import (
	"errors"
	"testing"
	"testing/quick"
)

func buildList(t *testing.T, values ...int) *RobustList {
	t.Helper()
	l := NewRobustList()
	for _, v := range values {
		l.Append(v)
	}
	return l
}

func wantValues(t *testing.T, l *RobustList, want ...int) {
	t.Helper()
	got, err := l.Values()
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestListAppendAndTraverse(t *testing.T) {
	l := buildList(t, 1, 2, 3)
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	wantValues(t, l, 1, 2, 3)
}

func TestEmptyListIsConsistent(t *testing.T) {
	l := NewRobustList()
	if defects := l.Audit(); len(defects) != 0 {
		t.Errorf("defects on empty list: %v", defects)
	}
	vals, err := l.Values()
	if err != nil || len(vals) != 0 {
		t.Errorf("Values = (%v, %v)", vals, err)
	}
	if err := l.Repair(); err != nil {
		t.Errorf("Repair on empty list: %v", err)
	}
}

func TestAuditDetectsDanglingNext(t *testing.T) {
	l := buildList(t, 1, 2, 3)
	ids := l.NodeIDs()
	if !l.CorruptNext(ids[0], 999) {
		t.Fatal("corruption target missing")
	}
	defects := l.Audit()
	if len(defects) == 0 {
		t.Fatal("dangling next not detected")
	}
	if defects[0].Kind != DefectDanglingNext {
		t.Errorf("kind = %v", defects[0].Kind)
	}
	if _, err := l.Values(); !errors.Is(err, ErrCorrupted) {
		t.Errorf("Values err = %v", err)
	}
}

func TestRepairDanglingNext(t *testing.T) {
	l := buildList(t, 1, 2, 3, 4)
	ids := l.NodeIDs()
	l.CorruptNext(ids[1], 12345)
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 1, 2, 3, 4)
	if len(l.Audit()) != 0 {
		t.Error("defects remain after repair")
	}
}

func TestRepairLinkMismatch(t *testing.T) {
	l := buildList(t, 10, 20, 30)
	ids := l.NodeIDs()
	// Point node 0's next at node 2, skipping node 1.
	l.CorruptNext(ids[0], ids[2])
	if len(l.Audit()) == 0 {
		t.Fatal("mismatch not detected")
	}
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 10, 20, 30)
}

func TestRepairCorruptPrev(t *testing.T) {
	l := buildList(t, 1, 2, 3)
	ids := l.NodeIDs()
	l.CorruptPrev(ids[2], 777)
	if len(l.Audit()) == 0 {
		t.Fatal("dangling prev not detected")
	}
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 1, 2, 3)
}

func TestRepairBadCount(t *testing.T) {
	l := buildList(t, 5, 6)
	l.CorruptCount(+3)
	if _, err := l.Values(); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Values err = %v", err)
	}
	found := false
	for _, d := range l.Audit() {
		if d.Kind == DefectBadCount {
			found = true
		}
	}
	if !found {
		t.Fatal("bad count not detected")
	}
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 5, 6)
}

func TestRepairSingleNodeListTailCorruption(t *testing.T) {
	l := buildList(t, 42)
	ids := l.NodeIDs()
	l.CorruptNext(ids[0], 55)
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 42)
}

// Property: any single corruption (next, prev, or count) of any node is
// detected by Audit and fixed by Repair.
func TestSingleCorruptionAlwaysRepairableProperty(t *testing.T) {
	f := func(sizeRaw, nodeRaw, kindRaw uint8, garbage int16) bool {
		size := int(sizeRaw%8) + 2
		l := NewRobustList()
		want := make([]int, size)
		for i := 0; i < size; i++ {
			l.Append(i * 10)
			want[i] = i * 10
		}
		ids := l.NodeIDs()
		target := ids[int(nodeRaw)%len(ids)]
		bad := int(garbage)
		if bad >= 0 && bad < size {
			bad = size + 100 // ensure the reference is actually dangling
		}
		switch kindRaw % 3 {
		case 0:
			l.CorruptNext(target, bad)
		case 1:
			l.CorruptPrev(target, bad)
		default:
			delta := int(garbage % 7)
			if delta == 0 {
				delta = 3
			}
			l.CorruptCount(delta)
		}
		if len(l.Audit()) == 0 {
			return false // corruption must be detected
		}
		if err := l.Repair(); err != nil {
			return false
		}
		got, err := l.Values()
		if err != nil || len(got) != size {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCorruptionTargetsMissing(t *testing.T) {
	l := buildList(t, 1)
	if l.CorruptNext(999, 0) || l.CorruptPrev(999, 0) {
		t.Error("corrupting a missing node should report false")
	}
}

func TestMapPutGet(t *testing.T) {
	m := NewRobustMap()
	m.Put("a", 1)
	m.Put("b", 2)
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
	v, err := m.Get("a")
	if err != nil || v != 1 {
		t.Errorf("Get = (%d, %v)", v, err)
	}
	if _, err := m.Get("missing"); !errors.Is(err, ErrCorrupted) {
		t.Errorf("missing key err = %v", err)
	}
}

func TestMapTransparentRepair(t *testing.T) {
	m := NewRobustMap()
	m.Put("k", 42)
	if !m.CorruptPrimary("k", 13) {
		t.Fatal("corruption failed")
	}
	v, err := m.Get("k")
	if err != nil || v != 42 {
		t.Fatalf("Get after corruption = (%d, %v), want shadow value", v, err)
	}
	if m.Repairs != 1 {
		t.Errorf("Repairs = %d", m.Repairs)
	}
	// The repaired primary must now verify.
	v, err = m.Get("k")
	if err != nil || v != 42 {
		t.Errorf("Get after repair = (%d, %v)", v, err)
	}
}

func TestMapBothCopiesCorrupted(t *testing.T) {
	m := NewRobustMap()
	m.Put("k", 42)
	m.CorruptPrimary("k", 1)
	m.CorruptShadow("k", 2)
	if _, err := m.Get("k"); !errors.Is(err, ErrUnrepairable) {
		t.Errorf("err = %v, want ErrUnrepairable", err)
	}
}

func TestMapAuditAndRepairAll(t *testing.T) {
	m := NewRobustMap()
	for _, k := range []string{"a", "b", "c", "d"} {
		m.Put(k, 7)
	}
	m.CorruptPrimary("a", 0)
	m.CorruptShadow("b", 0)
	m.CorruptPrimary("c", 0)
	m.CorruptShadow("c", 0)
	badP, badS := m.AuditMap()
	if len(badP) != 2 || len(badS) != 2 {
		t.Errorf("audit = (%v, %v)", badP, badS)
	}
	repaired, lost := m.RepairAll()
	if repaired != 2 || lost != 1 {
		t.Errorf("RepairAll = (%d, %d), want (2, 1)", repaired, lost)
	}
	if v, err := m.Get("a"); err != nil || v != 7 {
		t.Errorf("a after repair = (%d, %v)", v, err)
	}
	if v, err := m.Get("d"); err != nil || v != 7 {
		t.Errorf("untouched d = (%d, %v)", v, err)
	}
}

func TestMapCorruptMissingKeys(t *testing.T) {
	m := NewRobustMap()
	if m.CorruptPrimary("x", 0) || m.CorruptShadow("x", 0) {
		t.Error("corrupting missing keys should report false")
	}
}

func TestDefectKindString(t *testing.T) {
	kinds := map[DefectKind]string{
		DefectDanglingNext: "dangling-next",
		DefectDanglingPrev: "dangling-prev",
		DefectLinkMismatch: "link-mismatch",
		DefectBadCount:     "bad-count",
		DefectKind(0):      "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// Property: RobustMap round-trips arbitrary keys/values and survives
// primary corruption of every key.
func TestMapProperty(t *testing.T) {
	f := func(keys []string, values []int16) bool {
		m := NewRobustMap()
		n := len(keys)
		if len(values) < n {
			n = len(values)
		}
		expect := map[string]int{}
		for i := 0; i < n; i++ {
			m.Put(keys[i], int(values[i]))
			expect[keys[i]] = int(values[i])
		}
		for k, want := range expect {
			m.CorruptPrimary(k, int(^values[0]))
			got, err := m.Get(k)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRepairPrevCorruptedToValidNode(t *testing.T) {
	// prev corrupted to a *valid* node id: the forward chain is intact,
	// so Repair must trust it and rebuild prev from it.
	l := buildList(t, 1, 2, 3)
	ids := l.NodeIDs()
	l.CorruptPrev(ids[2], ids[0]) // node2.prev wrongly points at node0
	if len(l.Audit()) == 0 {
		t.Fatal("valid-target prev corruption not detected")
	}
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 1, 2, 3)
}

func TestRepairNextCorruptedToValidNode(t *testing.T) {
	// next corrupted to a valid node (creating a skip): backward chain is
	// intact and must win.
	l := buildList(t, 1, 2, 3, 4)
	ids := l.NodeIDs()
	l.CorruptNext(ids[0], ids[2])
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 1, 2, 3, 4)
}

func TestRepairByMergeDoubleCorruption(t *testing.T) {
	// Corrupting one next AND one prev breaks both traversal directions,
	// forcing the pointwise merge strategy.
	l := buildList(t, 0, 10, 20, 30, 40)
	ids := l.NodeIDs()
	l.CorruptNext(ids[1], 9999)
	l.CorruptPrev(ids[3], 8888)
	if len(l.Audit()) < 2 {
		t.Fatal("double corruption under-detected")
	}
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	wantValues(t, l, 0, 10, 20, 30, 40)
}

func TestRepairByMergeUnrepairableDuplicatePredecessor(t *testing.T) {
	// Two nodes claiming the same predecessor plus a broken next chain is
	// beyond the available redundancy.
	l := buildList(t, 1, 2, 3, 4, 5)
	ids := l.NodeIDs()
	l.CorruptPrev(ids[2], ids[0]) // node2 also claims node0 as predecessor
	l.CorruptNext(ids[3], 9999)   // and the forward chain is broken
	if err := l.Repair(); !errors.Is(err, ErrUnrepairable) {
		t.Errorf("err = %v, want ErrUnrepairable", err)
	}
}

func TestValuesDetectsCycle(t *testing.T) {
	l := buildList(t, 1, 2, 3)
	ids := l.NodeIDs()
	l.CorruptNext(ids[2], ids[0]) // tail loops back to head
	if _, err := l.Values(); !errors.Is(err, ErrCorrupted) {
		t.Errorf("cycle err = %v, want ErrCorrupted", err)
	}
}

func TestNodeIDsBoundedUnderCorruption(t *testing.T) {
	l := buildList(t, 1, 2, 3)
	ids := l.NodeIDs()
	l.CorruptNext(ids[0], 424242)
	got := l.NodeIDs() // must stop at the dangling reference, not hang
	if len(got) != 1 {
		t.Errorf("NodeIDs under corruption = %v", got)
	}
	l2 := buildList(t, 1, 2)
	ids2 := l2.NodeIDs()
	l2.CorruptNext(ids2[1], ids2[0]) // cycle
	if got := l2.NodeIDs(); len(got) > 3 {
		t.Errorf("NodeIDs did not bound a cyclic walk: %v", got)
	}
}

func TestAuditSchedulerPeriodicRepair(t *testing.T) {
	l := buildList(t, 1, 2, 3, 4)
	sched, err := NewAuditScheduler(AsAuditable(l), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt, then tick through one period: the audit must detect and
	// repair within Period operations.
	ids := l.NodeIDs()
	l.CorruptNext(ids[1], 9999)
	audited := false
	for i := 0; i < 5; i++ {
		a, err := sched.Tick()
		if err != nil {
			t.Fatal(err)
		}
		audited = audited || a
	}
	if !audited {
		t.Fatal("no audit ran within the period")
	}
	if sched.Audits != 1 || sched.DefectsFound == 0 || sched.Repairs != 1 {
		t.Errorf("scheduler counters = %+v", sched)
	}
	wantValues(t, l, 1, 2, 3, 4)
}

func TestAuditSchedulerCleanPassesAreCheap(t *testing.T) {
	l := buildList(t, 1)
	sched, err := NewAuditScheduler(AsAuditable(l), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sched.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if sched.Audits != 5 || sched.DefectsFound != 0 || sched.Repairs != 0 {
		t.Errorf("counters = %+v", sched)
	}
}

func TestAuditSchedulerRepairFailureReported(t *testing.T) {
	l := buildList(t, 1, 2, 3, 4, 5)
	ids := l.NodeIDs()
	// Unrepairable double corruption (duplicate predecessor + broken next).
	l.CorruptPrev(ids[2], ids[0])
	l.CorruptNext(ids[3], 9999)
	sched, err := NewAuditScheduler(AsAuditable(l), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Tick(); !errors.Is(err, ErrUnrepairable) {
		t.Errorf("err = %v, want ErrUnrepairable", err)
	}
}

func TestAuditSchedulerValidation(t *testing.T) {
	if _, err := NewAuditScheduler(nil, 1); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewAuditScheduler(AsAuditable(NewRobustList()), 0); err == nil {
		t.Error("zero period accepted")
	}
}

// Package robustdata implements robust data structures and software
// audits: deliberate data redundancy in the sense of Taylor, Morgan and
// Black ("Redundancy in data structures: improving software fault
// tolerance") and of Connet et al.'s software audits. Structural
// information is stored redundantly — double links, node identifiers, an
// element count, checksums and shadow copies — so that an audit can
// detect corrupted instances and a repair procedure can reconstruct them
// from the surviving redundancy.
//
// Taxonomy position (paper Table 2): deliberate intention, data
// redundancy, reactive implicit adjudicator (the redundant information
// itself reveals the failure), development faults.
package robustdata

import (
	"errors"
	"fmt"
)

// List errors.
var (
	// ErrCorrupted reports that an audit found inconsistencies.
	ErrCorrupted = errors.New("robustdata: structure corrupted")
	// ErrUnrepairable reports damage exceeding the redundancy available
	// for reconstruction.
	ErrUnrepairable = errors.New("robustdata: corruption not repairable")
)

// nilRef is the null node reference.
const nilRef = -1

// listNode is one node of the robust list. Structural redundancy per
// Taylor et al.: every node carries a unique identifier that marks it as
// a valid member, and the list is doubly linked so either direction can
// reconstruct the other.
type listNode struct {
	id    int
	value int
	next  int
	prev  int
}

// RobustList is a doubly linked list with redundant structural data: node
// identifiers, double links, and a stored element count.
type RobustList struct {
	nodes map[int]*listNode // simulated memory pool, keyed by node id
	head  int
	tail  int
	count int // redundant element count
	nexID int
}

// NewRobustList creates an empty robust list.
func NewRobustList() *RobustList {
	return &RobustList{
		nodes: make(map[int]*listNode),
		head:  nilRef,
		tail:  nilRef,
	}
}

// Len returns the stored (redundant) element count.
func (l *RobustList) Len() int { return l.count }

// Append adds a value at the tail.
func (l *RobustList) Append(value int) {
	n := &listNode{id: l.nexID, value: value, next: nilRef, prev: l.tail}
	l.nexID++
	l.nodes[n.id] = n
	if l.tail != nilRef {
		l.nodes[l.tail].next = n.id
	} else {
		l.head = n.id
	}
	l.tail = n.id
	l.count++
}

// Values traverses the list forward and returns the values. It returns
// ErrCorrupted if the traversal is inconsistent with the redundant data.
func (l *RobustList) Values() ([]int, error) {
	var out []int
	seen := make(map[int]bool, l.count)
	cur := l.head
	for cur != nilRef {
		n, ok := l.nodes[cur]
		if !ok {
			return nil, fmt.Errorf("dangling reference %d: %w", cur, ErrCorrupted)
		}
		if seen[cur] {
			return nil, fmt.Errorf("cycle at node %d: %w", cur, ErrCorrupted)
		}
		seen[cur] = true
		if len(out) > l.count {
			return nil, fmt.Errorf("traversal exceeds stored count %d: %w", l.count, ErrCorrupted)
		}
		out = append(out, n.value)
		cur = n.next
	}
	if len(out) != l.count {
		return nil, fmt.Errorf("traversed %d nodes, stored count %d: %w", len(out), l.count, ErrCorrupted)
	}
	return out, nil
}

// Defect describes one inconsistency found by an audit.
type Defect struct {
	// Kind classifies the inconsistency.
	Kind DefectKind
	// Node is the id of the affected node (or -1 for list-level defects).
	Node int
}

// DefectKind classifies audit findings.
type DefectKind int

const (
	// DefectDanglingNext is a next reference to a nonexistent node.
	DefectDanglingNext DefectKind = iota + 1
	// DefectDanglingPrev is a prev reference to a nonexistent node.
	DefectDanglingPrev
	// DefectLinkMismatch is a next/prev pair that disagrees.
	DefectLinkMismatch
	// DefectBadCount is a stored count differing from the node total.
	DefectBadCount
)

// String implements fmt.Stringer.
func (k DefectKind) String() string {
	switch k {
	case DefectDanglingNext:
		return "dangling-next"
	case DefectDanglingPrev:
		return "dangling-prev"
	case DefectLinkMismatch:
		return "link-mismatch"
	case DefectBadCount:
		return "bad-count"
	default:
		return "unknown"
	}
}

// Audit checks all redundant structural data and returns every defect
// found; an empty result means the structure is consistent.
func (l *RobustList) Audit() []Defect {
	var defects []Defect
	for id, n := range l.nodes {
		if n.next != nilRef {
			m, ok := l.nodes[n.next]
			if !ok {
				defects = append(defects, Defect{Kind: DefectDanglingNext, Node: id})
			} else if m.prev != id {
				defects = append(defects, Defect{Kind: DefectLinkMismatch, Node: id})
			}
		}
		if n.prev != nilRef {
			if _, ok := l.nodes[n.prev]; !ok {
				defects = append(defects, Defect{Kind: DefectDanglingPrev, Node: id})
			}
		}
	}
	if l.count != len(l.nodes) {
		defects = append(defects, Defect{Kind: DefectBadCount, Node: nilRef})
	}
	return defects
}

// Repair reconstructs the structure from the surviving redundancy. It
// handles any single corruption (one next pointer, one prev pointer, or
// the count) and many multi-defect cases, returning ErrUnrepairable when
// the redundancy is insufficient.
//
// Strategy: if one link direction still forms a complete chain over all
// nodes, it is trusted and the other direction plus the count are rebuilt
// from it; otherwise both directions are merged pointwise.
func (l *RobustList) Repair() error {
	if chain, ok := l.validChain(l.head, func(n *listNode) int { return n.next }); ok {
		l.rebuildFromChain(chain)
		return nil
	}
	if back, ok := l.validChain(l.tail, func(n *listNode) int { return n.prev }); ok {
		chain := make([]int, len(back))
		for i, id := range back {
			chain[len(back)-1-i] = id
		}
		l.rebuildFromChain(chain)
		return nil
	}
	return l.repairByMerge()
}

// validChain follows dir from start and reports whether it visits every
// node exactly once.
func (l *RobustList) validChain(start int, dir func(*listNode) int) ([]int, bool) {
	if len(l.nodes) == 0 {
		return nil, start == nilRef
	}
	seen := make(map[int]bool, len(l.nodes))
	var chain []int
	cur := start
	for cur != nilRef {
		n, ok := l.nodes[cur]
		if !ok || seen[cur] || len(chain) >= len(l.nodes) {
			return nil, false
		}
		seen[cur] = true
		chain = append(chain, cur)
		cur = dir(n)
	}
	return chain, len(chain) == len(l.nodes)
}

// rebuildFromChain rewrites all redundant data from a trusted forward
// chain.
func (l *RobustList) rebuildFromChain(chain []int) {
	if len(chain) == 0 {
		l.head, l.tail, l.count = nilRef, nilRef, 0
		return
	}
	for i, id := range chain {
		n := l.nodes[id]
		if i == 0 {
			n.prev = nilRef
		} else {
			n.prev = chain[i-1]
		}
		if i == len(chain)-1 {
			n.next = nilRef
		} else {
			n.next = chain[i+1]
		}
	}
	l.head, l.tail = chain[0], chain[len(chain)-1]
	l.count = len(chain)
}

// repairByMerge reconstructs links pointwise when neither direction forms
// a complete chain: each node's successor is recovered from the unique
// node claiming it as predecessor.
func (l *RobustList) repairByMerge() error {
	// Repair dangling or mismatched next pointers using prev redundancy:
	// node X's correct successor is the unique node whose prev is X.
	successorOf := make(map[int]int, len(l.nodes))
	for id, n := range l.nodes {
		if n.prev != nilRef {
			if _, dup := successorOf[n.prev]; dup {
				return fmt.Errorf("two nodes claim the same predecessor %d: %w", n.prev, ErrUnrepairable)
			}
			successorOf[n.prev] = id
		}
	}
	for id, n := range l.nodes {
		want, hasSucc := successorOf[id]
		switch {
		case hasSucc && n.next != want:
			n.next = want
		case !hasSucc && n.next != nilRef:
			if _, ok := l.nodes[n.next]; !ok {
				n.next = nilRef // was dangling and is really the tail
			}
		}
	}
	// Rebuild every prev pointer from the (now consistent) next pointers,
	// including resetting the head's prev to nil.
	predecessorOf := make(map[int]int, len(l.nodes))
	for id, n := range l.nodes {
		if n.next != nilRef {
			if _, ok := l.nodes[n.next]; !ok {
				return fmt.Errorf("next reference %d still dangling: %w", n.next, ErrUnrepairable)
			}
			predecessorOf[n.next] = id
		}
	}
	for id, n := range l.nodes {
		if p, ok := predecessorOf[id]; ok {
			n.prev = p
		} else {
			n.prev = nilRef
		}
	}
	// Recompute head, tail, count from node-local data.
	head, tail := nilRef, nilRef
	for id, n := range l.nodes {
		if _, ok := predecessorOf[id]; !ok {
			if head != nilRef {
				return fmt.Errorf("multiple head candidates: %w", ErrUnrepairable)
			}
			head = id
		}
		if n.next == nilRef {
			if tail != nilRef {
				return fmt.Errorf("multiple tail candidates: %w", ErrUnrepairable)
			}
			tail = id
		}
	}
	if len(l.nodes) > 0 && (head == nilRef || tail == nilRef) {
		return fmt.Errorf("no head/tail found: %w", ErrUnrepairable)
	}
	l.head, l.tail = head, tail
	l.count = len(l.nodes)
	if defects := l.Audit(); len(defects) > 0 {
		return fmt.Errorf("%d defects remain after repair: %w", len(defects), ErrUnrepairable)
	}
	return nil
}

// Corruption API: experiments use these to damage the structure in
// controlled ways. Each returns false if the target node does not exist.

// CorruptNext overwrites a node's next reference with garbage.
func (l *RobustList) CorruptNext(id, garbage int) bool {
	n, ok := l.nodes[id]
	if !ok {
		return false
	}
	n.next = garbage
	return true
}

// CorruptPrev overwrites a node's prev reference with garbage.
func (l *RobustList) CorruptPrev(id, garbage int) bool {
	n, ok := l.nodes[id]
	if !ok {
		return false
	}
	n.prev = garbage
	return true
}

// CorruptCount adds delta to the stored count.
func (l *RobustList) CorruptCount(delta int) {
	l.count += delta
}

// NodeIDs returns the ids of all nodes in forward order (for targeting
// corruption in experiments); it tolerates corruption by bounding the
// walk.
func (l *RobustList) NodeIDs() []int {
	var ids []int
	cur := l.head
	for cur != nilRef && len(ids) <= len(l.nodes) {
		n, ok := l.nodes[cur]
		if !ok {
			break
		}
		ids = append(ids, cur)
		cur = n.next
	}
	return ids
}

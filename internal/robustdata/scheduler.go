package robustdata

import (
	"errors"
	"fmt"
)

// Software audits in the sense of Connet et al. run *periodically*: the
// system checks its own integrity every so many operations, trading audit
// overhead against the latency between a corruption and its detection
// (during which reads may return wrong data or fail). AuditScheduler
// packages that policy around any auditable structure.

// Auditable is a structure that can check and repair its own redundant
// data.
type Auditable interface {
	// Audit returns the number of defects found (0 means consistent).
	AuditCount() int
	// Repair reconstructs the structure from its redundancy.
	Repair() error
}

// robustListAuditable adapts RobustList to the Auditable interface.
type robustListAuditable struct{ l *RobustList }

func (a robustListAuditable) AuditCount() int { return len(a.l.Audit()) }
func (a robustListAuditable) Repair() error   { return a.l.Repair() }

// AsAuditable exposes a RobustList through the Auditable interface.
func AsAuditable(l *RobustList) Auditable { return robustListAuditable{l: l} }

// AuditScheduler runs an audit-and-repair pass every Period operations.
type AuditScheduler struct {
	target Auditable
	// Period is the number of operations between audits.
	Period int

	sinceAudit int
	// Audits counts audit passes performed.
	Audits int
	// DefectsFound accumulates defects detected across all passes.
	DefectsFound int
	// Repairs counts repair invocations that succeeded.
	Repairs int
}

// NewAuditScheduler builds a scheduler over target with the given period.
func NewAuditScheduler(target Auditable, period int) (*AuditScheduler, error) {
	if target == nil {
		return nil, errors.New("robustdata: nil audit target")
	}
	if period < 1 {
		return nil, errors.New("robustdata: audit period must be at least 1")
	}
	return &AuditScheduler{target: target, Period: period}, nil
}

// Tick records one structure operation; when the period elapses it audits
// and, if defects are found, repairs. It reports whether an audit ran and
// any repair error.
func (s *AuditScheduler) Tick() (audited bool, err error) {
	s.sinceAudit++
	if s.sinceAudit < s.Period {
		return false, nil
	}
	s.sinceAudit = 0
	s.Audits++
	defects := s.target.AuditCount()
	if defects == 0 {
		return true, nil
	}
	s.DefectsFound += defects
	if err := s.target.Repair(); err != nil {
		return true, fmt.Errorf("audit repair: %w", err)
	}
	s.Repairs++
	return true, nil
}

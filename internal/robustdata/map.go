package robustdata

import (
	"fmt"
	"hash/crc32"
	"strconv"
)

// RobustMap is a checksummed, shadowed key-value store: every entry is
// stored twice (primary and shadow), each with a CRC32 checksum. A read
// verifies the primary checksum and transparently repairs the primary
// from the shadow when the audit fails — Connet-style software defenses
// applied at the data-structure level.
type RobustMap struct {
	primary map[string]entry
	shadow  map[string]entry

	// Repairs counts transparent repairs performed by Get.
	Repairs int
}

type entry struct {
	value int
	sum   uint32
}

func checksum(key string, value int) uint32 {
	return crc32.ChecksumIEEE([]byte(key + "\x00" + strconv.Itoa(value)))
}

// NewRobustMap creates an empty robust map.
func NewRobustMap() *RobustMap {
	return &RobustMap{
		primary: make(map[string]entry),
		shadow:  make(map[string]entry),
	}
}

// Len returns the number of keys.
func (m *RobustMap) Len() int { return len(m.primary) }

// Put stores key=value in both copies with fresh checksums.
func (m *RobustMap) Put(key string, value int) {
	e := entry{value: value, sum: checksum(key, value)}
	m.primary[key] = e
	m.shadow[key] = e
}

// Get returns the value for key. A corrupted primary entry is detected by
// its checksum and repaired from the shadow; if both copies are corrupted
// the error wraps ErrUnrepairable.
func (m *RobustMap) Get(key string) (int, error) {
	p, ok := m.primary[key]
	if !ok {
		return 0, fmt.Errorf("key %q not found: %w", key, ErrCorrupted)
	}
	if p.sum == checksum(key, p.value) {
		return p.value, nil
	}
	s, ok := m.shadow[key]
	if ok && s.sum == checksum(key, s.value) {
		m.primary[key] = s
		m.Repairs++
		return s.value, nil
	}
	return 0, fmt.Errorf("key %q corrupted in both copies: %w", key, ErrUnrepairable)
}

// AuditMap scans all entries in both copies and returns the keys with
// checksum mismatches, primary first, then shadow.
func (m *RobustMap) AuditMap() (badPrimary, badShadow []string) {
	for k, e := range m.primary {
		if e.sum != checksum(k, e.value) {
			badPrimary = append(badPrimary, k)
		}
	}
	for k, e := range m.shadow {
		if e.sum != checksum(k, e.value) {
			badShadow = append(badShadow, k)
		}
	}
	return badPrimary, badShadow
}

// RepairAll repairs every corrupted entry that still has one good copy
// and reports how many were repaired and how many are lost.
func (m *RobustMap) RepairAll() (repaired, lost int) {
	for k := range m.primary {
		p := m.primary[k]
		s, hasShadow := m.shadow[k]
		pOK := p.sum == checksum(k, p.value)
		sOK := hasShadow && s.sum == checksum(k, s.value)
		switch {
		case pOK && sOK:
		case pOK && !sOK:
			m.shadow[k] = p
			repaired++
		case !pOK && sOK:
			m.primary[k] = s
			repaired++
		default:
			lost++
		}
	}
	m.Repairs += repaired
	return repaired, lost
}

// CorruptPrimary overwrites the primary copy's value without updating the
// checksum (a stray-write corruption). It reports whether the key exists.
func (m *RobustMap) CorruptPrimary(key string, garbage int) bool {
	e, ok := m.primary[key]
	if !ok {
		return false
	}
	e.value = garbage
	m.primary[key] = e
	return true
}

// CorruptShadow corrupts the shadow copy's value.
func (m *RobustMap) CorruptShadow(key string, garbage int) bool {
	e, ok := m.shadow[key]
	if !ok {
		return false
	}
	e.value = garbage
	m.shadow[key] = e
	return true
}

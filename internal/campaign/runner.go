package campaign

// The sweep runner: a Spec names a parameter grid (pattern × n × p) and
// a set of seeds; Execute runs every (point, seed) pair across parallel
// workers and assembles the Run document. Workers parallelize across
// pairs, never within one — each pair's trial sequence stays strictly
// sequential so deterministic configs replay byte-identically.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/faultmodel"
)

// Spec is a sweep request: the grid axes, the seeds, and the execution
// knobs. It is stored inside the Run it produces.
type Spec struct {
	// Name labels the run in listings.
	Name string `json:"name,omitempty"`
	// Mode is "sim" or "chaos" (net runs are recorded by faultsim, not
	// swept here).
	Mode string `json:"mode"`
	// Pattern is the executor shape: single, sequential, selection, nvp.
	Pattern string `json:"pattern,omitempty"`
	// N and P are the grid axes: redundancy degrees and per-variant
	// failure probabilities. Empty axes collapse to a single default
	// point (n=3; p=0).
	N []int     `json:"n,omitempty"`
	P []float64 `json:"p,omitempty"`
	// Rho and Bohr are held fixed across the grid.
	Rho  float64 `json:"rho,omitempty"`
	Bohr int     `json:"bohr,omitempty"`
	// Trials is the per-seed trial count (sim mode; chaos mode takes its
	// length from the schedule).
	Trials int `json:"trials,omitempty"`
	// Seeds is the seed set; every grid point runs once per seed.
	Seeds []uint64 `json:"seeds"`
	// Chaos is the schedule swept in chaos mode.
	Chaos *faultmodel.Campaign `json:"chaos,omitempty"`
	// Workers caps sweep parallelism (default GOMAXPROCS, capped at the
	// pair count).
	Workers int `json:"workers,omitempty"`
	// DropTrials stores aggregates only — for large sweeps and committed
	// baselines, where per-trial rows would bloat the document. Dropping
	// rows forfeits trial-level replay detail (aggregates still compare).
	DropTrials bool `json:"drop_trials,omitempty"`
	// Observe attaches an obs collector to every pair and stores its
	// executor snapshots.
	Observe bool `json:"observe,omitempty"`
}

// Validate checks the spec before a sweep starts.
func (s *Spec) Validate() error {
	switch s.Mode {
	case "sim":
		switch s.Pattern {
		case "single", "sequential", "selection", "nvp":
		default:
			return fmt.Errorf("%w: sim pattern %q (want single, sequential, selection, or nvp)", ErrBadConfig, s.Pattern)
		}
		if s.Trials <= 0 {
			return fmt.Errorf("%w: sim mode needs trials > 0", ErrBadConfig)
		}
	case "chaos":
		switch s.Pattern {
		case "", "single", "sequential", "selection":
		default:
			return fmt.Errorf("%w: chaos pattern %q (want single, sequential, or selection)", ErrBadConfig, s.Pattern)
		}
		if s.Chaos == nil {
			return fmt.Errorf("%w: chaos mode needs a chaos schedule", ErrBadConfig)
		}
		if err := s.Chaos.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: mode %q (want sim or chaos)", ErrBadConfig, s.Mode)
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("%w: no seeds", ErrBadConfig)
	}
	for _, p := range s.P {
		if p < 0 || p > 1 {
			return fmt.Errorf("%w: failure probability %g outside [0,1]", ErrBadConfig, p)
		}
	}
	for _, n := range s.N {
		if n < 1 {
			return fmt.Errorf("%w: redundancy degree %d < 1", ErrBadConfig, n)
		}
	}
	return nil
}

// Points expands the grid axes into the sweep's configs (seed unset;
// Execute fills it per pair).
func (s *Spec) Points() []Config {
	ns := s.N
	if len(ns) == 0 {
		ns = []int{3}
	}
	ps := s.P
	if len(ps) == 0 {
		ps = []float64{0}
	}
	pattern := s.Pattern
	if pattern == "" && s.Mode == "chaos" {
		pattern = "sequential"
	}
	var out []Config
	for _, n := range ns {
		for _, p := range ps {
			cfg := Config{
				Mode:     s.Mode,
				Pattern:  pattern,
				Variants: n,
				FailureP: p,
				Rho:      s.Rho,
				Bohr:     s.Bohr,
				Trials:   s.Trials,
				Chaos:    s.Chaos,
			}
			if s.Mode == "chaos" {
				cfg.Trials = s.Chaos.Total()
			}
			out = append(out, cfg)
		}
	}
	return out
}

// Progress is one sweep progress event, streamed to the run verb's
// reporter as pairs advance.
type Progress struct {
	Point      int    // grid point index
	Points     int    // grid point count
	Seed       uint64 // the pair's seed
	SeedIndex  int
	Seeds      int
	Done       int // trials finished in this pair
	Total      int // trials in this pair
	Key        string
	PairDone   bool
	PairsDone  int
	PairsTotal int
}

// Execute runs the sweep and returns the assembled (unsaved) Run.
// onProgress, when non-nil, receives throttled per-pair progress; it may
// be called from multiple workers concurrently.
func Execute(ctx context.Context, spec *Spec, onProgress func(Progress)) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	configs := spec.Points()
	run := &Run{Name: spec.Name, Build: CurrentBuild(), Spec: spec}
	run.Points = make([]PointResult, len(configs))
	for i, cfg := range configs {
		run.Points[i] = PointResult{Config: cfg, Seeds: make([]SeedResult, len(spec.Seeds))}
	}

	type job struct{ pi, si int }
	jobs := make([]job, 0, len(configs)*len(spec.Seeds))
	for pi := range configs {
		for si := range spec.Seeds {
			jobs = append(jobs, job{pi, si})
		}
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		pairsDone int
	)
	next := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				cfg := configs[j.pi]
				cfg.Seed = spec.Seeds[j.si]
				var report func(done, total int)
				if onProgress != nil {
					report = func(done, total int) {
						onProgress(Progress{
							Point: j.pi, Points: len(configs),
							Seed: cfg.Seed, SeedIndex: j.si, Seeds: len(spec.Seeds),
							Done: done, Total: total, Key: cfg.Key(),
							PairsTotal: len(jobs),
						})
					}
				}
				res, err := runSeed(ctx, cfg, spec.Observe, report)
				mu.Lock()
				if err != nil {
					if firstErr == nil && ctx.Err() == nil {
						firstErr = fmt.Errorf("campaign: point %d seed %d: %w", j.pi, cfg.Seed, err)
					} else if firstErr == nil {
						firstErr = err
					}
					cancel()
					mu.Unlock()
					continue
				}
				run.Points[j.pi].Seeds[j.si] = res
				pairsDone++
				done := pairsDone
				mu.Unlock()
				if onProgress != nil {
					onProgress(Progress{
						Point: j.pi, Points: len(configs),
						Seed: cfg.Seed, SeedIndex: j.si, Seeds: len(spec.Seeds),
						Done: res.Aggregates.Deterministic.Trials, Total: res.Aggregates.Deterministic.Trials,
						Key: cfg.Key(), PairDone: true, PairsDone: done, PairsTotal: len(jobs),
					})
				}
			}
		}()
	}
	for _, j := range jobs {
		select {
		case next <- j:
		case <-ctx.Done():
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pool each point's trials across seeds, then optionally drop rows.
	for pi := range run.Points {
		p := &run.Points[pi]
		var all []Trial
		var elapsed int64
		for si := range p.Seeds {
			all = append(all, p.Seeds[si].Trials...)
			elapsed += int64(p.Seeds[si].Aggregates.Timing.Elapsed)
		}
		pooled := computeAggregates(all, 0, nil, nil)
		pooled.Timing.Elapsed = time.Duration(elapsed)
		p.Pooled = pooled
		if spec.DropTrials {
			for si := range p.Seeds {
				p.Seeds[si].Trials = nil
			}
		}
	}
	return run, nil
}

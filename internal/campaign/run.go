// Package campaign is the persistence tier of the experiment harness: a
// file-backed store of ULID-keyed runs, each a single JSON document
// capturing the fully resolved configuration (fault model, chaos and
// network schedules, seeds, executor policies, build info), the
// per-trial rows, and the derived aggregates (availability with Wilson
// bounds, latency percentiles, TPR/FPR-style detection rates, and the
// observation-layer counters). On top of the store sit the verbs the
// paper's statistical claims need to become a regression ratchet:
// Execute (parameter-grid sweeps across seeds), Diff (metric deltas
// with noise bounds from the per-seed spread), and Replay (re-execute a
// stored seed+config and assert byte-identical deterministic results).
package campaign

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// Config is one fully resolved experiment configuration — a single grid
// point of a sweep, or the echo of one faultsim invocation. Everything a
// reproduction needs is in here; `faultsim -config-out` emits exactly
// this struct.
type Config struct {
	// Mode selects the workload: "sim" (Monte Carlo over a pattern
	// executor), "chaos" (a deterministic chaos campaign), or "net" (the
	// distributed replica fleet; recorded by faultsim, not re-executable
	// by Replay — its outcomes are wall-clock).
	Mode string `json:"mode"`
	// Pattern is the executor shape: single, sequential, selection, nvp.
	Pattern string `json:"pattern,omitempty"`
	// Variants is the redundancy degree n.
	Variants int `json:"variants,omitempty"`
	// FailureP and Rho parameterize the sim fault law.
	FailureP float64 `json:"failure_p,omitempty"`
	Rho      float64 `json:"rho,omitempty"`
	// Bohr marks variant k (1-based) as deterministically broken.
	Bohr int `json:"bohr,omitempty"`
	// Trials is the per-seed trial count (for chaos mode, the campaign's
	// own schedule length governs and this echoes it).
	Trials int `json:"trials"`
	// Seed drives every random decision of the trial sequence.
	Seed uint64 `json:"seed"`
	// Chaos is the resolved chaos schedule (chaos mode).
	Chaos *faultmodel.Campaign `json:"chaos,omitempty"`
	// Network is the resolved network-fault schedule (net mode).
	Network *faultmodel.NetworkCampaign `json:"network,omitempty"`
	// Requests is the net-mode workload size (clean network).
	Requests int `json:"requests,omitempty"`
	// Replicas is the quorum fleet size n (quorum mode).
	Replicas int `json:"replicas,omitempty"`
	// Adversary is the Byzantine strategy spec ("always:1", "collude:2")
	// applied to the fleet's first replicas (quorum mode).
	Adversary string `json:"adversary,omitempty"`
	// Control records whether the autonomic controller was live ("on")
	// or the run was the static-configuration control arm ("off").
	// Empty means the invocation had no controller at all.
	Control string `json:"control,omitempty"`
	// Gray records whether the gray-failure mitigation stack (latency
	// ejector + straggler-aware routing) was live ("on") or the run was
	// the unmitigated arm ("off"). Empty means the invocation injected
	// no fail-slow fault at all.
	Gray string `json:"gray,omitempty"`
	// GrayFault is the fail-slow spec injected into the fleet
	// ("constant:20", "progressive:20", "bursts:20"), gray mode only.
	GrayFault string `json:"gray_fault,omitempty"`
	// Executor records the resilience/transport policies in force.
	Executor ExecutorConfig `json:"executor,omitempty"`
}

// ExecutorConfig records the policy stack an invocation ran with, so a
// transcript can be reproduced exactly. Zero fields mean the policy was
// not configured.
type ExecutorConfig struct {
	BreakerConsecutiveFailures int                 `json:"breaker_consecutive_failures,omitempty"`
	BreakerOpenFor             faultmodel.Duration `json:"breaker_open_for,omitempty"`
	RetryBaseBackoff           faultmodel.Duration `json:"retry_base_backoff,omitempty"`
	RetryMaxBackoff            faultmodel.Duration `json:"retry_max_backoff,omitempty"`
	RetryJitter                float64             `json:"retry_jitter,omitempty"`
	RetryBudget                int                 `json:"retry_budget,omitempty"`
	BulkheadMaxConcurrent      int                 `json:"bulkhead_max_concurrent,omitempty"`
	BulkheadMaxWaiting         int                 `json:"bulkhead_max_waiting,omitempty"`
	Deadline                   faultmodel.Duration `json:"deadline,omitempty"`
	VariantDeadline            faultmodel.Duration `json:"variant_deadline,omitempty"`
	Fallback                   string              `json:"fallback,omitempty"`
	CallTimeout                faultmodel.Duration `json:"call_timeout,omitempty"`
	HedgeAfter                 faultmodel.Duration `json:"hedge_after,omitempty"`
	MaxHedges                  int                 `json:"max_hedges,omitempty"`
}

// Key is the stable identity of a grid point: two runs are comparable
// point-by-point when their Keys match. Seeds are deliberately excluded
// — the same point swept with different seeds is still the same point.
func (c Config) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s", c.Mode)
	if c.Pattern != "" {
		fmt.Fprintf(&b, " pattern=%s", c.Pattern)
	}
	if c.Variants > 0 {
		fmt.Fprintf(&b, " n=%d", c.Variants)
	}
	if c.FailureP > 0 {
		fmt.Fprintf(&b, " p=%g", c.FailureP)
	}
	if c.Rho > 0 {
		fmt.Fprintf(&b, " rho=%g", c.Rho)
	}
	if c.Bohr > 0 {
		fmt.Fprintf(&b, " bohr=%d", c.Bohr)
	}
	if c.Chaos != nil {
		fmt.Fprintf(&b, " chaos=%s", c.Chaos.Name)
	}
	if c.Network != nil {
		fmt.Fprintf(&b, " net=%s", c.Network.Name)
	}
	if c.Replicas > 0 {
		fmt.Fprintf(&b, " replicas=%d", c.Replicas)
	}
	if c.Adversary != "" {
		fmt.Fprintf(&b, " adversary=%s", c.Adversary)
	}
	if c.Control != "" {
		fmt.Fprintf(&b, " control=%s", c.Control)
	}
	if c.Gray != "" {
		fmt.Fprintf(&b, " gray=%s", c.Gray)
	}
	if c.GrayFault != "" {
		fmt.Fprintf(&b, " grayfault=%s", c.GrayFault)
	}
	fmt.Fprintf(&b, " trials=%d", c.Trials)
	return b.String()
}

// Deterministic reports whether a seed's trial outcomes are a pure
// function of (Config, Seed) — the precondition for Replay's
// byte-identical assertion. Parallel selection races variants against
// the scheduler, the network fleet runs on the wall clock, and a
// recorded resilience-policy stack (breakers, retries, deadlines) makes
// outcomes timing-dependent; none of those replay exactly. The
// plain sequential shapes and nvp do.
func (c Config) Deterministic() bool {
	switch c.Mode {
	case "sim", "chaos":
		return c.Pattern != "selection" && c.Executor == (ExecutorConfig{})
	default:
		return false
	}
}

// BuildInfo pins the binary a run came from.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	Module    string `json:"module,omitempty"`
	Commit    string `json:"commit,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// CurrentBuild captures the running binary's build info (VCS data is
// present only in builds made from a checkout with module info).
func CurrentBuild() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH}
	if info, ok := debug.ReadBuildInfo(); ok {
		b.Module = info.Main.Path
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				if len(s.Value) > 12 {
					b.Commit = s.Value[:12]
				} else {
					b.Commit = s.Value
				}
			case "vcs.modified":
				b.Dirty = s.Value == "true"
			}
		}
	}
	return b
}

// Trial is one request's row: what happened, how long it took, who
// served it, what the fault model did to it, and its trace identity.
type Trial struct {
	Index int `json:"i"`
	// Outcome is ok, failed, shed, degraded, or breaker-open.
	Outcome string `json:"outcome"`
	// Latency is wall-clock and therefore excluded from Replay's
	// determinism digest.
	Latency time.Duration `json:"latency_ns"`
	// Variant names who served the accepted answer, when attributable.
	Variant string `json:"variant,omitempty"`
	// Fault is the scheduled disturbance label (ground truth from the
	// fault model), empty for a clean trial.
	Fault string `json:"fault,omitempty"`
	// Detected reports whether the executor observed a variant failure
	// on this trial — the "alarm" half of the TPR/FPR tally. In quorum
	// mode it means the wrong answer was outvoted.
	Detected bool `json:"detected,omitempty"`
	// Wrong reports that the accepted answer itself was wrong — a lie
	// that survived adjudication. The quorum invariant under test is
	// that this never happens while liars ≤ k.
	Wrong bool `json:"wrong,omitempty"`
	// TraceID is the distributed-trace identity, when traced.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Actions counts autonomic-controller reconfigurations that landed
	// while this trial was in flight. Wall-clock-scheduled, so excluded
	// from Replay's determinism digest like Latency.
	Actions int `json:"actions,omitempty"`
}

// Outcome labels.
const (
	OutcomeOK          = "ok"
	OutcomeFailed      = "failed"
	OutcomeShed        = "shed"
	OutcomeDegraded    = "degraded"
	OutcomeBreakerOpen = "breaker-open"
)

// Deterministic is the replay-comparable half of a seed's aggregates:
// pure functions of (Config, Seed) for deterministic configs.
type Deterministic struct {
	Trials   int            `json:"trials"`
	Outcomes map[string]int `json:"outcomes"`
	// Availability is OK/Trials with a 95% Wilson interval.
	Availability   float64 `json:"availability"`
	AvailabilityLo float64 `json:"availability_lo"`
	AvailabilityHi float64 `json:"availability_hi"`
	// VariantServed tallies who served accepted answers.
	VariantServed map[string]int `json:"variant_served,omitempty"`
	// FaultsInjected tallies scheduled disturbances by label;
	// InjectedTrials is the number of trials with at least one.
	FaultsInjected map[string]int `json:"faults_injected,omitempty"`
	InjectedTrials int            `json:"injected_trials"`
	// Detection quality, scored against the fault model's ground truth:
	// TPR is the fraction of injected trials on which the executor
	// observed a variant failure; FPR the fraction of clean trials
	// flagged anyway (breaker artifacts, deadline kills).
	DetectedTrials int     `json:"detected_trials"`
	TPR            float64 `json:"tpr"`
	FPR            float64 `json:"fpr"`
	// WrongAnswers counts trials whose *accepted* answer was wrong —
	// quorum mode's zero-tolerance metric.
	WrongAnswers int `json:"wrong_answers,omitempty"`
}

// Conviction scores the failure detector's end-of-run verdicts against
// the adversary ground truth, per replica: a liar is convicted when the
// detector holds it suspect or dead. TPR is convicted liars over liars;
// FPR is convicted honest replicas over honest replicas.
type Conviction struct {
	Liars           int     `json:"liars"`
	ConvictedLiars  int     `json:"convicted_liars"`
	Honest          int     `json:"honest"`
	ConvictedHonest int     `json:"convicted_honest"`
	TPR             float64 `json:"tpr"`
	FPR             float64 `json:"fpr"`
}

// rates derives the TPR/FPR fields from the tallies.
func (c *Conviction) rates() {
	c.TPR, c.FPR = 0, 0
	if c.Liars > 0 {
		c.TPR = float64(c.ConvictedLiars) / float64(c.Liars)
	}
	if c.Honest > 0 {
		c.FPR = float64(c.ConvictedHonest) / float64(c.Honest)
	}
}

// NewConviction tallies detector verdicts (replica name → convicted)
// against the ground-truth liar set.
func NewConviction(liars map[string]bool, convicted map[string]bool) *Conviction {
	c := &Conviction{}
	for name, lies := range liars {
		if lies {
			c.Liars++
			if convicted[name] {
				c.ConvictedLiars++
			}
		} else {
			c.Honest++
			if convicted[name] {
				c.ConvictedHonest++
			}
		}
	}
	c.rates()
	return c
}

// Ejection scores the latency ejector's verdicts against the fail-slow
// ground truth, per replica: a limper is caught when the ejector ever
// ejected it during the run. TPR is ejected limpers over limpers; FPR
// is ejected healthy replicas over healthy replicas. TailAmplification
// is the run's p99 over the healthy-phase baseline p99 — the headline
// gray-failure number (mitigated runs should hold it near 1).
type Ejection struct {
	Limpers           int     `json:"limpers"`
	EjectedLimpers    int     `json:"ejected_limpers"`
	Healthy           int     `json:"healthy"`
	EjectedHealthy    int     `json:"ejected_healthy"`
	Reinstated        int     `json:"reinstated"`
	TailAmplification float64 `json:"tail_amplification,omitempty"`
	TPR               float64 `json:"tpr"`
	FPR               float64 `json:"fpr"`
}

// rates derives the TPR/FPR fields from the tallies.
func (e *Ejection) rates() {
	e.TPR, e.FPR = 0, 0
	if e.Limpers > 0 {
		e.TPR = float64(e.EjectedLimpers) / float64(e.Limpers)
	}
	if e.Healthy > 0 {
		e.FPR = float64(e.EjectedHealthy) / float64(e.Healthy)
	}
}

// NewEjection tallies ejector verdicts (replica name → ever ejected)
// against the ground-truth limper set.
func NewEjection(limpers map[string]bool, ejected map[string]bool) *Ejection {
	e := &Ejection{}
	for name, limps := range limpers {
		if limps {
			e.Limpers++
			if ejected[name] {
				e.EjectedLimpers++
			}
		} else {
			e.Healthy++
			if ejected[name] {
				e.EjectedHealthy++
			}
		}
	}
	e.rates()
	return e
}

// Timing is the wall-clock half: real latencies, never replay-compared.
type Timing struct {
	Elapsed time.Duration `json:"elapsed_ns"`
	Mean    time.Duration `json:"mean_ns"`
	P50     time.Duration `json:"p50_ns"`
	P90     time.Duration `json:"p90_ns"`
	P99     time.Duration `json:"p99_ns"`
	Max     time.Duration `json:"max_ns"`
}

// Aggregates derives everything reports and diffs read from one block
// of trials, plus the observation-layer snapshots taken at the end of
// the block.
type Aggregates struct {
	Deterministic Deterministic `json:"deterministic"`
	Timing        Timing        `json:"timing"`
	// Conviction scores replica-level lying-replica detection, attached
	// by quorum-mode recorders (it needs the detector's end state, which
	// trial rows do not carry).
	Conviction *Conviction `json:"conviction,omitempty"`
	// Ejection scores replica-level fail-slow containment, attached by
	// gray-mode recorders (it needs the ejector's end state and the
	// healthy-phase baseline, which trial rows do not carry). Runs
	// without an injected limper leave it nil, so other modes never
	// gate on ejection metrics.
	Ejection *Ejection `json:"ejection,omitempty"`
	// Actions tallies autonomic-controller interventions by action kind
	// (replace, hedge-tune, ...), attached by control-mode recorders.
	// Runs without a controller leave it nil, so static runs never gate
	// on intervention metrics.
	Actions map[string]int `json:"actions,omitempty"`
	// Observed carries the obs Collector's final executor snapshots
	// (hedge/breaker/shed counters, latency histograms) and SLO the
	// SLOTracker's burn-rate state, when the run had them attached.
	Observed []obs.ExecutorSnapshot `json:"observed,omitempty"`
	SLO      []obs.SLOStatus        `json:"slo,omitempty"`
}

// SeedResult is one seed's slice of a grid point.
type SeedResult struct {
	Seed       uint64     `json:"seed"`
	Trials     []Trial    `json:"trials,omitempty"`
	Aggregates Aggregates `json:"aggregates"`
}

// PointResult is one grid point: the resolved config and its per-seed
// results, plus aggregates pooled over every seed's trials.
type PointResult struct {
	Config Config       `json:"config"`
	Seeds  []SeedResult `json:"seeds"`
	Pooled Aggregates   `json:"pooled"`
}

// Run is the persisted document: one ULID-keyed JSON file in the store.
type Run struct {
	ID        string    `json:"id"`
	CreatedAt time.Time `json:"created_at"`
	Name      string    `json:"name,omitempty"`
	Note      string    `json:"note,omitempty"`
	Build     BuildInfo `json:"build"`
	// Spec is the sweep request that produced the run (nil for runs
	// recorded from a single faultsim invocation).
	Spec   *Spec         `json:"spec,omitempty"`
	Points []PointResult `json:"points"`
}

// TotalTrials sums trials across every point and seed.
func (r *Run) TotalTrials() int {
	n := 0
	for _, p := range r.Points {
		for _, s := range p.Seeds {
			n += s.Aggregates.Deterministic.Trials
		}
	}
	return n
}

// Availability is the run-wide pooled availability.
func (r *Run) Availability() float64 {
	ok, n := 0, 0
	for _, p := range r.Points {
		for _, s := range p.Seeds {
			d := s.Aggregates.Deterministic
			ok += d.Outcomes[OutcomeOK]
			n += d.Trials
		}
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// Modes returns the distinct modes of the run's points, in order.
func (r *Run) Modes() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Config.Mode] {
			seen[p.Config.Mode] = true
			out = append(out, p.Config.Mode)
		}
	}
	return out
}

// computeAggregates derives the aggregate block from trial rows. The
// collector and SLO snapshots are attached as-is when present.
func computeAggregates(trials []Trial, elapsed time.Duration, observed []obs.ExecutorSnapshot, slo []obs.SLOStatus) Aggregates {
	d := Deterministic{
		Trials:         len(trials),
		Outcomes:       map[string]int{},
		VariantServed:  map[string]int{},
		FaultsInjected: map[string]int{},
	}
	lat := make([]float64, 0, len(trials))
	var latSum, latMax time.Duration
	injected, detectedInjected, detectedClean := 0, 0, 0
	for _, t := range trials {
		d.Outcomes[t.Outcome]++
		if t.Variant != "" {
			d.VariantServed[t.Variant]++
		}
		if t.Fault != "" {
			for _, f := range strings.Split(t.Fault, "+") {
				d.FaultsInjected[f]++
			}
			injected++
			if t.Detected {
				detectedInjected++
			}
		} else if t.Detected {
			detectedClean++
		}
		if t.Detected {
			d.DetectedTrials++
		}
		if t.Wrong {
			d.WrongAnswers++
		}
		lat = append(lat, float64(t.Latency))
		latSum += t.Latency
		if t.Latency > latMax {
			latMax = t.Latency
		}
	}
	d.InjectedTrials = injected
	if injected > 0 {
		d.TPR = float64(detectedInjected) / float64(injected)
	}
	if clean := len(trials) - injected; clean > 0 {
		d.FPR = float64(detectedClean) / float64(clean)
	}
	if len(trials) > 0 {
		if prop, err := stats.NewProportion(d.Outcomes[OutcomeOK], len(trials)); err == nil {
			d.Availability = prop.Estimate
			d.AvailabilityLo = prop.Lo
			d.AvailabilityHi = prop.Hi
		}
	}
	// Empty maps marshal as {}; drop them so the deterministic digest is
	// stable between fresh and decoded runs.
	if len(d.VariantServed) == 0 {
		d.VariantServed = nil
	}
	if len(d.FaultsInjected) == 0 {
		d.FaultsInjected = nil
	}
	tm := Timing{Elapsed: elapsed, Max: latMax}
	if len(lat) > 0 {
		tm.Mean = latSum / time.Duration(len(lat))
		p50, _ := stats.Percentile(lat, 50)
		p90, _ := stats.Percentile(lat, 90)
		p99, _ := stats.Percentile(lat, 99)
		tm.P50, tm.P90, tm.P99 = time.Duration(p50), time.Duration(p90), time.Duration(p99)
	}
	return Aggregates{Deterministic: d, Timing: tm, Observed: observed, SLO: slo}
}

// NewSeedResult derives one seed's aggregates from recorded trial rows
// — the entry point external recorders (cmd/faultsim's -campaign-out)
// use to package an invocation for the store.
func NewSeedResult(seed uint64, trials []Trial, elapsed time.Duration, observed []obs.ExecutorSnapshot, slo []obs.SLOStatus) SeedResult {
	return SeedResult{Seed: seed, Trials: trials, Aggregates: computeAggregates(trials, elapsed, observed, slo)}
}

// NewRecordedRun packages one invocation's results as a single-point run
// document, pooling aggregates across the given seed results.
func NewRecordedRun(name string, cfg Config, seeds ...SeedResult) *Run {
	var all []Trial
	var elapsed time.Duration
	var conv *Conviction
	var ej *Ejection
	var actions map[string]int
	for _, s := range seeds {
		all = append(all, s.Trials...)
		elapsed += s.Aggregates.Timing.Elapsed
		if c := s.Aggregates.Conviction; c != nil {
			if conv == nil {
				conv = &Conviction{}
			}
			conv.Liars += c.Liars
			conv.ConvictedLiars += c.ConvictedLiars
			conv.Honest += c.Honest
			conv.ConvictedHonest += c.ConvictedHonest
		}
		if x := s.Aggregates.Ejection; x != nil {
			if ej == nil {
				ej = &Ejection{}
			}
			ej.Limpers += x.Limpers
			ej.EjectedLimpers += x.EjectedLimpers
			ej.Healthy += x.Healthy
			ej.EjectedHealthy += x.EjectedHealthy
			ej.Reinstated += x.Reinstated
			// The pooled tail amplification is the worst seed's — a
			// mitigation that fails on any seed fails the gate.
			if x.TailAmplification > ej.TailAmplification {
				ej.TailAmplification = x.TailAmplification
			}
		}
		if len(s.Aggregates.Actions) > 0 {
			if actions == nil {
				actions = map[string]int{}
			}
			for kind, n := range s.Aggregates.Actions {
				actions[kind] += n
			}
		}
	}
	pooled := computeAggregates(all, elapsed, nil, nil)
	if conv != nil {
		conv.rates()
		pooled.Conviction = conv
	}
	if ej != nil {
		ej.rates()
		pooled.Ejection = ej
	}
	pooled.Actions = actions
	return &Run{
		Name:   name,
		Build:  CurrentBuild(),
		Points: []PointResult{{Config: cfg, Seeds: seeds, Pooled: pooled}},
	}
}

// Metrics flattens one aggregate block into named scalars — the rows
// Diff compares. Latency metrics are in milliseconds; rates in [0, 1].
func (a *Aggregates) Metrics() map[string]float64 {
	d := &a.Deterministic
	n := float64(d.Trials)
	if n == 0 {
		n = 1
	}
	m := map[string]float64{
		"availability":    d.Availability,
		"failed_rate":     float64(d.Outcomes[OutcomeFailed]) / n,
		"tpr":             d.TPR,
		"fpr":             d.FPR,
		"latency_p50_ms":  float64(a.Timing.P50) / float64(time.Millisecond),
		"latency_p90_ms":  float64(a.Timing.P90) / float64(time.Millisecond),
		"latency_p99_ms":  float64(a.Timing.P99) / float64(time.Millisecond),
		"latency_mean_ms": float64(a.Timing.Mean) / float64(time.Millisecond),
	}
	if v := d.Outcomes[OutcomeShed]; v > 0 {
		m["shed_rate"] = float64(v) / n
	}
	if v := d.Outcomes[OutcomeDegraded]; v > 0 {
		m["degraded_rate"] = float64(v) / n
	}
	if v := d.Outcomes[OutcomeBreakerOpen]; v > 0 {
		m["breaker_open_rate"] = float64(v) / n
	}
	var hedges, hedgeWins int64
	for _, e := range a.Observed {
		hedges += e.Hedges
		hedgeWins += e.HedgeWins
	}
	if hedges > 0 {
		m["hedges_per_trial"] = float64(hedges) / n
		m["hedge_wins_per_trial"] = float64(hedgeWins) / n
	}
	// Byzantine metrics appear only on quorum-mode aggregates, so runs
	// without a conviction block never gate on them.
	if a.Conviction != nil || d.WrongAnswers > 0 {
		m["wrong_answer_rate"] = float64(d.WrongAnswers) / n
	}
	if a.Conviction != nil {
		m["conviction_tpr"] = a.Conviction.TPR
		m["conviction_fpr"] = a.Conviction.FPR
	}
	// Gray-failure metrics appear only on aggregates recorded with a
	// fail-slow fault injected, so other modes never gate on them.
	if a.Ejection != nil {
		m["ejection_tpr"] = a.Ejection.TPR
		m["ejection_fpr"] = a.Ejection.FPR
		if a.Ejection.TailAmplification > 0 {
			m["tail_amplification"] = a.Ejection.TailAmplification
		}
	}
	// Control-plane metrics appear only on aggregates recorded with a
	// controller attached, so static runs never gate on them.
	if a.Actions != nil {
		total := 0
		for _, v := range a.Actions {
			total += v
		}
		m["control_actions_per_trial"] = float64(total) / n
		m["control_replaces"] = float64(a.Actions["replace"])
	}
	return m
}

// MetricDef describes how one metric diffs: its direction and the
// absolute floor under which a delta is never significant.
type MetricDef struct {
	Name string
	// HigherBetter orients regressions; metrics with no direction (the
	// hedge counters) never gate.
	HigherBetter bool
	Directional  bool
	// Timing metrics are wall-clock: they gate only when the diff is
	// asked to (CI machines differ; seeds on one machine do not).
	Timing bool
	// Epsilon is the absolute delta floor.
	Epsilon float64
}

// metricCatalog is the diff's metric table, in report order.
var metricCatalog = []MetricDef{
	{Name: "availability", HigherBetter: true, Directional: true, Epsilon: 0.002},
	{Name: "failed_rate", HigherBetter: false, Directional: true, Epsilon: 0.002},
	{Name: "shed_rate", HigherBetter: false, Directional: true, Epsilon: 0.002},
	{Name: "degraded_rate", HigherBetter: false, Directional: true, Epsilon: 0.002},
	{Name: "breaker_open_rate", HigherBetter: false, Directional: true, Epsilon: 0.002},
	{Name: "tpr", HigherBetter: true, Directional: true, Epsilon: 0.002},
	{Name: "fpr", HigherBetter: false, Directional: true, Epsilon: 0.002},
	{Name: "wrong_answer_rate", HigherBetter: false, Directional: true, Epsilon: 0.0005},
	{Name: "conviction_tpr", HigherBetter: true, Directional: true, Epsilon: 0.02},
	{Name: "conviction_fpr", HigherBetter: false, Directional: true, Epsilon: 0.02},
	{Name: "ejection_tpr", HigherBetter: true, Directional: true, Epsilon: 0.02},
	{Name: "ejection_fpr", HigherBetter: false, Directional: true, Epsilon: 0.02},
	// Tail amplification is a wall-clock ratio (run p99 over healthy
	// baseline p99): timing-gated like the raw latency rows, with a wide
	// floor because a 20× limper makes the unmitigated arm very noisy.
	{Name: "tail_amplification", HigherBetter: false, Directional: true, Timing: true, Epsilon: 0.5},
	{Name: "latency_p50_ms", HigherBetter: false, Directional: true, Timing: true, Epsilon: 0.05},
	{Name: "latency_p90_ms", HigherBetter: false, Directional: true, Timing: true, Epsilon: 0.1},
	{Name: "latency_p99_ms", HigherBetter: false, Directional: true, Timing: true, Epsilon: 0.25},
	{Name: "latency_mean_ms", HigherBetter: false, Directional: true, Timing: true, Epsilon: 0.05},
	{Name: "hedges_per_trial", Directional: false},
	{Name: "hedge_wins_per_trial", Directional: false},
	// More interventions per trial at the same grid point means the
	// controller got less stable (flapping, or the fleet degraded more);
	// replacement counts are pinned because the chaos schedule decides
	// how many replicas die.
	{Name: "control_actions_per_trial", HigherBetter: false, Directional: true, Epsilon: 0.01},
	{Name: "control_replaces", HigherBetter: false, Directional: true, Epsilon: 0.5},
}

// canonicalJSON marshals v deterministically (encoding/json sorts map
// keys), the byte-identity Replay asserts on.
func canonicalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Every type marshaled here is plain data; an error is a bug.
		panic(fmt.Sprintf("campaign: canonical marshal: %v", err))
	}
	return b
}

// deterministicView is the replay-comparable projection of a seed
// result: the trial rows with wall-clock fields zeroed, plus the
// deterministic aggregates.
func deterministicView(s *SeedResult) any {
	trials := make([]Trial, len(s.Trials))
	for i, t := range s.Trials {
		t.Latency = 0
		t.Actions = 0
		trials[i] = t
	}
	return struct {
		Seed          uint64        `json:"seed"`
		Trials        []Trial       `json:"trials"`
		Deterministic Deterministic `json:"deterministic"`
	}{s.Seed, trials, s.Aggregates.Deterministic}
}

// DeterministicDigest is the canonical byte encoding Replay compares.
func (s *SeedResult) DeterministicDigest() []byte {
	return canonicalJSON(deterministicView(s))
}

// sortedKeys is a tiny helper for stable report rendering.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

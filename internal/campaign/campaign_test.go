package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/faultmodel"
)

// --- ULID ---

func TestULIDRoundTrip(t *testing.T) {
	at := time.UnixMilli(1723200000123)
	id := MakeULID(at, [10]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if len(id) != ULIDLen {
		t.Fatalf("len = %d, want %d", len(id), ULIDLen)
	}
	if err := ValidateULID(id); err != nil {
		t.Fatalf("ValidateULID: %v", err)
	}
	got, err := ULIDTime(id)
	if err != nil {
		t.Fatalf("ULIDTime: %v", err)
	}
	if got.UnixMilli() != at.UnixMilli() {
		t.Fatalf("time = %v, want %v", got.UnixMilli(), at.UnixMilli())
	}
}

func TestULIDLexicographicIsChronological(t *testing.T) {
	ids := []string{
		MakeULID(time.UnixMilli(1000), [10]byte{0xff}),
		MakeULID(time.UnixMilli(2000), [10]byte{0x00}),
		MakeULID(time.UnixMilli(2001), [10]byte{0x80}),
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("ULIDs not sorted by time: %v", ids)
	}
}

func TestULIDMonotonicSameMillisecond(t *testing.T) {
	at := time.UnixMilli(1723200000123)
	a := newULIDAt(at)
	b := newULIDAt(at)
	c := newULIDAt(at.Add(-time.Second)) // clock rewind
	if !(a < b && b < c) {
		t.Fatalf("same-ms ULIDs not monotonic: %q %q %q", a, b, c)
	}
}

func TestValidateULIDRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"SHORT",
		"8ZZZZZZZZZZZZZZZZZZZZZZZZZ", // first char > 7 overflows 128 bits
		"01ARZ3NDEKTSV4RRFFQ69G5FA!", // bad character
	} {
		if err := ValidateULID(bad); !errors.Is(err, ErrBadULID) {
			t.Errorf("ValidateULID(%q) = %v, want ErrBadULID", bad, err)
		}
	}
	// Crockford aliases decode: o->0, l->1.
	ok := "01arz3ndektsv4rrffq69g5fav"
	if err := ValidateULID(ok); err != nil {
		t.Errorf("lowercase ULID rejected: %v", err)
	}
}

// --- store ---

func testSpec() *Spec {
	return &Spec{
		Name:    "unit",
		Mode:    "sim",
		Pattern: "sequential",
		N:       []int{2},
		P:       []float64{0.3},
		Trials:  40,
		Seeds:   []uint64{1, 2},
		Workers: 2,
		Observe: true,
	}
}

func mustExecute(t *testing.T, spec *Spec) *Run {
	t.Helper()
	run, err := Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return run
}

func TestStoreSaveLoadResolve(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	run := mustExecute(t, testSpec())
	id, err := st.Save(run)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := ValidateULID(id); err != nil {
		t.Fatalf("Save assigned bad ULID: %v", err)
	}
	got, err := st.Load(id)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.ID != id || len(got.Points) != 1 || got.Name != "unit" {
		t.Fatalf("Load round-trip mismatch: %+v", got)
	}
	// Prefix resolution, case-insensitive.
	rid, err := st.Resolve(id[:8])
	if err != nil || rid != id {
		t.Fatalf("Resolve(%q) = %q, %v", id[:8], rid, err)
	}
	if _, err := st.Resolve("zzzz"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("Resolve miss = %v, want ErrRunNotFound", err)
	}
	sums, err := st.List()
	if err != nil || len(sums) != 1 {
		t.Fatalf("List = %v, %v", sums, err)
	}
	if sums[0].Trials != 2*40 {
		t.Fatalf("summary trials = %d, want 80", sums[0].Trials)
	}
}

func TestStoreResolveAmbiguous(t *testing.T) {
	st, _ := Open(t.TempDir())
	r1 := mustExecute(t, testSpec())
	r2 := mustExecute(t, testSpec())
	id1, _ := st.Save(r1)
	if _, err := st.Save(r2); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// The shared timestamp prefix is ambiguous.
	if _, err := st.Resolve(id1[:2]); !errors.Is(err, ErrAmbiguousRun) {
		t.Fatalf("Resolve(ambiguous) = %v, want ErrAmbiguousRun", err)
	}
}

func TestReadRunFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte("{not json"), 0o644)
	if _, err := ReadRunFile(path); !errors.Is(err, ErrCorruptRun) {
		t.Fatalf("ReadRunFile(corrupt) = %v, want ErrCorruptRun", err)
	}
}

// --- execute / determinism ---

func TestExecuteDeterministicAcrossWorkers(t *testing.T) {
	spec1 := testSpec()
	spec1.Workers = 1
	spec2 := testSpec()
	spec2.Workers = 4
	a := mustExecute(t, spec1)
	b := mustExecute(t, spec2)
	for pi := range a.Points {
		for si := range a.Points[pi].Seeds {
			da := a.Points[pi].Seeds[si].DeterministicDigest()
			db := b.Points[pi].Seeds[si].DeterministicDigest()
			if !bytes.Equal(da, db) {
				t.Fatalf("point %d seed %d digests differ across worker counts", pi, si)
			}
		}
	}
}

func TestExecuteGridShape(t *testing.T) {
	spec := testSpec()
	spec.N = []int{1, 3}
	spec.P = []float64{0.1, 0.5}
	run := mustExecute(t, spec)
	if len(run.Points) != 4 {
		t.Fatalf("points = %d, want 4 (2x2 grid)", len(run.Points))
	}
	keys := map[string]bool{}
	for _, p := range run.Points {
		keys[p.Config.Key()] = true
		if len(p.Seeds) != 2 {
			t.Fatalf("seeds = %d, want 2", len(p.Seeds))
		}
		if p.Pooled.Deterministic.Trials != 80 {
			t.Fatalf("pooled trials = %d, want 80", p.Pooled.Deterministic.Trials)
		}
	}
	if len(keys) != 4 {
		t.Fatalf("duplicate point keys: %v", keys)
	}
}

func TestSequentialMasksFailures(t *testing.T) {
	// n=3 redundancy over p=0.3 variants should mask most failures:
	// availability well above single-variant 0.7.
	spec := testSpec()
	spec.N = []int{3}
	spec.Trials = 200
	run := mustExecute(t, spec)
	avail := run.Availability()
	if avail < 0.95 {
		t.Fatalf("sequential n=3 availability = %v, want >= 0.95", avail)
	}
	// Injected trials were detected: spy saw the variant failures.
	d := run.Points[0].Pooled.Deterministic
	if d.InjectedTrials == 0 || d.TPR == 0 {
		t.Fatalf("no injection/detection recorded: %+v", d)
	}
}

func TestBohrVariantFailsDeterministically(t *testing.T) {
	spec := testSpec()
	spec.Pattern = "single"
	spec.N = []int{1}
	spec.P = []float64{0}
	spec.Bohr = 1
	spec.Trials = 10
	run := mustExecute(t, spec)
	d := run.Points[0].Pooled.Deterministic
	if d.Outcomes[OutcomeFailed] != 20 { // 10 trials x 2 seeds
		t.Fatalf("bohr outcomes = %+v, want all failed", d.Outcomes)
	}
	if d.FaultsInjected["bohr"] == 0 || d.TPR != 1 {
		t.Fatalf("bohr ground truth missing: %+v", d)
	}
}

func TestNVPMode(t *testing.T) {
	spec := &Spec{
		Mode: "sim", Pattern: "nvp",
		N: []int{3}, P: []float64{0.2},
		Trials: 100, Seeds: []uint64{7},
	}
	run := mustExecute(t, spec)
	avail := run.Availability()
	if avail <= 0.8 || avail > 1 {
		t.Fatalf("nvp availability = %v, want masking above single-version 0.8", avail)
	}
}

func chaosSpec() *Spec {
	return &Spec{
		Name:  "chaos-unit",
		Mode:  "chaos",
		N:     []int{2},
		Seeds: []uint64{11, 12},
		Chaos: &faultmodel.Campaign{
			Name: "unit",
			Phases: []faultmodel.ChaosPhase{
				{Name: "calm", Requests: 20},
				{Name: "burst", Requests: 30, ErrorBurst: 0.5},
			},
		},
	}
}

func TestChaosModeGroundTruth(t *testing.T) {
	run := mustExecute(t, chaosSpec())
	p := run.Points[0]
	if p.Config.Trials != 50 {
		t.Fatalf("chaos trials = %d, want schedule total 50", p.Config.Trials)
	}
	d := p.Pooled.Deterministic
	if d.FaultsInjected["error"] == 0 {
		t.Fatalf("no error disturbances recorded: %+v", d)
	}
	if d.InjectedTrials == 0 || d.InjectedTrials >= d.Trials {
		t.Fatalf("injected trials = %d of %d, want strict subset", d.InjectedTrials, d.Trials)
	}
	// The first 20 requests of every seed are the calm phase: clean rows.
	for _, s := range p.Seeds {
		for _, tr := range s.Trials[:20] {
			if tr.Fault != "" {
				t.Fatalf("calm-phase trial %d has fault %q", tr.Index, tr.Fault)
			}
		}
	}
}

// --- replay ---

func TestReplayByteIdentical(t *testing.T) {
	for _, spec := range []*Spec{testSpec(), chaosSpec()} {
		run := mustExecute(t, spec)
		rep, err := Replay(context.Background(), run, nil)
		if err != nil {
			t.Fatalf("%s: Replay: %v", spec.Name, err)
		}
		if rep.Mismatched != 0 || rep.Err() != nil {
			t.Fatalf("%s: replay mismatched: %+v", spec.Name, rep)
		}
		if rep.Matched == 0 {
			t.Fatalf("%s: replay matched nothing", spec.Name)
		}
	}
}

func TestReplaySurvivesStoreRoundTrip(t *testing.T) {
	st, _ := Open(t.TempDir())
	id, err := st.Save(mustExecute(t, testSpec()))
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := st.Load(id)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rep, err := Replay(context.Background(), loaded, nil)
	if err != nil || rep.Err() != nil {
		t.Fatalf("replay of decoded run: %v / %v", err, rep.Err())
	}
}

func TestReplayAggregatesOnlyWhenTrialsDropped(t *testing.T) {
	spec := testSpec()
	spec.DropTrials = true
	run := mustExecute(t, spec)
	if len(run.Points[0].Seeds[0].Trials) != 0 {
		t.Fatal("DropTrials kept trial rows")
	}
	rep, err := Replay(context.Background(), run, nil)
	if err != nil || rep.Err() != nil {
		t.Fatalf("aggregates-only replay: %v / %v", err, rep.Err())
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	run := mustExecute(t, testSpec())
	// Corrupt one stored trial outcome.
	s := &run.Points[0].Seeds[0]
	for i := range s.Trials {
		if s.Trials[i].Outcome == OutcomeOK {
			s.Trials[i].Outcome = OutcomeFailed
			break
		}
	}
	rep, err := Replay(context.Background(), run, nil)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Mismatched == 0 || !errors.Is(rep.Err(), ErrReplayMismatch) {
		t.Fatalf("tampered run replayed clean: %+v", rep)
	}
}

func TestReplayNotReplayable(t *testing.T) {
	run := mustExecute(t, testSpec())
	for i := range run.Points {
		run.Points[i].Config.Pattern = "selection"
	}
	if _, err := Replay(context.Background(), run, nil); !errors.Is(err, ErrNotReplayable) {
		t.Fatalf("Replay(selection-only) = %v, want ErrNotReplayable", err)
	}
}

// --- diff ---

func TestDiffIdenticalRunsClean(t *testing.T) {
	run := mustExecute(t, testSpec())
	rep := Diff(run, run, DiffOptions{})
	if rep.Regressed() || rep.Significant != 0 {
		t.Fatalf("self-diff not clean: %+v", rep)
	}
}

func TestDiffFlagsAvailabilityRegression(t *testing.T) {
	base := mustExecute(t, testSpec())
	cand := mustExecute(t, testSpec())
	// Synthetic regression: flip most OK trials of every candidate seed.
	for pi := range cand.Points {
		p := &cand.Points[pi]
		var all []Trial
		for si := range p.Seeds {
			s := &p.Seeds[si]
			for ti := range s.Trials {
				if s.Trials[ti].Outcome == OutcomeOK && ti%2 == 0 {
					s.Trials[ti].Outcome = OutcomeFailed
				}
			}
			s.Aggregates = computeAggregates(s.Trials, s.Aggregates.Timing.Elapsed, nil, nil)
			all = append(all, s.Trials...)
		}
		p.Pooled = computeAggregates(all, 0, nil, nil)
	}
	rep := Diff(base, cand, DiffOptions{})
	if !rep.Regressed() {
		t.Fatalf("availability regression not flagged:\n%s", rep.String())
	}
	found := false
	for _, p := range rep.Points {
		for _, m := range p.Metrics {
			if m.Metric == "availability" && m.Regression {
				found = true
			}
			if m.Metric == "failed_rate" && !m.Regression {
				t.Fatalf("failed_rate should regress too: %+v", m)
			}
		}
	}
	if !found {
		t.Fatalf("availability not marked regression:\n%s", rep.String())
	}
}

func TestDiffImprovementIsNotRegression(t *testing.T) {
	base := mustExecute(t, testSpec())
	cand := mustExecute(t, testSpec())
	// Make the *baseline* worse; the candidate is then an improvement.
	for pi := range base.Points {
		p := &base.Points[pi]
		var all []Trial
		for si := range p.Seeds {
			s := &p.Seeds[si]
			for ti := range s.Trials {
				if s.Trials[ti].Outcome == OutcomeOK && ti%2 == 0 {
					s.Trials[ti].Outcome = OutcomeFailed
				}
			}
			s.Aggregates = computeAggregates(s.Trials, s.Aggregates.Timing.Elapsed, nil, nil)
			all = append(all, s.Trials...)
		}
		p.Pooled = computeAggregates(all, 0, nil, nil)
	}
	rep := Diff(base, cand, DiffOptions{})
	if rep.Regressions != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", rep.String())
	}
	if rep.Significant == 0 {
		t.Fatalf("improvement should still be significant:\n%s", rep.String())
	}
}

func TestDiffTimingGatedOnlyOnRequest(t *testing.T) {
	base := mustExecute(t, testSpec())
	cand := mustExecute(t, testSpec())
	for pi := range cand.Points {
		cand.Points[pi].Pooled.Timing.P99 += 50 * time.Millisecond
		for si := range cand.Points[pi].Seeds {
			cand.Points[pi].Seeds[si].Aggregates.Timing.P99 += 50 * time.Millisecond
		}
	}
	if rep := Diff(base, cand, DiffOptions{}); rep.Regressions != 0 {
		t.Fatalf("timing regression gated without GateTiming:\n%s", rep.String())
	}
	if rep := Diff(base, cand, DiffOptions{GateTiming: true}); rep.Regressions == 0 {
		t.Fatalf("timing regression not gated with GateTiming:\n%s", rep.String())
	}
}

func TestDiffMissingPointFailsGate(t *testing.T) {
	base := mustExecute(t, testSpec())
	cand := mustExecute(t, testSpec())
	cand.Points = nil
	rep := Diff(base, cand, DiffOptions{})
	if !rep.Regressed() || len(rep.MissingInCand) != 1 {
		t.Fatalf("dropped point not flagged: %+v", rep)
	}
}

func TestEjectionBlockPoolingAndMetrics(t *testing.T) {
	// Ground truth: r2 limps and was caught; r1/r3 healthy, r3 falsely
	// ejected. Replica-level, like Conviction.
	ej := NewEjection(
		map[string]bool{"r1": false, "r2": true, "r3": false},
		map[string]bool{"r2": true, "r3": true},
	)
	if ej.TPR != 1 || ej.FPR != 0.5 {
		t.Fatalf("NewEjection rates: tpr=%g fpr=%g, want 1/0.5", ej.TPR, ej.FPR)
	}

	// Pooling across seeds sums tallies, recomputes rates, and keeps the
	// worst seed's tail amplification.
	mk := func(ta float64, e *Ejection) SeedResult {
		e.TailAmplification = ta
		s := NewSeedResult(1, []Trial{{Outcome: OutcomeOK}}, time.Millisecond, nil, nil)
		s.Aggregates.Ejection = e
		return s
	}
	run := NewRecordedRun("gray", Config{Mode: "gray", Trials: 1, Gray: "on", GrayFault: "constant:20"},
		mk(1.4, NewEjection(map[string]bool{"a": true, "b": false}, map[string]bool{"a": true})),
		mk(1.9, NewEjection(map[string]bool{"a": true, "b": false}, map[string]bool{})),
	)
	pooled := run.Points[0].Pooled.Ejection
	if pooled == nil {
		t.Fatal("pooled aggregates dropped the ejection block")
	}
	if pooled.Limpers != 2 || pooled.EjectedLimpers != 1 || pooled.TPR != 0.5 {
		t.Fatalf("pooled tallies: %+v", pooled)
	}
	if pooled.TailAmplification != 1.9 {
		t.Fatalf("pooled tail amplification = %g, want the worst seed's 1.9", pooled.TailAmplification)
	}

	// Metrics gate on presence: gray aggregates expose the rows, plain
	// aggregates never do — so non-gray runs cannot regress on them.
	m := run.Points[0].Pooled.Metrics()
	for _, name := range []string{"ejection_tpr", "ejection_fpr", "tail_amplification"} {
		if _, ok := m[name]; !ok {
			t.Fatalf("gray aggregates missing %s: %v", name, m)
		}
	}
	plain := NewSeedResult(1, []Trial{{Outcome: OutcomeOK}}, time.Millisecond, nil, nil)
	for name := range plain.Aggregates.Metrics() {
		if name == "ejection_tpr" || name == "ejection_fpr" || name == "tail_amplification" {
			t.Fatalf("plain aggregates leaked gray metric %s", name)
		}
	}

	// The grid key distinguishes arms and fault specs.
	key := run.Points[0].Config.Key()
	if !strings.Contains(key, "gray=on") || !strings.Contains(key, "grayfault=constant:20") {
		t.Fatalf("config key missing gray fields: %q", key)
	}
}

// --- bench files ---

func TestReadBenchFileLegacyAndNormalized(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "legacy.json")
	os.WriteFile(legacy, []byte(`[
	 {"package":"example.com/mod/internal/dist","name":"BenchmarkRPC","iterations":100,"ns_per_op":55387,"p99_ns":171080,"bytes_per_op":24829,"allocs_per_op":482}
	]`), 0o644)
	recs, err := ReadBenchFile(legacy)
	if err != nil {
		t.Fatalf("ReadBenchFile(legacy): %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("legacy rows = %d, want 4 metrics", len(recs))
	}
	byMetric := map[string]BenchRecord{}
	for _, r := range recs {
		if r.Benchmark != "dist/BenchmarkRPC" {
			t.Fatalf("benchmark name = %q", r.Benchmark)
		}
		byMetric[r.Metric] = r
	}
	if byMetric["ns_per_op"].Value != 55387 || byMetric["ns_per_op"].Unit != "ns/op" {
		t.Fatalf("ns_per_op row = %+v", byMetric["ns_per_op"])
	}

	norm := filepath.Join(dir, "norm.json")
	data, _ := json.Marshal(recs)
	os.WriteFile(norm, data, 0o644)
	recs2, err := ReadBenchFile(norm)
	if err != nil {
		t.Fatalf("ReadBenchFile(normalized): %v", err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("normalized reread = %d rows, want %d", len(recs2), len(recs))
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"x":1}`), 0o644)
	if _, err := ReadBenchFile(bad); !errors.Is(err, ErrBadBenchFile) {
		t.Fatalf("ReadBenchFile(bad) = %v, want ErrBadBenchFile", err)
	}
}

func TestDiffBench(t *testing.T) {
	base := []BenchRecord{
		{Benchmark: "b1", Metric: "ns_per_op", Value: 100},
		{Benchmark: "b1", Metric: "req_per_s", Value: 1000},
		{Benchmark: "b2", Metric: "ns_per_op", Value: 50},
	}
	cand := []BenchRecord{
		{Benchmark: "b1", Metric: "ns_per_op", Value: 200}, // 2x slower: regression
		{Benchmark: "b1", Metric: "req_per_s", Value: 990}, // within tolerance
	}
	rep := DiffBench(base, cand, 0.25)
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", rep.Regressions, rep.String())
	}
	if len(rep.MissingInCand) != 1 {
		t.Fatalf("missing = %v, want b2", rep.MissingInCand)
	}
}

// --- spec validation ---

func TestSpecValidate(t *testing.T) {
	bad := []*Spec{
		{Mode: "net", Seeds: []uint64{1}},
		{Mode: "sim", Pattern: "bogus", Trials: 1, Seeds: []uint64{1}},
		{Mode: "sim", Pattern: "single", Trials: 0, Seeds: []uint64{1}},
		{Mode: "sim", Pattern: "single", Trials: 1},
		{Mode: "sim", Pattern: "single", Trials: 1, Seeds: []uint64{1}, P: []float64{1.5}},
		{Mode: "chaos", Seeds: []uint64{1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated but should not: %+v", i, s)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

package campaign

// Replay: re-execute a stored run's deterministic (config, seed) pairs
// and assert the fresh results are byte-identical to the stored ones —
// the experiment harness's analogue of a WAL replay check. A run whose
// trials were dropped at record time still replays: the comparison
// falls back to the deterministic aggregates alone.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
)

// Replay errors.
var (
	// ErrNotReplayable reports a run with no deterministic points (net
	// mode, or parallel selection everywhere).
	ErrNotReplayable = errors.New("campaign: run has no deterministic points to replay")
	// ErrReplayMismatch reports a replay that diverged from the stored
	// results.
	ErrReplayMismatch = errors.New("campaign: replay diverged from stored run")
)

// SeedReplay is one (point, seed) pair's verdict.
type SeedReplay struct {
	Seed   uint64 `json:"seed"`
	Match  bool   `json:"match"`
	Detail string `json:"detail,omitempty"`
}

// PointReplay is one grid point's verdicts.
type PointReplay struct {
	Key     string       `json:"key"`
	Skipped bool         `json:"skipped,omitempty"` // nondeterministic config
	Seeds   []SeedReplay `json:"seeds,omitempty"`
}

// ReplayReport is the whole replay's outcome.
type ReplayReport struct {
	RunID      string        `json:"run_id"`
	Points     []PointReplay `json:"points"`
	Matched    int           `json:"matched"`
	Mismatched int           `json:"mismatched"`
	Skipped    int           `json:"skipped"` // nondeterministic pairs not replayed
}

// Err converts the report into the gate's verdict.
func (r *ReplayReport) Err() error {
	if r.Mismatched > 0 {
		return fmt.Errorf("%w: %d of %d pairs diverged", ErrReplayMismatch, r.Mismatched, r.Matched+r.Mismatched)
	}
	return nil
}

// Replay re-executes every deterministic pair of a stored run and
// compares canonical deterministic bytes. onProgress, when non-nil,
// receives per-pair trial progress.
func Replay(ctx context.Context, run *Run, onProgress func(Progress)) (*ReplayReport, error) {
	rep := &ReplayReport{RunID: run.ID}
	deterministic := 0
	for pi := range run.Points {
		p := &run.Points[pi]
		key := p.Config.Key()
		if !p.Config.Deterministic() {
			rep.Points = append(rep.Points, PointReplay{Key: key, Skipped: true})
			rep.Skipped += len(p.Seeds)
			continue
		}
		deterministic++
		pr := PointReplay{Key: key}
		for si := range p.Seeds {
			stored := &p.Seeds[si]
			cfg := p.Config
			cfg.Seed = stored.Seed
			var report func(done, total int)
			if onProgress != nil {
				report = func(done, total int) {
					onProgress(Progress{
						Point: pi, Points: len(run.Points),
						Seed: cfg.Seed, SeedIndex: si, Seeds: len(p.Seeds),
						Done: done, Total: total, Key: key,
					})
				}
			}
			fresh, err := runSeed(ctx, cfg, false, report)
			if err != nil {
				return nil, fmt.Errorf("campaign: replay point %d seed %d: %w", pi, cfg.Seed, err)
			}
			sr := SeedReplay{Seed: stored.Seed}
			sr.Match, sr.Detail = compareReplay(stored, &fresh)
			if sr.Match {
				rep.Matched++
			} else {
				rep.Mismatched++
			}
			pr.Seeds = append(pr.Seeds, sr)
		}
		rep.Points = append(rep.Points, pr)
	}
	if deterministic == 0 {
		return nil, ErrNotReplayable
	}
	return rep, nil
}

// compareReplay checks a fresh re-execution against the stored result.
// With stored trial rows the comparison is the full deterministic
// digest; without them (DropTrials runs) it is the deterministic
// aggregates alone.
func compareReplay(stored, fresh *SeedResult) (bool, string) {
	if len(stored.Trials) == 0 {
		a := canonicalJSON(stored.Aggregates.Deterministic)
		b := canonicalJSON(fresh.Aggregates.Deterministic)
		if bytes.Equal(a, b) {
			return true, ""
		}
		return false, "deterministic aggregates diverged (run stored no trial rows)"
	}
	if bytes.Equal(stored.DeterministicDigest(), fresh.DeterministicDigest()) {
		return true, ""
	}
	// Localize the first divergent trial for the report.
	n := len(stored.Trials)
	if len(fresh.Trials) < n {
		n = len(fresh.Trials)
	}
	for i := 0; i < n; i++ {
		s, f := stored.Trials[i], fresh.Trials[i]
		s.Latency, f.Latency = 0, 0
		if !bytes.Equal(canonicalJSON(s), canonicalJSON(f)) {
			return false, fmt.Sprintf("trial %d: stored %s, replayed %s", i, string(canonicalJSON(s)), string(canonicalJSON(f)))
		}
	}
	if len(stored.Trials) != len(fresh.Trials) {
		return false, fmt.Sprintf("trial count: stored %d, replayed %d", len(stored.Trials), len(fresh.Trials))
	}
	return false, "deterministic aggregates diverged"
}

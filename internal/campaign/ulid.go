package campaign

// ULID run keys. A ULID is a 128-bit identifier — 48 bits of millisecond
// timestamp followed by 80 bits of entropy — rendered as 26 characters
// of Crockford base32. Lexicographic order equals creation order, which
// is what makes a directory of `<ulid>.json` files a time-sorted run
// log with no index file to maintain. Implemented here on the standard
// library alone (the repo takes no external dependencies); the format is
// the spec's, so keys interoperate with any other ULID tooling.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

// ulidAlphabet is Crockford base32: no I, L, O, U.
const ulidAlphabet = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

// ULIDLen is the length of a rendered ULID.
const ULIDLen = 26

// ErrBadULID reports a malformed run identifier.
var ErrBadULID = errors.New("campaign: malformed ULID")

// ulidDecode maps an alphabet byte back to its 5-bit value; 0xff marks
// bytes outside the alphabet. Lowercase is accepted on input, as the
// spec requires.
var ulidDecode = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xff
	}
	for i := 0; i < len(ulidAlphabet); i++ {
		t[ulidAlphabet[i]] = byte(i)
		t[ulidAlphabet[i]+'a'-'A'] = byte(i)
	}
	// Crockford decoding aliases.
	t['O'], t['o'] = 0, 0
	t['I'], t['i'], t['L'], t['l'] = 1, 1, 1, 1
	return t
}()

// MakeULID renders the ULID for a timestamp and 80 bits of entropy.
func MakeULID(t time.Time, entropy [10]byte) string {
	var b [16]byte
	ms := uint64(t.UnixMilli())
	b[0] = byte(ms >> 40)
	b[1] = byte(ms >> 32)
	b[2] = byte(ms >> 24)
	b[3] = byte(ms >> 16)
	b[4] = byte(ms >> 8)
	b[5] = byte(ms)
	copy(b[6:], entropy[:])

	// 26 output characters of 5 bits each: 130 bits, the top 2 of which
	// are always zero, so the first character is at most '7'.
	var out [ULIDLen]byte
	bits := 0
	acc := uint32(0)
	j := ULIDLen - 1
	for i := 15; i >= 0; i-- {
		acc |= uint32(b[i]) << bits
		bits += 8
		for bits >= 5 && j >= 0 {
			out[j] = ulidAlphabet[acc&0x1f]
			acc >>= 5
			bits -= 5
			j--
		}
	}
	for j >= 0 {
		out[j] = ulidAlphabet[acc&0x1f]
		acc >>= 5
		j--
	}
	return string(out[:])
}

// ULIDTime extracts the millisecond timestamp of a ULID.
func ULIDTime(id string) (time.Time, error) {
	if err := ValidateULID(id); err != nil {
		return time.Time{}, err
	}
	ms := uint64(0)
	for i := 0; i < 10; i++ { // 10 chars × 5 bits = 50 bits: 2 pad bits, then 48 of time
		ms = ms<<5 | uint64(ulidDecode[id[i]])
	}
	return time.UnixMilli(int64(ms)), nil
}

// ValidateULID checks the shape of a run identifier.
func ValidateULID(id string) error {
	if len(id) != ULIDLen {
		return fmt.Errorf("%w: %q is %d characters, want %d", ErrBadULID, id, len(id), ULIDLen)
	}
	for i := 0; i < len(id); i++ {
		if ulidDecode[id[i]] == 0xff {
			return fmt.Errorf("%w: %q has invalid character %q", ErrBadULID, id, id[i])
		}
	}
	if ulidDecode[id[0]] > 7 {
		return fmt.Errorf("%w: %q overflows 128 bits", ErrBadULID, id)
	}
	return nil
}

// ulidGen hands out identifiers: monotonic within a process even when
// two runs land on the same millisecond (the entropy field increments,
// as the spec prescribes, so later IDs still sort later).
var ulidGen struct {
	mu      sync.Mutex
	rng     *xrand.Rand
	lastMS  int64
	entropy [10]byte
}

// NewULID returns a fresh run identifier for the current wall-clock time.
func NewULID() string {
	return newULIDAt(time.Now())
}

func newULIDAt(t time.Time) string {
	g := &ulidGen
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.rng == nil {
		g.rng = xrand.New(uint64(time.Now().UnixNano()))
	}
	ms := t.UnixMilli()
	if ms <= g.lastMS {
		// Same (or rewound) millisecond: increment the previous entropy.
		t = time.UnixMilli(g.lastMS)
		for i := 9; i >= 0; i-- {
			g.entropy[i]++
			if g.entropy[i] != 0 {
				break
			}
		}
	} else {
		g.lastMS = ms
		u1, u2 := g.rng.Uint64(), g.rng.Uint64()
		for i := 0; i < 8; i++ {
			g.entropy[i] = byte(u1 >> (8 * i))
		}
		g.entropy[8] = byte(u2)
		g.entropy[9] = byte(u2 >> 8)
	}
	return MakeULID(t, g.entropy)
}

package campaign

// Diff: metric-by-metric comparison of two runs, point-matched by
// Config.Key. The noise bound of each metric is derived from the
// per-seed spread of the runs themselves — baseline mean ± sigma·stddev,
// floored by the metric's absolute epsilon — so a sweep over several
// seeds defines its own tolerance and a genuinely regressed candidate
// cannot hide inside it. Timing metrics gate only on request: CI
// machines differ from the baseline machine; seeds on one machine don't.

import (
	"fmt"
	"math"
	"strings"

	"github.com/softwarefaults/redundancy/internal/stats"
)

// DiffOptions tunes the comparison.
type DiffOptions struct {
	// Sigma scales the per-seed stddev into the noise bound (default 3).
	Sigma float64
	// GateTiming lets wall-clock metrics count as regressions.
	GateTiming bool
	// Metrics, when non-empty, restricts the comparison to the named
	// metrics — the escape hatch for gating a wall-clock run on its
	// stable columns (availability, intervention counts) while ignoring
	// the machine-dependent ones.
	Metrics []string
}

func (o DiffOptions) sigma() float64 {
	if o.Sigma <= 0 {
		return 3
	}
	return o.Sigma
}

// MetricDelta is one metric's comparison at one grid point.
type MetricDelta struct {
	Metric string `json:"metric"`
	// Base and Cand are means across each run's seeds at this point.
	Base    float64 `json:"base"`
	Cand    float64 `json:"cand"`
	BaseStd float64 `json:"base_std,omitempty"`
	CandStd float64 `json:"cand_std,omitempty"`
	Delta   float64 `json:"delta"`
	// Bound is the noise bound the delta was judged against.
	Bound float64 `json:"bound"`
	// Significant: |delta| exceeds the bound. Regression: significant,
	// in the metric's bad direction, and the metric gates.
	Significant bool `json:"significant,omitempty"`
	Regression  bool `json:"regression,omitempty"`
}

// PointDiff is one grid point's comparison.
type PointDiff struct {
	Key         string        `json:"key"`
	BaseSeeds   int           `json:"base_seeds"`
	CandSeeds   int           `json:"cand_seeds"`
	Metrics     []MetricDelta `json:"metrics"`
	Regressions int           `json:"regressions"`
}

// DiffReport is the whole comparison.
type DiffReport struct {
	Base          string      `json:"base"`
	Cand          string      `json:"cand"`
	Sigma         float64     `json:"sigma"`
	GateTiming    bool        `json:"gate_timing,omitempty"`
	Points        []PointDiff `json:"points"`
	MissingInCand []string    `json:"missing_in_cand,omitempty"`
	MissingInBase []string    `json:"missing_in_base,omitempty"`
	Significant   int         `json:"significant"`
	Regressions   int         `json:"regressions"`
}

// Regressed reports whether the comparison should fail a gate: any
// metric regression, or any baseline point the candidate no longer
// covers.
func (r *DiffReport) Regressed() bool {
	return r.Regressions > 0 || len(r.MissingInCand) > 0
}

// seedValues collects one metric's per-seed values at a point. Metrics
// absent from a seed's map read as 0 (the conditional rates are omitted
// when zero).
func seedValues(p *PointResult, metric string) []float64 {
	out := make([]float64, 0, len(p.Seeds))
	for i := range p.Seeds {
		m := p.Seeds[i].Aggregates.Metrics()
		out = append(out, m[metric])
	}
	return out
}

// Diff compares a candidate run against a baseline.
func Diff(base, cand *Run, opts DiffOptions) *DiffReport {
	rep := &DiffReport{Base: base.ID, Cand: cand.ID, Sigma: opts.sigma(), GateTiming: opts.GateTiming}
	var only map[string]bool
	if len(opts.Metrics) > 0 {
		only = make(map[string]bool, len(opts.Metrics))
		for _, name := range opts.Metrics {
			only[name] = true
		}
	}
	candByKey := map[string]*PointResult{}
	for i := range cand.Points {
		candByKey[cand.Points[i].Config.Key()] = &cand.Points[i]
	}
	baseKeys := map[string]bool{}
	for bi := range base.Points {
		bp := &base.Points[bi]
		key := bp.Config.Key()
		baseKeys[key] = true
		cp, ok := candByKey[key]
		if !ok {
			rep.MissingInCand = append(rep.MissingInCand, key)
			continue
		}
		pd := PointDiff{Key: key, BaseSeeds: len(bp.Seeds), CandSeeds: len(cp.Seeds)}
		baseMetrics := bp.Pooled.Metrics()
		candMetrics := cp.Pooled.Metrics()
		for _, def := range metricCatalog {
			if only != nil && !only[def.Name] {
				continue
			}
			_, inBase := baseMetrics[def.Name]
			_, inCand := candMetrics[def.Name]
			if !inBase && !inCand {
				continue
			}
			bVals := seedValues(bp, def.Name)
			cVals := seedValues(cp, def.Name)
			d := MetricDelta{
				Metric:  def.Name,
				Base:    stats.Mean(bVals),
				Cand:    stats.Mean(cVals),
				BaseStd: stats.StdDev(bVals),
				CandStd: stats.StdDev(cVals),
			}
			d.Delta = d.Cand - d.Base
			spread := math.Max(d.BaseStd, d.CandStd)
			d.Bound = math.Max(rep.Sigma*spread, def.Epsilon)
			d.Significant = math.Abs(d.Delta) > d.Bound
			if d.Significant {
				rep.Significant++
				worse := def.Directional && ((def.HigherBetter && d.Delta < 0) || (!def.HigherBetter && d.Delta > 0))
				gated := !def.Timing || opts.GateTiming
				if worse && gated {
					d.Regression = true
					pd.Regressions++
					rep.Regressions++
				}
			}
			pd.Metrics = append(pd.Metrics, d)
		}
		rep.Points = append(rep.Points, pd)
	}
	for i := range cand.Points {
		if key := cand.Points[i].Config.Key(); !baseKeys[key] {
			rep.MissingInBase = append(rep.MissingInBase, key)
		}
	}
	return rep
}

// String renders the report as an aligned text table.
func (r *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diff %s -> %s (sigma=%g, gate-timing=%v)\n", short(r.Base), short(r.Cand), r.Sigma, r.GateTiming)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "\n[%s] base seeds=%d cand seeds=%d\n", p.Key, p.BaseSeeds, p.CandSeeds)
		fmt.Fprintf(&b, "  %-22s %12s %12s %12s %12s  %s\n", "metric", "base", "cand", "delta", "bound", "verdict")
		for _, m := range p.Metrics {
			verdict := "ok"
			switch {
			case m.Regression:
				verdict = "REGRESSION"
			case m.Significant:
				verdict = "significant"
			}
			fmt.Fprintf(&b, "  %-22s %12.6g %12.6g %+12.6g %12.6g  %s\n", m.Metric, m.Base, m.Cand, m.Delta, m.Bound, verdict)
		}
	}
	for _, k := range r.MissingInCand {
		fmt.Fprintf(&b, "\nMISSING in candidate: [%s]\n", k)
	}
	for _, k := range r.MissingInBase {
		fmt.Fprintf(&b, "\nnew in candidate (not gated): [%s]\n", k)
	}
	fmt.Fprintf(&b, "\n%d significant, %d regression(s)\n", r.Significant, r.Regressions)
	return b.String()
}

// short abbreviates a run label for the report header.
func short(id string) string {
	if len(id) > 10 && ValidateULID(id) == nil {
		return id[:10]
	}
	if id == "" {
		return "(unsaved)"
	}
	return id
}

package campaign

// The built-in workloads `campaign run` sweeps and Replay re-executes:
// the same synthetic subjects faultsim drives, rebuilt here so one
// (Config, Seed) pair is a self-contained, re-executable experiment.
// Trials run strictly sequentially within a seed — parallelism lives at
// the sweep level, across (point, seed) pairs — so every random draw,
// chaos activation, and trace identifier is a pure function of the pair
// and a deterministic config replays byte-identically.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/resilience"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// ErrBadConfig reports a configuration the workload layer cannot run.
var ErrBadConfig = errors.New("campaign: unsupported configuration")

// trialSpy observes one trial from inside the variant closures: who
// served the accepted answer, whether any executed variant failed, and
// which faults the workload injected. Trials within a seed are
// sequential, but parallel-selection executors run variants
// concurrently, so the spy locks.
type trialSpy struct {
	mu       sync.Mutex
	served   string
	detected bool
	injected map[string]bool
}

func (s *trialSpy) reset() {
	s.mu.Lock()
	s.served, s.detected, s.injected = "", false, nil
	s.mu.Unlock()
}

func (s *trialSpy) serve(name string) {
	s.mu.Lock()
	if s.served == "" {
		s.served = name
	}
	s.mu.Unlock()
}

func (s *trialSpy) fail() {
	s.mu.Lock()
	s.detected = true
	s.mu.Unlock()
}

func (s *trialSpy) inject(label string) {
	s.mu.Lock()
	if s.injected == nil {
		s.injected = map[string]bool{}
	}
	s.injected[label] = true
	s.mu.Unlock()
}

func (s *trialSpy) faults() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.injected) == 0 {
		return ""
	}
	labels := make([]string, 0, len(s.injected))
	for l := range s.injected {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return strings.Join(labels, "+")
}

// spied wraps a variant so executed failures and serves register on the
// spy regardless of which executor shape drives it.
type spied struct {
	core.Variant[int, int]
	spy *trialSpy
}

func (v spied) Execute(ctx context.Context, x int) (int, error) {
	out, err := v.Variant.Execute(ctx, x)
	if err != nil {
		v.spy.fail()
	} else {
		v.spy.serve(v.Variant.Name())
	}
	return out, err
}

// outcomeOf buckets a request error into a trial outcome label.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, resilience.ErrShedded):
		return OutcomeShed
	case errors.Is(err, resilience.ErrDegraded):
		return OutcomeDegraded
	case errors.Is(err, resilience.ErrBreakerOpen):
		return OutcomeBreakerOpen
	default:
		return OutcomeFailed
	}
}

// TrialTraceID derives the deterministic trace identity of one trial —
// the splitmix64 mix of (seed, index), never zero — so a replayed run
// reproduces its trace column exactly without touching the global
// span-identifier stream.
func TrialTraceID(seed uint64, index int) uint64 {
	x := seed ^ (uint64(index)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// runSeed executes one (config, seed) pair and returns its full result,
// trial rows included (the sweep layer decides whether to persist them).
// progress, when non-nil, is called with (done, total) at a coarse
// cadence.
func runSeed(ctx context.Context, cfg Config, keepObserved bool, progress func(done, total int)) (SeedResult, error) {
	switch cfg.Mode {
	case "sim":
		if cfg.Pattern == "nvp" {
			return runSeedNVP(ctx, cfg, progress)
		}
		return runSeedDetected(ctx, cfg, keepObserved, progress)
	case "chaos":
		return runSeedChaos(ctx, cfg, keepObserved, progress)
	default:
		return SeedResult{}, fmt.Errorf("%w: mode %q is not executable (net runs are recorded by faultsim)", ErrBadConfig, cfg.Mode)
	}
}

// runSeedNVP drives the N-version ensemble: undetected wrong-answer
// faults adjudicated by majority vote. The ensemble hides its draws, so
// trial rows carry outcome only.
func runSeedNVP(ctx context.Context, cfg Config, progress func(done, total int)) (SeedResult, error) {
	law := faultmodel.CorrelatedFailures{N: cfg.Variants, P: cfg.FailureP, Rho: cfg.Rho}
	ens, err := nvp.NewEnsemble(law, xrand.New(cfg.Seed))
	if err != nil {
		return SeedResult{}, err
	}
	res := SeedResult{Seed: cfg.Seed, Trials: make([]Trial, 0, cfg.Trials)}
	start := time.Now()
	for i := 0; i < cfg.Trials; i++ {
		if err := ctx.Err(); err != nil {
			return SeedResult{}, err
		}
		t0 := time.Now()
		_, correct := ens.Round(1)
		tr := Trial{Index: i, Outcome: OutcomeOK, Latency: time.Since(t0), TraceID: TrialTraceID(cfg.Seed, i)}
		if !correct {
			tr.Outcome = OutcomeFailed
		}
		res.Trials = append(res.Trials, tr)
		reportProgress(progress, i+1, cfg.Trials)
	}
	res.Aggregates = computeAggregates(res.Trials, time.Since(start), nil, nil)
	return res, nil
}

// runSeedDetected drives the detected-failure patterns: variants fail
// with probability FailureP (plus a deterministic Bohr variant), and
// the spy records served variants, injected faults, and detections.
func runSeedDetected(ctx context.Context, cfg Config, keepObserved bool, progress func(done, total int)) (SeedResult, error) {
	spy := &trialSpy{}
	master := xrand.New(cfg.Seed)
	mk := func(i int) core.Variant[int, int] {
		rng := master.Split()
		name := fmt.Sprintf("v%d", i)
		deterministic := i == cfg.Bohr
		base := core.NewVariant(name, func(_ context.Context, x int) (int, error) {
			if deterministic {
				spy.inject("bohr")
				return 0, errors.New("deterministic failure")
			}
			if rng.Bool(cfg.FailureP) {
				spy.inject("heisen")
				return 0, errors.New("variant failure")
			}
			return x, nil
		})
		return spied{base, spy}
	}
	exec, reset, collector, err := buildExecutor(cfg, mk, keepObserved)
	if err != nil {
		return SeedResult{}, err
	}
	return driveTrials(ctx, cfg, cfg.Trials, spy, exec, reset, collector, nil, progress)
}

// runSeedChaos drives chaos-wrapped healthy variants through the
// campaign schedule, one trial per scheduled request. Ground truth
// comes from the schedule itself (Campaign.DisturbedAt), so a masked
// fault still counts as injected.
func runSeedChaos(ctx context.Context, cfg Config, keepObserved bool, progress func(done, total int)) (SeedResult, error) {
	if cfg.Chaos == nil {
		return SeedResult{}, fmt.Errorf("%w: chaos mode without a campaign schedule", ErrBadConfig)
	}
	// The sweep seed drives the schedule: each seed of a point is the
	// same campaign re-rolled.
	camp := *cfg.Chaos
	camp.Seed = cfg.Seed
	if err := camp.Validate(); err != nil {
		return SeedResult{}, err
	}
	total := camp.Total()
	spy := &trialSpy{}
	names := make([]string, 0, cfg.Variants)
	mk := func(i int) core.Variant[int, int] {
		name := fmt.Sprintf("v%d", i)
		names = append(names, name)
		deterministic := i == cfg.Bohr
		base := core.NewVariant(name, func(_ context.Context, x int) (int, error) {
			if deterministic {
				spy.inject("bohr")
				return 0, errors.New("deterministic failure")
			}
			return x, nil
		})
		return spied{&faultmodel.Chaos[int, int]{Base: base, Campaign: &camp}, spy}
	}
	exec, reset, collector, err := buildExecutor(cfg, mk, keepObserved)
	if err != nil {
		return SeedResult{}, err
	}
	injectedAt := func(req uint64) {
		for _, name := range names {
			for _, label := range camp.DisturbedAt(req, name) {
				spy.inject(label)
			}
		}
	}
	return driveTrials(ctx, cfg, total, spy, exec, reset, collector, injectedAt, progress)
}

// buildExecutor assembles the configured pattern executor over variants
// from mk, with an observation collector attached when the result
// should carry Observed snapshots. reset re-arms executors that latch
// variant failures (parallel selection).
func buildExecutor(cfg Config, mk func(i int) core.Variant[int, int], keepObserved bool) (exec core.Executor[int, int], reset func(), collector *obs.Collector, err error) {
	var opts []pattern.Option
	if keepObserved {
		collector = obs.NewCollector()
		opts = append(opts, pattern.WithObserver(collector))
	}
	accept := func(_ int, _ int) error { return nil }
	n := cfg.Variants
	if n < 1 {
		n = 1
	}
	reset = func() {}
	switch cfg.Pattern {
	case "single", "":
		exec, err = pattern.NewSingle(mk(1), opts...)
	case "sequential":
		vs := make([]core.Variant[int, int], n)
		for i := range vs {
			vs[i] = mk(i + 1)
		}
		exec, err = pattern.NewSequentialAlternatives(vs, accept, nil, opts...)
	case "selection":
		vs := make([]core.Variant[int, int], n)
		tests := make([]core.AcceptanceTest[int, int], n)
		for i := range vs {
			vs[i] = mk(i + 1)
			tests[i] = accept
		}
		var ps *pattern.ParallelSelection[int, int]
		ps, err = pattern.NewParallelSelection(vs, tests, opts...)
		if err == nil {
			exec = ps
			reset = ps.Reset
		}
	default:
		return nil, nil, nil, fmt.Errorf("%w: pattern %q", ErrBadConfig, cfg.Pattern)
	}
	return exec, reset, collector, err
}

// driveTrials is the shared trial loop: sequential requests, spy-backed
// trial rows, aggregates at the end.
func driveTrials(ctx context.Context, cfg Config, total int, spy *trialSpy, exec core.Executor[int, int], reset func(), collector *obs.Collector, injectedAt func(req uint64), progress func(done, total int)) (SeedResult, error) {
	res := SeedResult{Seed: cfg.Seed, Trials: make([]Trial, 0, total)}
	start := time.Now()
	for i := 0; i < total; i++ {
		if err := ctx.Err(); err != nil {
			return SeedResult{}, err
		}
		spy.reset()
		req := uint64(i)
		if injectedAt != nil {
			injectedAt(req)
		}
		tctx := faultmodel.WithRequestIndex(ctx, req)
		t0 := time.Now()
		_, err := exec.Execute(tctx, i)
		latency := time.Since(t0)
		reset() // injected faults are transient between trials
		spy.mu.Lock()
		served, detected := spy.served, spy.detected
		spy.mu.Unlock()
		tr := Trial{
			Index:    i,
			Outcome:  outcomeOf(err),
			Latency:  latency,
			Fault:    spy.faults(),
			Detected: detected,
			TraceID:  TrialTraceID(cfg.Seed, i),
		}
		if err == nil {
			tr.Variant = served
		}
		res.Trials = append(res.Trials, tr)
		reportProgress(progress, i+1, total)
	}
	var observed []obs.ExecutorSnapshot
	if collector != nil {
		observed = collector.Snapshot()
	}
	res.Aggregates = computeAggregates(res.Trials, time.Since(start), observed, nil)
	return res, nil
}

// reportProgress throttles callbacks to ~2% granularity plus the final
// trial.
func reportProgress(progress func(done, total int), done, total int) {
	if progress == nil {
		return
	}
	step := total / 50
	if step < 1 {
		step = 1
	}
	if done == total || done%step == 0 {
		progress(done, total)
	}
}

package campaign

// The normalized benchmark schema: every BENCH_*.json file is a flat
// array of {benchmark, metric, value, unit, commit, seed} rows — one row
// per metric, so diffing is a join on (benchmark, metric) with no
// per-file shape knowledge. The reader also accepts the legacy schema
// ({package, name, iterations, ns_per_op, ...}) that earlier baselines
// were committed in, expanding each legacy object into rows, so old
// and new files diff against each other transparently.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// BenchRecord is one (benchmark, metric) row of a normalized bench file.
type BenchRecord struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Unit      string  `json:"unit,omitempty"`
	Commit    string  `json:"commit,omitempty"`
	Seed      uint64  `json:"seed"`
}

// ErrBadBenchFile reports a file in neither the normalized nor the
// legacy schema.
var ErrBadBenchFile = errors.New("campaign: unrecognized benchmark file schema")

// benchUnits maps metric names to their units and diff direction.
var benchUnits = map[string]struct {
	Unit         string
	HigherBetter bool
}{
	"ns_per_op":     {"ns/op", false},
	"p99_ns":        {"ns", false},
	"req_per_s":     {"req/s", true},
	"bytes_per_op":  {"B/op", false},
	"allocs_per_op": {"allocs/op", false},
}

// legacyBenchRow is the pre-normalization schema bench.sh used to emit.
type legacyBenchRow struct {
	Package     string   `json:"package"`
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op"`
	ReqPerS     *float64 `json:"req_per_s"`
	P99Ns       *float64 `json:"p99_ns"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// ReadBenchFile loads one benchmark file, auto-detecting the schema.
func ReadBenchFile(path string) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Try the normalized schema first; a legacy array decodes into it as
	// rows with empty Benchmark/Metric, which we treat as a miss.
	var recs []BenchRecord
	if err := json.Unmarshal(data, &recs); err == nil && normalized(recs) {
		return recs, nil
	}
	var legacy []legacyBenchRow
	if err := json.Unmarshal(data, &legacy); err != nil || len(legacy) == 0 || legacy[0].Name == "" {
		return nil, fmt.Errorf("%w: %s", ErrBadBenchFile, path)
	}
	var out []BenchRecord
	for _, row := range legacy {
		name := row.Name
		if row.Package != "" {
			if i := strings.LastIndex(row.Package, "/"); i >= 0 {
				name = row.Package[i+1:] + "/" + name
			}
		}
		for metric, v := range map[string]*float64{
			"ns_per_op":     row.NsPerOp,
			"req_per_s":     row.ReqPerS,
			"p99_ns":        row.P99Ns,
			"bytes_per_op":  row.BytesPerOp,
			"allocs_per_op": row.AllocsPerOp,
		} {
			if v == nil {
				continue
			}
			out = append(out, BenchRecord{Benchmark: name, Metric: metric, Value: *v, Unit: benchUnits[metric].Unit})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Metric < out[j].Metric
	})
	return out, nil
}

// normalized reports whether decoded rows carry the normalized schema's
// required fields.
func normalized(recs []BenchRecord) bool {
	if len(recs) == 0 {
		return false
	}
	for _, r := range recs {
		if r.Benchmark == "" || r.Metric == "" {
			return false
		}
	}
	return true
}

// BenchDelta is one (benchmark, metric) comparison.
type BenchDelta struct {
	Benchmark  string  `json:"benchmark"`
	Metric     string  `json:"metric"`
	Base       float64 `json:"base"`
	Cand       float64 `json:"cand"`
	Ratio      float64 `json:"ratio"` // cand/base
	Regression bool    `json:"regression,omitempty"`
}

// BenchDiffReport compares two bench files.
type BenchDiffReport struct {
	Deltas        []BenchDelta `json:"deltas"`
	MissingInCand []string     `json:"missing_in_cand,omitempty"`
	Regressions   int          `json:"regressions"`
}

// DiffBench joins two record sets on (benchmark, metric). tolerance is
// the fractional slack before a worse ratio counts as a regression
// (e.g. 0.25 allows a 25% slowdown — micro-benchmarks on shared CI
// machines are noisy).
func DiffBench(base, cand []BenchRecord, tolerance float64) *BenchDiffReport {
	key := func(r BenchRecord) string { return r.Benchmark + "\x00" + r.Metric }
	candBy := map[string]BenchRecord{}
	for _, r := range cand {
		candBy[key(r)] = r
	}
	rep := &BenchDiffReport{}
	for _, b := range base {
		c, ok := candBy[key(b)]
		if !ok {
			rep.MissingInCand = append(rep.MissingInCand, b.Benchmark+" "+b.Metric)
			continue
		}
		d := BenchDelta{Benchmark: b.Benchmark, Metric: b.Metric, Base: b.Value, Cand: c.Value}
		if b.Value != 0 {
			d.Ratio = c.Value / b.Value
		} else if c.Value == 0 {
			d.Ratio = 1
		} else {
			d.Ratio = math.Inf(1)
		}
		dir := benchUnits[b.Metric]
		worse := (dir.HigherBetter && d.Ratio < 1-tolerance) || (!dir.HigherBetter && d.Ratio > 1+tolerance)
		if worse {
			d.Regression = true
			rep.Regressions++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep
}

// String renders the bench comparison.
func (r *BenchDiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-56s %-14s %12s %12s %8s  %s\n", "benchmark", "metric", "base", "cand", "ratio", "verdict")
	for _, d := range r.Deltas {
		verdict := "ok"
		if d.Regression {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(&b, "%-56s %-14s %12.4g %12.4g %8.3f  %s\n", d.Benchmark, d.Metric, d.Base, d.Cand, d.Ratio, verdict)
	}
	for _, m := range r.MissingInCand {
		fmt.Fprintf(&b, "MISSING in candidate: %s\n", m)
	}
	fmt.Fprintf(&b, "%d regression(s)\n", r.Regressions)
	return b.String()
}

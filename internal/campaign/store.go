package campaign

// The run store: a directory of <ulid>.json documents. ULIDs sort by
// creation time, so the directory listing is the run log; there is no
// index file to corrupt or compact. Writes are write-temp-then-rename,
// the same atomicity discipline as the checkpoint layer's snapshots, so
// a run file is either absent or complete.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Typed store errors.
var (
	// ErrRunNotFound reports that no stored run matches an identifier.
	ErrRunNotFound = errors.New("campaign: run not found")
	// ErrAmbiguousRun reports that a prefix matches more than one run.
	ErrAmbiguousRun = errors.New("campaign: ambiguous run prefix")
	// ErrCorruptRun reports a run file that exists but does not decode.
	ErrCorruptRun = errors.New("campaign: corrupt run document")
)

// Store is a file-backed run store rooted at one directory.
type Store struct {
	dir string
}

// Open opens (creating if necessary) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaign: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a run ID to its document path.
func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Save persists a run, assigning its ULID and creation time on first
// save. It returns the run's ID.
func (s *Store) Save(r *Run) (string, error) {
	if r.ID == "" {
		r.ID = NewULID()
	} else if err := ValidateULID(r.ID); err != nil {
		return "", err
	}
	if r.CreatedAt.IsZero() {
		if t, err := ULIDTime(r.ID); err == nil {
			r.CreatedAt = t.UTC()
		} else {
			r.CreatedAt = time.Now().UTC()
		}
	}
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return "", fmt.Errorf("campaign: encode run: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(s.dir, ".run-*.tmp")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), s.path(r.ID)); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return r.ID, nil
}

// Load reads one run by exact ID.
func (s *Store) Load(id string) (*Run, error) {
	if err := ValidateULID(id); err != nil {
		return nil, err
	}
	r, err := ReadRunFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s in %s", ErrRunNotFound, id, s.dir)
	}
	return r, err
}

// IDs lists the stored run IDs in creation order (ULIDs sort by time).
func (s *Store) IDs() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if ValidateULID(id) == nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Resolve expands a unique ID prefix (or full ID) to the stored run ID,
// returning ErrRunNotFound or ErrAmbiguousRun otherwise. Matching is
// case-insensitive, like ULID decoding.
func (s *Store) Resolve(prefix string) (string, error) {
	if prefix == "" {
		return "", fmt.Errorf("%w: empty identifier", ErrRunNotFound)
	}
	ids, err := s.IDs()
	if err != nil {
		return "", err
	}
	up := strings.ToUpper(prefix)
	var matches []string
	for _, id := range ids {
		if id == up {
			return id, nil
		}
		if strings.HasPrefix(id, up) {
			matches = append(matches, id)
		}
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("%w: no run matches %q in %s", ErrRunNotFound, prefix, s.dir)
	case 1:
		return matches[0], nil
	default:
		return "", fmt.Errorf("%w: %q matches %s", ErrAmbiguousRun, prefix, strings.Join(matches, ", "))
	}
}

// Summary is one run's row in a listing.
type Summary struct {
	ID           string    `json:"id"`
	CreatedAt    time.Time `json:"created_at"`
	Name         string    `json:"name,omitempty"`
	Modes        string    `json:"modes"`
	Points       int       `json:"points"`
	Seeds        int       `json:"seeds"`
	Trials       int       `json:"trials"`
	Availability float64   `json:"availability"`
}

// List loads every stored run's summary, in creation order. Corrupt
// documents are skipped (reported via the error slice-free contract:
// they simply do not appear; Load reports them precisely).
func (s *Store) List() ([]Summary, error) {
	ids, err := s.IDs()
	if err != nil {
		return nil, err
	}
	out := make([]Summary, 0, len(ids))
	for _, id := range ids {
		r, err := s.Load(id)
		if err != nil {
			continue
		}
		seeds := 0
		for _, p := range r.Points {
			seeds += len(p.Seeds)
		}
		out = append(out, Summary{
			ID:           r.ID,
			CreatedAt:    r.CreatedAt,
			Name:         r.Name,
			Modes:        strings.Join(r.Modes(), "+"),
			Points:       len(r.Points),
			Seeds:        seeds,
			Trials:       r.TotalTrials(),
			Availability: r.Availability(),
		})
	}
	return out, nil
}

// ReadRunFile decodes one run document from an arbitrary path — stored
// runs and committed baseline files alike.
func ReadRunFile(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptRun, path, err)
	}
	if len(r.Points) == 0 {
		return nil, fmt.Errorf("%w: %s: no points", ErrCorruptRun, path)
	}
	return &r, nil
}

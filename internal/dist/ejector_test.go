package dist

import (
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// feedFleet gives every named endpoint `n` samples at the given
// latency.
func feedFleet(e *Ejector, n int, lat map[string]time.Duration) {
	for i := 0; i < n; i++ {
		for name, d := range lat {
			e.Observe(name, d)
		}
	}
}

func TestEjectorEjectsPeerRelativeOutlier(t *testing.T) {
	collector := obs.NewCollector()
	det := NewDetector(DetectorConfig{SlowSuspectAfter: 1})
	e := NewEjector(EjectorConfig{
		Name: "ej", Threshold: 3, MinSamples: 5, MinKeep: 2,
		Detector: det, Observer: collector,
	})
	feedFleet(e, 6, map[string]time.Duration{
		"r1": time.Millisecond,
		"r2": 20 * time.Millisecond, // 20× the fleet median
		"r3": time.Millisecond,
	})
	if !e.Ejected("r2") {
		t.Fatalf("20× outlier not ejected; snapshot: %+v", e.Snapshot())
	}
	if e.Ejected("r1") || e.Ejected("r3") {
		t.Fatal("healthy endpoints ejected alongside the outlier")
	}
	// The verdict reached the detector's slowness track...
	if _, _, slowness := det.Evidence("r2"); slowness == 0 {
		t.Fatal("ejection filed no slowness evidence with the detector")
	}
	// ...and the observer counted the ejection under the ejector name.
	found := false
	for _, snap := range collector.Snapshot() {
		if snap.Executor == "ej" && snap.Ejections == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("collector did not count the ejection: %+v", collector.Snapshot())
	}
}

func TestEjectorNeedsMinSamples(t *testing.T) {
	e := NewEjector(EjectorConfig{MinSamples: 10, MinKeep: 1})
	feedFleet(e, 5, map[string]time.Duration{
		"r1": time.Millisecond,
		"r2": 100 * time.Millisecond,
	})
	if e.Ejected("r2") {
		t.Fatal("endpoint ejected on fewer than MinSamples observations")
	}
}

func TestEjectorFloorHoldsRotation(t *testing.T) {
	// Two endpoints, floor of 2: however slow r2 gets, ejecting it
	// would leave one endpoint in rotation — below the floor.
	e := NewEjector(EjectorConfig{Threshold: 2, MinSamples: 3, MinKeep: 2})
	feedFleet(e, 20, map[string]time.Duration{
		"r1": time.Millisecond,
		"r2": 500 * time.Millisecond,
	})
	if e.Ejected("r1") || e.Ejected("r2") {
		t.Fatal("ejection violated the MinKeep floor")
	}

	// With three endpoints the same floor allows exactly one ejection:
	// the second-slowest must stay, however it compares to the median.
	e = NewEjector(EjectorConfig{Threshold: 2, MinSamples: 3, MinKeep: 2})
	feedFleet(e, 20, map[string]time.Duration{
		"r1": time.Millisecond,
		"r2": 500 * time.Millisecond,
		"r3": 400 * time.Millisecond,
	})
	ejected := 0
	for _, name := range []string{"r1", "r2", "r3"} {
		if e.Ejected(name) {
			ejected++
		}
	}
	if ejected > 1 {
		t.Fatalf("%d endpoints ejected with MinKeep=2 over 3 endpoints, want at most 1", ejected)
	}
}

func TestEjectorProbationAndReinstatement(t *testing.T) {
	collector := obs.NewCollector()
	det := NewDetector(DetectorConfig{SlowSuspectAfter: 1})
	e := NewEjector(EjectorConfig{
		Name: "ej", Threshold: 3, MinSamples: 5, MinKeep: 1,
		ProbeEvery: 4, ReinstateAfter: 3, Detector: det, Observer: collector,
	})
	feedFleet(e, 6, map[string]time.Duration{
		"r1": time.Millisecond,
		"r2": 30 * time.Millisecond,
		"r3": time.Millisecond,
	})
	if !e.Ejected("r2") {
		t.Fatal("outlier not ejected")
	}
	if det.State("r2") != obs.ReplicaSuspect {
		t.Fatalf("detector state after ejection = %v, want suspect", det.State("r2"))
	}

	// Routing decisions mostly sink the ejected endpoint, but every
	// ProbeEvery-th decision grants it a probe at the front.
	names := []string{"r1", "r2", "r3"}
	name := func(i int) string { return names[i] }
	probes := 0
	for i := 0; i < 16; i++ {
		class := make([]int, 3)
		if p := e.route(3, name, class); p >= 0 {
			if names[p] != "r2" {
				t.Fatalf("probe granted to %s, want the ejected r2", names[p])
			}
			probes++
			// A slow probe (censored by the hedge) resets probation.
			e.ObserveCensored("r2", 25*time.Millisecond)
		} else if class[1] <= class[0] {
			t.Fatalf("non-probe decision %d did not penalize the ejected endpoint: %v", i, class)
		}
	}
	if probes != 4 {
		t.Fatalf("probes granted = %d over 16 decisions with ProbeEvery=4, want 4", probes)
	}
	if !e.Ejected("r2") {
		t.Fatal("slow probes reinstated the endpoint")
	}

	// Recovery: fast full-sample probes accumulate and reinstate.
	for i := 0; i < 3; i++ {
		if got := e.Reinstatements(); got != 0 {
			t.Fatalf("reinstated after %d good probes, want 3", i)
		}
		e.Observe("r2", time.Millisecond)
	}
	if e.Ejected("r2") {
		t.Fatal("three good probes did not reinstate")
	}
	if e.Reinstatements() != 1 {
		t.Fatalf("Reinstatements = %d, want 1", e.Reinstatements())
	}
	// Reinstatement cleared the slowness evidence.
	if det.State("r2") != obs.ReplicaAlive {
		t.Fatalf("detector state after reinstatement = %v, want alive", det.State("r2"))
	}
	// Slow-start: the EWMA restarted near the fleet median, so the
	// endpoint re-enters at par instead of being instantly re-ejected.
	for _, ep := range e.Snapshot() {
		if ep.Endpoint == "r2" && ep.EWMA > 5*time.Millisecond {
			t.Fatalf("reinstated EWMA = %v, want reset near the fleet median", ep.EWMA)
		}
	}
	// Collector saw the probes and the reinstatement.
	for _, snap := range collector.Snapshot() {
		if snap.Executor == "ej" {
			if snap.Reinstatements != 1 || snap.ProbeLaunches == 0 {
				t.Fatalf("collector counts: %+v, want 1 reinstatement and >0 probes", snap)
			}
		}
	}
}

func TestEjectorCensoredSamplesOnlyPushUp(t *testing.T) {
	e := NewEjector(EjectorConfig{MinSamples: 100})
	e.Observe("r1", 10*time.Millisecond)
	// A quickly-abandoned attempt proves nothing and must not drag the
	// EWMA down.
	e.ObserveCensored("r1", time.Millisecond)
	for _, ep := range e.Snapshot() {
		if ep.Endpoint == "r1" && ep.EWMA < 9*time.Millisecond {
			t.Fatalf("censored fast sample dragged EWMA to %v", ep.EWMA)
		}
	}
	// A censored sample slower than the EWMA is real evidence.
	e.ObserveCensored("r1", 100*time.Millisecond)
	for _, ep := range e.Snapshot() {
		if ep.Endpoint == "r1" && ep.EWMA <= 10*time.Millisecond {
			t.Fatalf("censored slow sample ignored; EWMA %v", ep.EWMA)
		}
	}
}

func TestEjectorP2CPrefersFasterEndpoint(t *testing.T) {
	e := NewEjector(EjectorConfig{Seed: 3})
	feedFleet(e, 4, map[string]time.Duration{
		"fast": time.Millisecond,
		"slow": 10 * time.Millisecond,
	})
	names := []string{"slow", "fast"}
	name := func(i int) string { return names[i] }
	fastFirst := 0
	const picks = 200
	for i := 0; i < picks; i++ {
		order := []int{0, 1}
		class := []int{0, 0}
		e.p2cFront(order, class, name)
		if names[order[0]] == "fast" {
			fastFirst++
		}
	}
	// Both endpoints are always sampled (n=2), so the faster one wins
	// every comparison except the deterministic exploration ticks
	// (every ExploreEvery-th pick, default 16).
	if want := picks - picks/16; fastFirst != want {
		t.Fatalf("fast endpoint led %d/%d picks, want %d (all but the exploration ticks)", fastFirst, picks, want)
	}
}

func TestEjectorP2CExploresShunnedEndpoint(t *testing.T) {
	// A slow-looking endpoint below the ejection threshold loses every
	// P2C comparison; without exploration it would never serve again —
	// and so never accumulate the samples that either eject it for real
	// or walk its EWMA back down. The exploration ticks guarantee it a
	// trickle.
	e := NewEjector(EjectorConfig{Seed: 4, ExploreEvery: 8})
	feedFleet(e, 4, map[string]time.Duration{
		"r1": time.Millisecond,
		"r2": 2 * time.Millisecond, // slow-looking, not an outlier
	})
	names := []string{"r1", "r2"}
	name := func(i int) string { return names[i] }
	slowFirst := 0
	const picks = 64
	for i := 0; i < picks; i++ {
		order := []int{0, 1}
		class := []int{0, 0}
		e.p2cFront(order, class, name)
		if names[order[0]] == "r2" {
			slowFirst++
		}
	}
	if want := picks / 8; slowFirst != want {
		t.Fatalf("shunned endpoint led %d/%d picks, want the %d exploration ticks", slowFirst, picks, want)
	}
}

func TestEjectorP2CSpreadsEqualEndpoints(t *testing.T) {
	e := NewEjector(EjectorConfig{Seed: 9})
	lat := map[string]time.Duration{"r1": time.Millisecond, "r2": time.Millisecond, "r3": time.Millisecond}
	feedFleet(e, 4, lat)
	names := []string{"r1", "r2", "r3"}
	name := func(i int) string { return names[i] }
	firsts := make(map[string]int)
	const picks = 300
	for i := 0; i < picks; i++ {
		order := []int{0, 1, 2}
		class := []int{0, 0, 0}
		e.p2cFront(order, class, name)
		firsts[names[order[0]]]++
	}
	for _, n := range names {
		if firsts[n] < picks/10 {
			t.Fatalf("endpoint %s led only %d/%d picks; P2C is pinned: %v", n, firsts[n], picks, firsts)
		}
	}
}

package dist

// The transport is the client-side wire machinery shared by the two
// replica clients: Remote (hedged failover across the endpoints of one
// logical service) and Quorum (fan-out to every endpoint with vote
// adjudication). It owns the validated endpoint set, one connection
// pool per endpoint, the RPC ID sequence, and the single-attempt round
// trip; the clients own their fan-out policy on top.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// transport is the shared endpoint/pool state. It is deliberately
// non-generic: Go has no generic methods, so the typed round trip is
// the free function roundTrip below.
type transport struct {
	name        string
	endpoints   []Endpoint
	pools       []*connPool
	callTimeout time.Duration
	ids         atomic.Uint64
	closed      atomic.Bool
}

// newTransport validates the endpoint set (every endpoint named and
// dialable, names unique) and builds the per-endpoint pools. kind names
// the client flavor ("remote", "quorum") in error messages.
func newTransport(kind, name string, callTimeout time.Duration, endpoints []Endpoint) (*transport, error) {
	seen := make(map[string]bool, len(endpoints))
	for _, ep := range endpoints {
		if ep.Name == "" || ep.Dial == nil {
			return nil, fmt.Errorf("dist: %s %q: endpoint needs a name and a dialer", kind, name)
		}
		if seen[ep.Name] {
			return nil, fmt.Errorf("dist: %s %q: duplicate endpoint %q", kind, name, ep.Name)
		}
		seen[ep.Name] = true
	}
	if callTimeout <= 0 {
		callTimeout = defaultCallTimeout
	}
	eps := make([]Endpoint, len(endpoints))
	copy(eps, endpoints)
	pools := make([]*connPool, len(eps))
	for i := range pools {
		pools[i] = newConnPool()
	}
	return &transport{name: name, endpoints: eps, pools: pools, callTimeout: callTimeout}, nil
}

// close releases every pooled and in-flight connection; blocked calls
// unblock with a connection error. Idempotent.
func (t *transport) close() {
	if t.closed.Swap(true) {
		return
	}
	for _, p := range t.pools {
		p.close()
	}
}

// roundTrip performs one RPC attempt against one endpoint: pooled
// connection (or fresh dial), framed call out, framed reply in, all
// under the per-endpoint deadline. The attempt span tc (zero when
// untraced) rides the envelope so the replica continues the trace.
// Context cancellation — a winner canceling losers or stragglers, or
// the caller giving up — smashes the connection deadline so a blocked
// read returns promptly.
func roundTrip[I, O any](ctx context.Context, t *transport, ep int, tc obs.TraceContext, input I) (out O, err error) {
	ctx, cancel := context.WithTimeout(ctx, t.callTimeout)
	defer cancel()
	conn, err := t.pools[ep].get(ctx, t.endpoints[ep].Dial)
	if err != nil {
		return out, err
	}
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0)) // the distant past: unblock I/O now
	})
	reusable := false
	defer func() {
		if !stop() {
			// The canceler ran (or is running): the deadline may be
			// smashed, so the connection cannot be trusted for reuse.
			t.pools[ep].drop(conn)
			return
		}
		if reusable {
			conn.SetDeadline(time.Time{})
			t.pools[ep].put(conn)
		} else {
			t.pools[ep].drop(conn)
		}
	}()
	if d, ok := ctx.Deadline(); ok {
		conn.SetDeadline(d)
	}
	env := &envelope{ID: t.ids.Add(1), Kind: kindCall, TraceID: tc.TraceID, SpanID: tc.SpanID}
	if env.Payload, err = encodeValue(input); err != nil {
		return out, err
	}
	frame, err := encodeEnvelope(env)
	if err != nil {
		return out, err
	}
	if err := writeFrame(conn, frame); err != nil {
		return out, fmt.Errorf("dist: %s: send: %w", t.endpoints[ep].Name, err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		return out, fmt.Errorf("dist: %s: recv: %w", t.endpoints[ep].Name, err)
	}
	reply, err := decodeEnvelope(payload)
	if err != nil {
		return out, err
	}
	if reply.Kind != kindReply || reply.ID != env.ID {
		return out, fmt.Errorf("%w: unexpected reply kind %d id %d", ErrBadFrame, reply.Kind, reply.ID)
	}
	if reply.Err != "" {
		// An in-band failure: the variant on the far side failed, but the
		// connection itself completed a clean round trip and stays usable.
		reusable = true
		return out, fmt.Errorf("dist: %s: %w: %s", t.endpoints[ep].Name, ErrRemote, reply.Err)
	}
	if err := decodeValue(reply.Payload, &out); err != nil {
		return out, err
	}
	reusable = true
	return out, nil
}

// connPool is one endpoint's connection pool. It tracks every live
// connection it handed out — pooled and in-flight alike — so closing
// the pool unblocks calls stuck on a partitioned network.
type connPool struct {
	mu     sync.Mutex
	free   []net.Conn
	all    map[net.Conn]struct{}
	closed bool
}

func newConnPool() *connPool {
	return &connPool{all: make(map[net.Conn]struct{})}
}

// get pops an idle connection or dials a fresh one.
func (p *connPool) get(ctx context.Context, dial DialFunc) (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrClientClosed
	}
	p.all[c] = struct{}{}
	p.mu.Unlock()
	return c, nil
}

// put returns a healthy connection to the idle list (or closes it when
// the pool is full or closed).
func (p *connPool) put(c net.Conn) {
	p.mu.Lock()
	if p.closed || len(p.free) >= maxIdleConns {
		delete(p.all, c)
		p.mu.Unlock()
		c.Close()
		return
	}
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// drop discards a connection that must not be reused.
func (p *connPool) drop(c net.Conn) {
	p.mu.Lock()
	delete(p.all, c)
	for i, f := range p.free {
		if f == c {
			p.free = append(p.free[:i], p.free[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	c.Close()
}

// close closes every tracked connection; subsequent gets fail fast.
func (p *connPool) close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.all))
	for c := range p.all {
		conns = append(conns, c)
	}
	p.all = make(map[net.Conn]struct{})
	p.free = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

package dist

// The transport is the client-side wire machinery shared by the two
// replica clients: Remote (hedged failover across the endpoints of one
// logical service) and Quorum (fan-out to every endpoint with vote
// adjudication). It owns the validated endpoint set, one connection
// pool per endpoint, the RPC ID sequence, and the single-attempt round
// trip; the clients own their fan-out policy on top.
//
// The endpoint set is mutable at runtime — the autonomic control plane
// splices replacement replicas into a live fleet — so it lives behind
// an atomically swapped immutable snapshot (epSet): every Execute
// captures one snapshot and fans out against it, and Add/Remove
// copy-on-write a new snapshot under the mutation mutex. Removing an
// endpoint closes its pool, which unblocks any straggler still reading
// from the removed replica; in-flight calls against other endpoints of
// the same captured snapshot are untouched.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// epSet is one immutable snapshot of the endpoint set: parallel
// endpoint and pool slices. Snapshots are never mutated after
// publication, so a fan-out indexing into one cannot see indexes shift
// under a concurrent Add/Remove.
type epSet struct {
	endpoints []Endpoint
	pools     []*connPool
}

// index returns the position of the named endpoint, or -1.
func (s *epSet) index(name string) int {
	for i, ep := range s.endpoints {
		if ep.Name == name {
			return i
		}
	}
	return -1
}

// names returns the endpoint names in configured order.
func (s *epSet) names() []string {
	out := make([]string, len(s.endpoints))
	for i, ep := range s.endpoints {
		out[i] = ep.Name
	}
	return out
}

// transport is the shared endpoint/pool state. It is deliberately
// non-generic: Go has no generic methods, so the typed round trip is
// the free function roundTrip below.
type transport struct {
	name        string
	kind        string // client flavor ("remote", "quorum") for errors
	callTimeout time.Duration
	ids         atomic.Uint64
	closed      atomic.Bool

	mu  sync.Mutex // serializes endpoint-set mutations
	eps atomic.Pointer[epSet]
}

// newTransport validates the endpoint set (every endpoint named and
// dialable, names unique) and builds the per-endpoint pools. kind names
// the client flavor ("remote", "quorum") in error messages.
func newTransport(kind, name string, callTimeout time.Duration, endpoints []Endpoint) (*transport, error) {
	seen := make(map[string]bool, len(endpoints))
	for _, ep := range endpoints {
		if ep.Name == "" || ep.Dial == nil {
			return nil, fmt.Errorf("dist: %s %q: endpoint needs a name and a dialer", kind, name)
		}
		if seen[ep.Name] {
			return nil, fmt.Errorf("dist: %s %q: duplicate endpoint %q", kind, name, ep.Name)
		}
		seen[ep.Name] = true
	}
	if callTimeout <= 0 {
		callTimeout = defaultCallTimeout
	}
	set := &epSet{
		endpoints: make([]Endpoint, len(endpoints)),
		pools:     make([]*connPool, len(endpoints)),
	}
	copy(set.endpoints, endpoints)
	for i := range set.pools {
		set.pools[i] = newConnPool()
	}
	t := &transport{name: name, kind: kind, callTimeout: callTimeout}
	t.eps.Store(set)
	return t, nil
}

// view returns the current endpoint-set snapshot. Callers fan one
// request out against one view; the view stays valid (its pools are
// only closed by remove/close, which unblocks rather than corrupts).
func (t *transport) view() *epSet { return t.eps.Load() }

// add splices a new endpoint (with a fresh pool) into the set.
func (t *transport) add(ep Endpoint) error {
	if ep.Name == "" || ep.Dial == nil {
		return fmt.Errorf("dist: %s %q: endpoint needs a name and a dialer", t.kind, t.name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return ErrClientClosed
	}
	cur := t.eps.Load()
	if cur.index(ep.Name) >= 0 {
		return fmt.Errorf("dist: %s %q: duplicate endpoint %q", t.kind, t.name, ep.Name)
	}
	next := &epSet{
		endpoints: append(append([]Endpoint(nil), cur.endpoints...), ep),
		pools:     append(append([]*connPool(nil), cur.pools...), newConnPool()),
	}
	t.eps.Store(next)
	return nil
}

// remove takes the named endpoint out of the set and closes its pool,
// which cancels any straggler still blocked on the removed replica.
// minLeft guards the invariant the client needs after removal
// (Remote: at least 1 endpoint, Quorum: at least 2k+1).
func (t *transport) remove(name string, minLeft int) error {
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		return ErrClientClosed
	}
	cur := t.eps.Load()
	i := cur.index(name)
	if i < 0 {
		t.mu.Unlock()
		return fmt.Errorf("dist: %s %q: no endpoint %q", t.kind, t.name, name)
	}
	if len(cur.endpoints)-1 < minLeft {
		t.mu.Unlock()
		return fmt.Errorf("dist: %s %q: removing %q would leave %d endpoints, need at least %d",
			t.kind, t.name, name, len(cur.endpoints)-1, minLeft)
	}
	next := &epSet{
		endpoints: make([]Endpoint, 0, len(cur.endpoints)-1),
		pools:     make([]*connPool, 0, len(cur.pools)-1),
	}
	next.endpoints = append(append(next.endpoints, cur.endpoints[:i]...), cur.endpoints[i+1:]...)
	next.pools = append(append(next.pools, cur.pools[:i]...), cur.pools[i+1:]...)
	t.eps.Store(next)
	removed := cur.pools[i]
	t.mu.Unlock()
	removed.close()
	return nil
}

// close releases every pooled and in-flight connection; blocked calls
// unblock with a connection error. Idempotent.
func (t *transport) close() {
	if t.closed.Swap(true) {
		return
	}
	t.mu.Lock()
	set := t.eps.Load()
	t.mu.Unlock()
	for _, p := range set.pools {
		p.close()
	}
}

// roundTrip performs one RPC attempt against one endpoint of the
// captured snapshot: pooled connection (or fresh dial), framed call
// out, framed reply in, all under the per-endpoint deadline. The
// attempt span tc (zero when untraced) rides the envelope so the
// replica continues the trace. Context cancellation — a winner
// canceling losers or stragglers, or the caller giving up — smashes
// the connection deadline so a blocked read returns promptly.
func roundTrip[I, O any](ctx context.Context, t *transport, v *epSet, ep int, tc obs.TraceContext, input I) (out O, err error) {
	ctx, cancel := context.WithTimeout(ctx, t.callTimeout)
	defer cancel()
	conn, err := v.pools[ep].get(ctx, v.endpoints[ep].Dial)
	if err != nil {
		return out, err
	}
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0)) // the distant past: unblock I/O now
	})
	reusable := false
	defer func() {
		if !stop() {
			// The canceler ran (or is running): the deadline may be
			// smashed, so the connection cannot be trusted for reuse.
			v.pools[ep].drop(conn)
			return
		}
		if reusable {
			conn.SetDeadline(time.Time{})
			v.pools[ep].put(conn)
		} else {
			v.pools[ep].drop(conn)
		}
	}()
	if d, ok := ctx.Deadline(); ok {
		conn.SetDeadline(d)
	}
	env := &envelope{ID: t.ids.Add(1), Kind: kindCall, TraceID: tc.TraceID, SpanID: tc.SpanID}
	if env.Payload, err = encodeValue(input); err != nil {
		return out, err
	}
	frame, err := encodeEnvelope(env)
	if err != nil {
		return out, err
	}
	if err := writeFrame(conn, frame); err != nil {
		return out, fmt.Errorf("dist: %s: send: %w", v.endpoints[ep].Name, err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		return out, fmt.Errorf("dist: %s: recv: %w", v.endpoints[ep].Name, err)
	}
	reply, err := decodeEnvelope(payload)
	if err != nil {
		return out, err
	}
	if reply.Kind != kindReply || reply.ID != env.ID {
		return out, fmt.Errorf("%w: unexpected reply kind %d id %d", ErrBadFrame, reply.Kind, reply.ID)
	}
	if reply.Err != "" {
		// An in-band failure: the variant on the far side failed, but the
		// connection itself completed a clean round trip and stays usable.
		reusable = true
		return out, fmt.Errorf("dist: %s: %w: %s", v.endpoints[ep].Name, ErrRemote, reply.Err)
	}
	if err := decodeValue(reply.Payload, &out); err != nil {
		return out, err
	}
	reusable = true
	return out, nil
}

// connPool is one endpoint's connection pool. It tracks every live
// connection it handed out — pooled and in-flight alike — so closing
// the pool unblocks calls stuck on a partitioned network.
type connPool struct {
	mu     sync.Mutex
	free   []net.Conn
	all    map[net.Conn]struct{}
	closed bool
}

func newConnPool() *connPool {
	return &connPool{all: make(map[net.Conn]struct{})}
}

// get pops an idle connection or dials a fresh one.
func (p *connPool) get(ctx context.Context, dial DialFunc) (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrClientClosed
	}
	p.all[c] = struct{}{}
	p.mu.Unlock()
	return c, nil
}

// put returns a healthy connection to the idle list (or closes it when
// the pool is full or closed).
func (p *connPool) put(c net.Conn) {
	p.mu.Lock()
	if p.closed || len(p.free) >= maxIdleConns {
		delete(p.all, c)
		p.mu.Unlock()
		c.Close()
		return
	}
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// drop discards a connection that must not be reused.
func (p *connPool) drop(c net.Conn) {
	p.mu.Lock()
	delete(p.all, c)
	for i, f := range p.free {
		if f == c {
			p.free = append(p.free[:i], p.free[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	c.Close()
}

// close closes every tracked connection; subsequent gets fail fast.
func (p *connPool) close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.all))
	for c := range p.all {
		conns = append(conns, c)
	}
	p.all = make(map[net.Conn]struct{})
	p.free = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

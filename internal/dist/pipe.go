package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// DialFunc opens one connection to a replica endpoint. The transport
// layer is abstracted to exactly this: TCP endpoints use a net.Dialer,
// deterministic tests use a PipeNetwork, and the fault injector wraps
// either with a chaos-decorated dialer.
type DialFunc func(ctx context.Context) (net.Conn, error)

// ErrReplicaUnavailable reports a dial to an endpoint that is not
// listening (connection refused, listener closed, unknown pipe address).
var ErrReplicaUnavailable = errors.New("dist: replica unavailable")

// TCPDialer returns a DialFunc connecting to addr over TCP.
func TCPDialer(addr string) DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrReplicaUnavailable, err)
		}
		return conn, nil
	}
}

// PipeNetwork is the in-memory transport: named listeners connected by
// synchronous net.Pipe pairs. It gives tests and simulations a real
// net.Conn boundary — framing, deadlines, concurrent connections — with
// no sockets, ports, or scheduler-dependent accept backlogs.
type PipeNetwork struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener
}

// NewPipeNetwork returns an empty in-memory network.
func NewPipeNetwork() *PipeNetwork {
	return &PipeNetwork{listeners: make(map[string]*pipeListener)}
}

// Listen claims name on the network and returns its listener. A second
// listener on the same name is an error until the first is closed.
func (n *PipeNetwork) Listen(name string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[name]; ok {
		return nil, fmt.Errorf("dist: pipe address %q already in use", name)
	}
	l := &pipeListener{
		net:   n,
		name:  name,
		conns: make(chan net.Conn),
		done:  make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// Dial returns a DialFunc connecting to the named listener. The listener
// does not need to exist yet at Dial-construction time — only when the
// returned function runs.
func (n *PipeNetwork) Dial(name string) DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		n.mu.Lock()
		l := n.listeners[name]
		n.mu.Unlock()
		if l == nil {
			return nil, fmt.Errorf("%w: no pipe listener %q", ErrReplicaUnavailable, name)
		}
		client, server := net.Pipe()
		select {
		case l.conns <- server:
			return client, nil
		case <-l.done:
			client.Close()
			server.Close()
			return nil, fmt.Errorf("%w: pipe listener %q closed", ErrReplicaUnavailable, name)
		case <-ctx.Done():
			client.Close()
			server.Close()
			return nil, ctx.Err()
		}
	}
}

// remove unregisters a closed listener so the name can be reused.
func (n *PipeNetwork) remove(name string) {
	n.mu.Lock()
	delete(n.listeners, name)
	n.mu.Unlock()
}

// pipeListener implements net.Listener over a rendezvous channel.
type pipeListener struct {
	net   *PipeNetwork
	name  string
	conns chan net.Conn
	once  sync.Once
	done  chan struct{}
}

var _ net.Listener = (*pipeListener)(nil)

// Accept implements net.Listener.
func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.remove(l.name)
	})
	return nil
}

// Addr implements net.Listener.
func (l *pipeListener) Addr() net.Addr { return pipeAddr(l.name) }

// pipeAddr names a pipe endpoint.
type pipeAddr string

// Network implements net.Addr.
func (pipeAddr) Network() string { return "pipe" }

// String implements net.Addr.
func (a pipeAddr) String() string { return string(a) }

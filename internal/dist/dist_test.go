// Package dist tests: the framed RPC transport, replica servers, and
// the hedged remote-variant client, all over the deterministic in-memory
// PipeNetwork (plus one real-TCP round trip). Run with -race: the client
// fans hedged attempts across goroutines and the server handles
// concurrent connections.
package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/resilience"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// startReplica serves variant on the pipe network under name and
// registers cleanup. It returns the server.
func startReplica(t *testing.T, network *PipeNetwork, name string, v core.Variant[int, int]) *Server[int, int] {
	t.Helper()
	ln, err := network.Listen(name)
	if err != nil {
		t.Fatalf("Listen(%q): %v", name, err)
	}
	srv := NewServer(v, ln, ServerConfig{Name: name})
	go srv.Serve(context.Background())
	t.Cleanup(func() { srv.Close() })
	return srv
}

func double() core.Variant[int, int] {
	return core.NewVariant("double", func(_ context.Context, x int) (int, error) {
		return 2 * x, nil
	})
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload survives framing")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: got %q want %q", got, payload)
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("about to be corrupted")); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload bit; the CRC must notice
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt frame: got %v, want ErrBadFrame", err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	var hdr [frameHeaderSize]byte
	hdr[0] = frameVersion
	binary.BigEndian.PutUint32(hdr[1:5], MaxFrameSize+1)
	if _, err := readFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameRejectsVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("future payload")); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	raw := buf.Bytes()
	for _, v := range []byte{frameVersion + 1, frameVersion - 1, 0} {
		raw[0] = v
		_, err := readFrame(bytes.NewReader(raw))
		if !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("version %d: got %v, want ErrVersionMismatch", v, err)
		}
	}
	raw[0] = frameVersion
	if _, err := readFrame(bytes.NewReader(raw)); err != nil {
		t.Fatalf("matching version rejected: %v", err)
	}
}

func TestEnvelopeTraceFieldsRoundTrip(t *testing.T) {
	in := &envelope{ID: 7, Kind: kindCall, Payload: []byte("x"), TraceID: 0xABCD, SpanID: 0x1234}
	data, err := encodeEnvelope(in)
	if err != nil {
		t.Fatalf("encodeEnvelope: %v", err)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, data); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	payload, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	out, err := decodeEnvelope(payload)
	if err != nil {
		t.Fatalf("decodeEnvelope: %v", err)
	}
	if out.TraceID != in.TraceID || out.SpanID != in.SpanID || out.ID != in.ID {
		t.Fatalf("trace fields lost in transit: got %+v want %+v", out, in)
	}
}

func TestRemoteCallRoundTrip(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "r1", double())
	remote, err := NewRemote[int, int]("doubler", RemoteConfig{},
		Endpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	got, err := remote.Execute(context.Background(), 21)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got != 42 {
		t.Fatalf("Execute: got %d want 42", got)
	}
}

func TestRemoteErrorTravelsInBand(t *testing.T) {
	boom := errors.New("replica-side failure")
	network := NewPipeNetwork()
	startReplica(t, network, "r1", core.NewVariant("fails",
		func(_ context.Context, _ int) (int, error) { return 0, boom }))
	remote, err := NewRemote[int, int]("failing", RemoteConfig{},
		Endpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	_, err = remote.Execute(context.Background(), 1)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("remote failure: got %v, want ErrRemote", err)
	}
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("remote failure: got %v, want ErrAllVariantsFailed in chain", err)
	}
	if !strings.Contains(err.Error(), boom.Error()) {
		t.Fatalf("remote failure lost the message: %v", err)
	}
}

func TestRemoteContainsReplicaPanic(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "r1", core.NewVariant("panics",
		func(_ context.Context, _ int) (int, error) { panic("replica blew up") }))
	remote, err := NewRemote[int, int]("panicky", RemoteConfig{},
		Endpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	_, err = remote.Execute(context.Background(), 1)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("replica panic: got %v, want ErrRemote (guarded server-side)", err)
	}
	// The connection survived the panic: the next call works.
	if got, err := remote.Execute(context.Background(), 3); err == nil {
		t.Fatalf("panicking variant returned %d, want error", got)
	}
}

func TestRemoteConnectionReuse(t *testing.T) {
	var dials atomic.Int32
	network := NewPipeNetwork()
	startReplica(t, network, "r1", double())
	base := network.Dial("r1")
	counting := func(ctx context.Context) (net.Conn, error) {
		dials.Add(1)
		return base(ctx)
	}
	remote, err := NewRemote[int, int]("pooled", RemoteConfig{},
		Endpoint{Name: "r1", Dial: counting})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	for i := 0; i < 10; i++ {
		if _, err := remote.Execute(context.Background(), i); err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("10 sequential calls dialed %d times, want 1 (pooling)", n)
	}
}

func TestRemoteFailsOverToNextEndpoint(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "good", double())
	remote, err := NewRemote[int, int]("failover", RemoteConfig{},
		Endpoint{Name: "down", Dial: network.Dial("down")}, // nothing listening
		Endpoint{Name: "good", Dial: network.Dial("good")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	got, err := remote.Execute(context.Background(), 5)
	if err != nil {
		t.Fatalf("failover Execute: %v", err)
	}
	if got != 10 {
		t.Fatalf("failover Execute: got %d want 10", got)
	}
}

func TestRemoteAllEndpointsDown(t *testing.T) {
	network := NewPipeNetwork()
	remote, err := NewRemote[int, int]("doomed", RemoteConfig{},
		Endpoint{Name: "a", Dial: network.Dial("a")},
		Endpoint{Name: "b", Dial: network.Dial("b")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	_, err = remote.Execute(context.Background(), 1)
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("all down: got %v, want ErrAllVariantsFailed", err)
	}
	if !errors.Is(err, ErrReplicaUnavailable) {
		t.Fatalf("all down: got %v, want ErrReplicaUnavailable in chain", err)
	}
}

func TestRemoteHedgeRacesSlowEndpoint(t *testing.T) {
	network := NewPipeNetwork()
	release := make(chan struct{})
	startReplica(t, network, "slow", core.NewVariant("slow",
		func(ctx context.Context, x int) (int, error) {
			select {
			case <-release:
				return x, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}))
	startReplica(t, network, "fast", double())
	defer close(release)
	collector := obs.NewCollector()
	remote, err := NewRemote[int, int]("hedger", RemoteConfig{
		CallTimeout: 5 * time.Second,
		HedgeAfter:  10 * time.Millisecond,
		Observer:    collector,
	},
		Endpoint{Name: "slow", Dial: network.Dial("slow")},
		Endpoint{Name: "fast", Dial: network.Dial("fast")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	got, err := remote.Execute(context.Background(), 7)
	if err != nil {
		t.Fatalf("hedged Execute: %v", err)
	}
	if got != 14 {
		t.Fatalf("hedged Execute: got %d want 14 (the hedge's answer)", got)
	}
	var snap *obs.ExecutorSnapshot
	for _, s := range collector.Snapshot() {
		if s.Executor == "hedger" {
			snap = &s
			break
		}
	}
	if snap == nil {
		t.Fatal("no executor snapshot for the hedging client")
	}
	if snap.Hedges == 0 {
		t.Fatal("hedge launched but not counted")
	}
	if snap.HedgeWins == 0 {
		t.Fatal("hedge won but not counted")
	}
}

func TestRemoteBreakerSkipsOpenEndpoint(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "good", double())
	var dials atomic.Int32
	badBase := network.Dial("bad") // nothing listening
	bad := func(ctx context.Context) (net.Conn, error) {
		dials.Add(1)
		return badBase(ctx)
	}
	breakers := resilience.NewBreakers(resilience.BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             time.Hour,
	})
	remote, err := NewRemote[int, int]("guarded", RemoteConfig{Breakers: breakers},
		Endpoint{Name: "bad", Dial: bad},
		Endpoint{Name: "good", Dial: network.Dial("good")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	for i := 0; i < 6; i++ {
		if _, err := remote.Execute(context.Background(), i); err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
	}
	// Two failures trip the breaker; afterwards the dead endpoint must be
	// skipped without dialing.
	if n := dials.Load(); n != 2 {
		t.Fatalf("dead endpoint dialed %d times, want 2 (breaker skips after trip)", n)
	}
}

func TestRemoteDetectorRoutesAroundSuspect(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "r1", double())
	startReplica(t, network, "r2", double())
	det := NewDetector(DetectorConfig{Timeout: 100 * time.Millisecond, SuspectAfter: 1})
	det.Watch("r1", network.Dial("r1"))
	det.Watch("r2", func(ctx context.Context) (net.Conn, error) {
		return nil, ErrReplicaUnavailable // r2's heartbeat path is partitioned
	})
	det.Poll(context.Background())
	if got := det.State("r2"); got != obs.ReplicaSuspect {
		t.Fatalf("r2 state after missed heartbeat: %v, want suspect", got)
	}
	var firstDialed atomic.Value
	dialTracking := func(name string, base DialFunc) DialFunc {
		return func(ctx context.Context) (net.Conn, error) {
			firstDialed.CompareAndSwap(nil, name)
			return base(ctx)
		}
	}
	remote, err := NewRemote[int, int]("routed", RemoteConfig{Detector: det},
		Endpoint{Name: "r2", Dial: dialTracking("r2", network.Dial("r2"))},
		Endpoint{Name: "r1", Dial: dialTracking("r1", network.Dial("r1"))})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	if _, err := remote.Execute(context.Background(), 1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// r2 is listed first but suspect; the detector must route to r1.
	if got := firstDialed.Load(); got != "r1" {
		t.Fatalf("first dial went to %v, want r1 (alive ranked before suspect)", got)
	}
}

func TestRemotePlugsIntoPatternExecutors(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "r1", double())
	startReplica(t, network, "r2", double())
	startReplica(t, network, "r3", core.NewVariant("flaky",
		func(_ context.Context, _ int) (int, error) { return 0, errors.New("flaky replica") }))
	mk := func(name string) core.Variant[int, int] {
		r, err := NewRemote[int, int](name, RemoteConfig{},
			Endpoint{Name: name, Dial: network.Dial(name)})
		if err != nil {
			t.Fatalf("NewRemote(%q): %v", name, err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	variants := []core.Variant[int, int]{mk("r1"), mk("r2"), mk("r3")}
	accept := core.AcceptanceTest[int, int](func(in, out int) error {
		if out != 2*in {
			return fmt.Errorf("got %d want %d", out, 2*in)
		}
		return nil
	})
	tests := []core.AcceptanceTest[int, int]{accept, accept, accept}

	sel, err := pattern.NewParallelSelection(variants, tests)
	if err != nil {
		t.Fatalf("NewParallelSelection: %v", err)
	}
	if got, err := sel.Execute(context.Background(), 4); err != nil || got != 8 {
		t.Fatalf("parallel selection over remotes: got %d, %v; want 8, nil", got, err)
	}
	seq, err := pattern.NewSequentialAlternatives(variants, accept, nil)
	if err != nil {
		t.Fatalf("NewSequentialAlternatives: %v", err)
	}
	if got, err := seq.Execute(context.Background(), 6); err != nil || got != 12 {
		t.Fatalf("sequential alternatives over remotes: got %d, %v; want 12, nil", got, err)
	}
	eval, err := pattern.NewParallelEvaluation(variants[:2],
		vote.Majority[int](func(a, b int) bool { return a == b }))
	if err != nil {
		t.Fatalf("NewParallelEvaluation: %v", err)
	}
	if got, err := eval.Execute(context.Background(), 10); err != nil || got != 20 {
		t.Fatalf("parallel evaluation over remotes: got %d, %v; want 20, nil", got, err)
	}
}

func TestRemoteOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	srv := NewServer(double(), ln, ServerConfig{Name: "tcp-replica"})
	go srv.Serve(context.Background())
	defer srv.Close()
	remote, err := NewRemote[int, int]("tcp-client", RemoteConfig{},
		Endpoint{Name: "tcp-replica", Dial: TCPDialer(ln.Addr().String())})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	got, err := remote.Execute(context.Background(), 100)
	if err != nil {
		t.Fatalf("Execute over TCP: %v", err)
	}
	if got != 200 {
		t.Fatalf("Execute over TCP: got %d want 200", got)
	}
}

func TestNewRemoteValidation(t *testing.T) {
	network := NewPipeNetwork()
	if _, err := NewRemote[int, int]("empty", RemoteConfig{}); !errors.Is(err, core.ErrNoVariants) {
		t.Fatalf("no endpoints: got %v, want ErrNoVariants", err)
	}
	if _, err := NewRemote[int, int]("dup", RemoteConfig{},
		Endpoint{Name: "a", Dial: network.Dial("a")},
		Endpoint{Name: "a", Dial: network.Dial("a")}); err == nil {
		t.Fatal("duplicate endpoint names accepted")
	}
	if _, err := NewRemote[int, int]("anon", RemoteConfig{},
		Endpoint{Dial: network.Dial("a")}); err == nil {
		t.Fatal("unnamed endpoint accepted")
	}
}

func TestPipeNetworkAddressLifecycle(t *testing.T) {
	network := NewPipeNetwork()
	ln, err := network.Listen("addr")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := network.Listen("addr"); err == nil {
		t.Fatal("double Listen on one address succeeded")
	}
	if got := ln.Addr().String(); got != "addr" {
		t.Fatalf("Addr: %q, want addr", got)
	}
	ln.Close()
	ln.Close() // idempotent
	if _, err := network.Listen("addr"); err != nil {
		t.Fatalf("Listen after Close: %v (address must be reusable)", err)
	}
	dial := network.Dial("ghost")
	if _, err := dial(context.Background()); !errors.Is(err, ErrReplicaUnavailable) {
		t.Fatalf("dial unknown address: got %v, want ErrReplicaUnavailable", err)
	}
}

func TestServerCallTimeoutBoundsWedgedVariant(t *testing.T) {
	network := NewPipeNetwork()
	ln, err := network.Listen("wedged")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := NewServer(core.NewVariant("hangs",
		func(ctx context.Context, _ int) (int, error) {
			<-ctx.Done() // honors cancellation; the server's CallTimeout fires it
			return 0, ctx.Err()
		}), ln, ServerConfig{Name: "wedged", CallTimeout: 20 * time.Millisecond})
	go srv.Serve(context.Background())
	defer srv.Close()
	remote, err := NewRemote[int, int]("caller", RemoteConfig{CallTimeout: 5 * time.Second},
		Endpoint{Name: "wedged", Dial: network.Dial("wedged")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	start := time.Now()
	_, err = remote.Execute(context.Background(), 1)
	if err == nil {
		t.Fatal("wedged variant returned success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("server CallTimeout did not bound the call: took %v", elapsed)
	}
}

package dist

// Torn-read and mutation races on the live-reconfiguration surface the
// control plane drives: SetHedgeAfter and Add/RemoveEndpoint are called
// from the controller's reconciliation goroutine while request
// goroutines are mid-Execute. These tests exist for -race: correctness
// here is "no torn reads, no data races, every request still answered",
// not any particular latency outcome.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSetHedgeAfterRacesExecute(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "h1", double())
	startReplica(t, network, "h2", double())
	remote, err := NewRemote[int, int]("fleet", RemoteConfig{
		CallTimeout: time.Second,
		HedgeAfter:  10 * time.Millisecond,
		MaxHedges:   1,
	},
		Endpoint{Name: "h1", Dial: network.Dial("h1")},
		Endpoint{Name: "h2", Dial: network.Dial("h2")},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		delays := []time.Duration{time.Millisecond, 50 * time.Millisecond, 5 * time.Millisecond}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			remote.SetHedgeAfter(delays[i%len(delays)])
			if got := remote.HedgeAfter(); got <= 0 {
				t.Errorf("torn HedgeAfter read: %v", got)
				return
			}
		}
	}()

	ctx := context.Background()
	for i := 0; i < 300; i++ {
		got, err := remote.Execute(ctx, i)
		if err != nil {
			t.Fatalf("Execute(%d) under SetHedgeAfter churn: %v", i, err)
		}
		if got != 2*i {
			t.Fatalf("Execute(%d) = %d, want %d", i, got, 2*i)
		}
	}
	close(done)
	wg.Wait()
}

func TestEndpointMutationRacesExecute(t *testing.T) {
	network := NewPipeNetwork()
	for i := 1; i <= 4; i++ {
		startReplica(t, network, fmt.Sprintf("m%d", i), double())
	}
	// m1 and m2 are permanent; m3/m4 are churned in and out while the
	// request loop runs, exercising the copy-on-write endpoint set
	// against in-flight snapshots.
	remote, err := NewRemote[int, int]("fleet", RemoteConfig{
		CallTimeout: time.Second,
	},
		Endpoint{Name: "m1", Dial: network.Dial("m1")},
		Endpoint{Name: "m2", Dial: network.Dial("m2")},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			name := fmt.Sprintf("m%d", 3+i%2)
			if err := remote.AddEndpoint(Endpoint{Name: name, Dial: network.Dial(name)}); err != nil {
				continue // already present from a previous lap
			}
			if err := remote.RemoveEndpoint(name); err != nil {
				t.Errorf("RemoveEndpoint(%s): %v", name, err)
				return
			}
		}
	}()

	ctx := context.Background()
	for i := 0; i < 300; i++ {
		got, err := remote.Execute(ctx, i)
		if err != nil {
			t.Fatalf("Execute(%d) under endpoint churn: %v", i, err)
		}
		if got != 2*i {
			t.Fatalf("Execute(%d) = %d, want %d", i, got, 2*i)
		}
	}
	close(done)
	wg.Wait()
	if names := remote.Endpoints(); len(names) < 2 {
		t.Fatalf("permanent endpoints lost under churn: %v", names)
	}
}

package dist

// Torn-read and mutation races on the live-reconfiguration surface the
// control plane drives: SetHedgeAfter and Add/RemoveEndpoint are called
// from the controller's reconciliation goroutine while request
// goroutines are mid-Execute. These tests exist for -race: correctness
// here is "no torn reads, no data races, every request still answered",
// not any particular latency outcome.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestSetHedgeAfterRacesExecute(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "h1", double())
	startReplica(t, network, "h2", double())
	remote, err := NewRemote[int, int]("fleet", RemoteConfig{
		CallTimeout: time.Second,
		HedgeAfter:  10 * time.Millisecond,
		MaxHedges:   1,
	},
		Endpoint{Name: "h1", Dial: network.Dial("h1")},
		Endpoint{Name: "h2", Dial: network.Dial("h2")},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		delays := []time.Duration{time.Millisecond, 50 * time.Millisecond, 5 * time.Millisecond}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			remote.SetHedgeAfter(delays[i%len(delays)])
			if got := remote.HedgeAfter(); got <= 0 {
				t.Errorf("torn HedgeAfter read: %v", got)
				return
			}
		}
	}()

	ctx := context.Background()
	for i := 0; i < 300; i++ {
		got, err := remote.Execute(ctx, i)
		if err != nil {
			t.Fatalf("Execute(%d) under SetHedgeAfter churn: %v", i, err)
		}
		if got != 2*i {
			t.Fatalf("Execute(%d) = %d, want %d", i, got, 2*i)
		}
	}
	close(done)
	wg.Wait()
}

func TestEndpointMutationRacesExecute(t *testing.T) {
	network := NewPipeNetwork()
	for i := 1; i <= 4; i++ {
		startReplica(t, network, fmt.Sprintf("m%d", i), double())
	}
	// m1 and m2 are permanent; m3/m4 are churned in and out while the
	// request loop runs, exercising the copy-on-write endpoint set
	// against in-flight snapshots.
	remote, err := NewRemote[int, int]("fleet", RemoteConfig{
		CallTimeout: time.Second,
	},
		Endpoint{Name: "m1", Dial: network.Dial("m1")},
		Endpoint{Name: "m2", Dial: network.Dial("m2")},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			name := fmt.Sprintf("m%d", 3+i%2)
			if err := remote.AddEndpoint(Endpoint{Name: name, Dial: network.Dial(name)}); err != nil {
				continue // already present from a previous lap
			}
			if err := remote.RemoveEndpoint(name); err != nil {
				t.Errorf("RemoveEndpoint(%s): %v", name, err)
				return
			}
		}
	}()

	ctx := context.Background()
	for i := 0; i < 300; i++ {
		got, err := remote.Execute(ctx, i)
		if err != nil {
			t.Fatalf("Execute(%d) under endpoint churn: %v", i, err)
		}
		if got != 2*i {
			t.Fatalf("Execute(%d) = %d, want %d", i, got, 2*i)
		}
	}
	close(done)
	wg.Wait()
	if names := remote.Endpoints(); len(names) < 2 {
		t.Fatalf("permanent endpoints lost under churn: %v", names)
	}
}

func TestDetectorMutatorsRaceRecordAndRank(t *testing.T) {
	// The control plane calls Forget (retiring a replaced endpoint) and
	// reads Evidence from its reconciliation goroutine, the ejector
	// files ReportSlow/ClearSlow from request goroutines, and Poll's
	// per-member goroutines call record — all while Remote clients call
	// Rank/State per request. The live setters got this treatment in
	// the PR-9 race tests; this covers the detector mutators.
	det := NewDetector(DetectorConfig{Seed: 11, SuspectAfter: 2, DeadAfter: 5})
	names := []string{"d1", "d2", "d3", "d4"}
	unreachable := func(ctx context.Context) (net.Conn, error) { return nil, ErrReplicaUnavailable }
	for _, name := range names {
		det.Watch(name, unreachable)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	churn := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				fn(i)
			}
		}()
	}
	churn(func(i int) { // heartbeat outcomes
		det.record(names[i%len(names)], i%3 == 0)
	})
	churn(func(i int) { // controller retiring + re-watching members
		name := names[i%len(names)]
		det.Forget(name)
		det.Watch(name, unreachable)
	})
	churn(func(i int) { // ejector filing and clearing slowness
		name := names[(i+1)%len(names)]
		det.ReportSlow(name)
		det.ClearSlow(name)
	})
	churn(func(i int) { // quorum filing accusations
		det.Accuse(names[(i+2)%len(names)])
	})

	for i := 0; i < 500; i++ {
		ranked := det.Rank("exec", names)
		if len(ranked) != len(names) {
			t.Fatalf("Rank under churn returned %d names, want %d", len(ranked), len(names))
		}
		for _, name := range names {
			misses, accusations, slowness := det.Evidence(name)
			if misses < 0 || accusations < 0 || slowness < 0 {
				t.Fatalf("torn Evidence read for %s: %d/%d/%d", name, misses, accusations, slowness)
			}
			_ = det.State(name)
		}
	}
	close(done)
	wg.Wait()
}

func TestEjectorObserveRacesRouting(t *testing.T) {
	// Request goroutines feed Observe/ObserveCensored while the Execute
	// goroutine consults route/p2cFront and reports read Snapshot.
	e := NewEjector(EjectorConfig{Seed: 5, Threshold: 3, MinSamples: 5, MinKeep: 1, ProbeEvery: 8})
	names := []string{"e1", "e2", "e3"}
	name := func(i int) string { return names[i] }

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			lat := time.Millisecond
			if i%len(names) == 1 {
				lat = 20 * time.Millisecond // e2 limps
			}
			e.Observe(names[i%len(names)], lat)
			e.ObserveCensored(names[i%len(names)], lat/2)
		}
	}()

	for i := 0; i < 500; i++ {
		order := []int{0, 1, 2}
		class := make([]int, 3)
		if p := e.route(3, name, class); p >= 3 {
			t.Fatalf("route returned out-of-range probe %d", p)
		}
		e.p2cFront(order, class, name)
		seen := 0
		for _, ep := range e.Snapshot() {
			if ep.Samples < 0 {
				t.Fatalf("torn snapshot: %+v", ep)
			}
			seen++
		}
		_ = e.Ejected("e2")
		_ = seen
	}
	close(done)
	wg.Wait()
}

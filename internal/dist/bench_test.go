package dist

import (
	"context"
	"sort"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// BenchmarkRPCRoundTrip measures one framed call over the in-memory
// transport: gob encode, CRC frame, pipe hop, server dispatch, and the
// reply path, on a pooled connection.
func BenchmarkRPCRoundTrip(b *testing.B) {
	network := NewPipeNetwork()
	ln, err := network.Listen("r1")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	srv := NewServer(double(), ln, ServerConfig{})
	go srv.Serve(context.Background())
	defer srv.Close()
	remote, err := NewRemote[int, int]("bench", RemoteConfig{},
		Endpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		b.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := remote.Execute(context.Background(), i); err != nil {
			b.Fatalf("Execute: %v", err)
		}
		latencies = append(latencies, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	b.ReportMetric(float64(latencies[len(latencies)*99/100].Nanoseconds()), "p99_ns")
}

// BenchmarkTracedRPCRoundTrip is BenchmarkRPCRoundTrip with full trace
// recording on both sides: trace-recording observers on client and
// server, a traced caller context, and per-attempt spans on the wire.
// The delta against BenchmarkRPCRoundTrip (and the p99_ns columns in
// BENCH_net.json) quantifies trace-propagation overhead.
func BenchmarkTracedRPCRoundTrip(b *testing.B) {
	network := NewPipeNetwork()
	ln, err := network.Listen("r1")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	srv := NewServer(double(), ln, ServerConfig{Observer: obs.NewTraceRecorder(64)})
	go srv.Serve(context.Background())
	defer srv.Close()
	remote, err := NewRemote[int, int]("bench-traced", RemoteConfig{
		Observer: obs.Combine(obs.NewCollector(), obs.NewTraceRecorder(64)),
	}, Endpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		b.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	ctx, _ := obs.StartTrace(context.Background())
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := remote.Execute(ctx, i); err != nil {
			b.Fatalf("Execute: %v", err)
		}
		latencies = append(latencies, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	b.ReportMetric(float64(latencies[len(latencies)*99/100].Nanoseconds()), "p99_ns")
}

// BenchmarkQuorumRoundTrip measures one majority-voted call across a
// 2k+1 fleet (n=3, k=1): three concurrent framed round trips, the
// padded-slate adjudication on each settle, and straggler cancellation.
// The delta against BenchmarkRPCRoundTrip prices the Byzantine-fault
// defense: n wire hops and a vote instead of one trusting call.
func BenchmarkQuorumRoundTrip(b *testing.B) {
	network := NewPipeNetwork()
	endpoints := make([]Endpoint, 0, 3)
	for _, name := range []string{"r1", "r2", "r3"} {
		ln, err := network.Listen(name)
		if err != nil {
			b.Fatalf("Listen(%q): %v", name, err)
		}
		srv := NewServer(double(), ln, ServerConfig{Name: name})
		go srv.Serve(context.Background())
		b.Cleanup(func() { srv.Close() })
		endpoints = append(endpoints, Endpoint{Name: name, Dial: network.Dial(name)})
	}
	eq := func(a, c int) bool { return a == c }
	quorum, err := NewQuorum[int, int]("bench-quorum", QuorumConfig{Faults: 1},
		vote.Majority[int](eq), eq, endpoints...)
	if err != nil {
		b.Fatalf("NewQuorum: %v", err)
	}
	defer quorum.Close()
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := quorum.Execute(context.Background(), i); err != nil {
			b.Fatalf("Execute: %v", err)
		}
		latencies = append(latencies, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	b.ReportMetric(float64(latencies[len(latencies)*99/100].Nanoseconds()), "p99_ns")
}

// spikyVariant answers instantly except for a deterministic fraction of
// calls that stall for spike — the injected tail latency the hedged
// client is supposed to cut.
func spikyVariant(name string, seed uint64, everyNth int, spike time.Duration) core.Variant[int, int] {
	return core.NewVariant(name, func(ctx context.Context, x int) (int, error) {
		if uint64(x)%uint64(everyNth) == seed%uint64(everyNth) {
			select {
			case <-time.After(spike):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		return 2 * x, nil
	})
}

// benchTailLatency drives sequential calls through remote, collects
// per-call latency, and reports the 99th percentile as p99_ns next to
// the usual ns/op. scripts/bench.sh captures the metric into
// BENCH_net.json, where the hedged and unhedged runs can be compared.
func benchTailLatency(b *testing.B, remote *Remote[int, int]) {
	b.Helper()
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := remote.Execute(context.Background(), i); err != nil {
			b.Fatalf("Execute: %v", err)
		}
		latencies = append(latencies, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99_ns")
}

// tailBenchCluster serves three replicas that each spike on a different
// (deterministic) 2% of inputs, so a hedge to any sibling of a spiking
// replica answers fast.
func tailBenchCluster(b *testing.B) (*PipeNetwork, []Endpoint) {
	b.Helper()
	network := NewPipeNetwork()
	const spike = 5 * time.Millisecond
	endpoints := make([]Endpoint, 0, 3)
	for i, name := range []string{"r1", "r2", "r3"} {
		ln, err := network.Listen(name)
		if err != nil {
			b.Fatalf("Listen(%q): %v", name, err)
		}
		srv := NewServer(spikyVariant(name, uint64(17*i+3), 50, spike), ln, ServerConfig{Name: name})
		go srv.Serve(context.Background())
		b.Cleanup(func() { srv.Close() })
		endpoints = append(endpoints, Endpoint{Name: name, Dial: network.Dial(name)})
	}
	return network, endpoints
}

// BenchmarkUnhedgedTailLatency is the control: one client, no hedging,
// so every latency spike lands on the caller in full.
func BenchmarkUnhedgedTailLatency(b *testing.B) {
	_, endpoints := tailBenchCluster(b)
	remote, err := NewRemote[int, int]("unhedged", RemoteConfig{
		CallTimeout: 5 * time.Second,
	}, endpoints...)
	if err != nil {
		b.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	benchTailLatency(b, remote)
}

// BenchmarkHedgedTailLatency hedges to the next replica when an attempt
// is slower than a small multiple of the healthy round trip; its p99_ns
// must come in well under the unhedged control's.
func BenchmarkHedgedTailLatency(b *testing.B) {
	_, endpoints := tailBenchCluster(b)
	remote, err := NewRemote[int, int]("hedged", RemoteConfig{
		CallTimeout: 5 * time.Second,
		HedgeAfter:  200 * time.Microsecond,
		MaxHedges:   2,
	}, endpoints...)
	if err != nil {
		b.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	benchTailLatency(b, remote)
}

// BenchmarkP2CPick measures the incremental routing cost the ejector
// adds to every request: one trickle-probe scan plus the power-of-two-
// choices primary pick over a healthy 5-endpoint fleet (seeded pair
// sample, two EWMA loads, one compare). This is the per-request price
// of latency-aware routing and must stay well under a microsecond so
// attaching an Ejector never shows up in RPC benchmarks.
func BenchmarkP2CPick(b *testing.B) {
	e := NewEjector(EjectorConfig{Seed: 42})
	names := []string{"p1", "p2", "p3", "p4", "p5"}
	for i, n := range names {
		for s := 0; s < 8; s++ {
			e.Observe(n, time.Duration(i+1)*time.Millisecond)
		}
	}
	name := func(i int) string { return names[i] }
	order := make([]int, len(names))
	class := make([]int, len(names))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range order {
			order[j] = j
			class[j] = 0
		}
		e.route(len(names), name, class)
		e.p2cFront(order, class, name)
	}
}

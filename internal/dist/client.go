package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/resilience"
)

// Endpoint is one dialable replica address.
type Endpoint struct {
	// Name identifies the endpoint in observation events, breaker state,
	// and failure-detector membership. Required, unique per Remote.
	Name string
	// Dial opens a connection to the replica.
	Dial DialFunc
}

// RemoteConfig parameterizes a Remote variant. The zero value selects
// the documented defaults.
type RemoteConfig struct {
	// CallTimeout is the per-endpoint deadline bounding one RPC attempt
	// end to end (dial, send, receive). Default 1s.
	CallTimeout time.Duration
	// HedgeAfter enables hedged requests: when an attempt has not
	// answered within this duration, the request is fanned out to the
	// next-best endpoint without canceling the first — the classic
	// tail-latency defense. The first acceptable result wins and the
	// losers are canceled. Zero disables hedging; failover to the next
	// endpoint then happens only on failure.
	HedgeAfter time.Duration
	// MaxHedges caps how many extra attempts the hedge timer may launch
	// beyond the primary. Zero means "up to every configured endpoint".
	// (Failure-triggered failover is not capped: a finished attempt holds
	// no resources, so moving on costs nothing.)
	MaxHedges int
	// Breakers, if non-nil, gives each endpoint a circuit breaker:
	// endpoints whose breaker is open are skipped without dialing, and
	// every attempt outcome feeds the endpoint's breaker.
	Breakers *resilience.Breakers
	// Detector, if non-nil, ranks endpoints by liveness before each
	// request: alive before suspect before dead, so routing avoids
	// replicas that stopped acknowledging heartbeats.
	Detector *Detector
	// Ejector, if non-nil, adds the gray-failure defenses to routing:
	// every attempt outcome feeds the endpoint's latency EWMA, ejected
	// latency outliers are routed around (except for trickle probes),
	// and the primary among equally-live endpoints is picked by power
	// of two choices on the EWMAs instead of configured order.
	Ejector *Ejector
	// Observer receives RPCCompleted/HedgeLaunched/HedgeWon events under
	// the Remote's name; nil observes nothing.
	Observer obs.Observer
}

// defaultCallTimeout backstops configs that leave CallTimeout zero.
const defaultCallTimeout = time.Second

// ErrClientClosed reports a call on a closed Remote.
var ErrClientClosed = errors.New("dist: remote client closed")

// maxIdleConns bounds each endpoint's connection pool.
const maxIdleConns = 2

// Remote is a core.Variant whose Execute happens on the other side of
// the network: the input travels to a replica server as a framed RPC and
// the replica's result (or failure) travels back. Because it satisfies
// core.Variant, a Remote plugs unchanged into all four pattern
// executors — parallel evaluation, parallel selection, sequential
// alternatives, and Single — which is exactly the paper's process-
// replicas pattern with the replica boundary made real.
//
// A Remote with several endpoints is one logical replica service with
// failover: endpoints are tried in failure-detector order, a failed
// attempt falls through to the next endpoint, and with HedgeAfter set a
// slow attempt is raced against the next endpoint (first acceptable
// result wins, losers are canceled).
type Remote[I, O any] struct {
	tp  *transport
	cfg RemoteConfig
	// hedgeAfter is the live hedge delay in nanoseconds. It starts as
	// cfg.HedgeAfter and is retunable at runtime (SetHedgeAfter) by the
	// autonomic controller; Execute loads it once per request, so a
	// concurrent retune can never tear a fan-out already in flight.
	hedgeAfter atomic.Int64
	// traced caches obs.WantsTrace(cfg.Observer): span derivation and
	// lineage recording happen only when an attached observer records
	// traces (the envelope still forwards an inherited trace regardless,
	// so a traced caller's context reaches the replica server).
	traced bool
}

var _ core.Variant[int, int] = (*Remote[int, int])(nil)

// NewRemote builds a remote variant over one or more endpoints.
func NewRemote[I, O any](name string, cfg RemoteConfig, endpoints ...Endpoint) (*Remote[I, O], error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("dist: remote %q: %w", name, core.ErrNoVariants)
	}
	tp, err := newTransport("remote", name, cfg.CallTimeout, endpoints)
	if err != nil {
		return nil, err
	}
	cfg.CallTimeout = tp.callTimeout
	if cfg.MaxHedges <= 0 {
		cfg.MaxHedges = len(endpoints) - 1
	}
	if cfg.Breakers != nil {
		cfg.Breakers.Bind("remote:"+name, cfg.Observer)
	}
	r := &Remote[I, O]{
		tp: tp, cfg: cfg,
		traced: obs.WantsTrace(cfg.Observer),
	}
	r.hedgeAfter.Store(int64(cfg.HedgeAfter))
	return r, nil
}

// Name implements core.Variant.
func (r *Remote[I, O]) Name() string { return r.tp.name }

// Close releases every pooled and in-flight connection; blocked calls
// unblock with a connection error. Idempotent.
func (r *Remote[I, O]) Close() error {
	r.tp.close()
	return nil
}

// HedgeAfter returns the live hedge delay (zero when hedging is off).
func (r *Remote[I, O]) HedgeAfter() time.Duration {
	return time.Duration(r.hedgeAfter.Load())
}

// SetHedgeAfter retunes the hedge delay at runtime; zero or negative
// disables hedging. Requests already in flight keep the delay they
// started with — the store is atomic, so a racing Execute sees either
// the old delay or the new one, never a torn mix.
func (r *Remote[I, O]) SetHedgeAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.hedgeAfter.Store(int64(d))
}

// AddEndpoint splices a new endpoint into the live set. Requests
// already fanned out keep the endpoint view they captured; the next
// Execute sees the grown set.
func (r *Remote[I, O]) AddEndpoint(ep Endpoint) error { return r.tp.add(ep) }

// RemoveEndpoint takes an endpoint out of the live set and cancels any
// straggler still blocked on it (its connection pool is closed). The
// last endpoint cannot be removed — a Remote with no endpoints could
// serve nothing.
func (r *Remote[I, O]) RemoveEndpoint(name string) error { return r.tp.remove(name, 1) }

// Endpoints returns the current endpoint names in configured order.
func (r *Remote[I, O]) Endpoints() []string { return r.tp.view().names() }

// attemptResult is one finished (or breaker-rejected) attempt.
type attemptResult[O any] struct {
	value   O
	err     error
	attempt int // 1-based launch order
	ep      int // index into the detector-ranked order
	latency time.Duration
}

// Execute implements core.Variant: the hedged, failure-detector-routed,
// breaker-guarded RPC fan-out. The first acceptable result wins; every
// other in-flight attempt is canceled promptly (its connection deadline
// is smashed, so blocked reads return).
//
// With an observer attached the fan-out is one observed request: a
// RequestStart/RequestEnd span under the Remote's name, an Adjudicated
// verdict (a hedge or failover that masked an attempt failure counts as
// a detected-and-masked fault), and — when the observer records traces —
// a span bound via RequestTraced plus one RPCAttempted lineage record
// per attempt, including losers and cancelled hedges. Each attempt's
// envelope carries a per-attempt child span so the replica server's
// request span joins the same causal trace.
func (r *Remote[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	if r.tp.closed.Load() {
		return zero, ErrClientClosed
	}
	// One immutable endpoint view per request: a controller splicing
	// endpoints mid-flight changes the next request, not this one.
	v := r.tp.view()
	order := r.ordered(v)
	hedgeAfter := time.Duration(r.hedgeAfter.Load())
	maxHedges := r.cfg.MaxHedges
	if maxHedges > len(order)-1 {
		maxHedges = len(order) - 1
	}
	o := r.cfg.Observer
	name := r.tp.name
	var (
		req   uint64
		start time.Time
	)
	if o != nil {
		req = obs.NextRequestID()
		o.RequestStart(name, req)
		start = time.Now()
	}
	// The trace context the attempts fan out under: a fresh child span
	// when this client records traces, or the inherited context passed
	// through verbatim when only an upstream executor records them. Each
	// launched attempt derives its own child span for the wire.
	parent, hasParent := obs.TraceContextFrom(ctx)
	var rtc obs.TraceContext
	if r.traced {
		if hasParent {
			rtc = parent.Child()
		} else {
			rtc = obs.NewTraceContext()
		}
		obs.EmitRequestTraced(o, name, req, rtc)
	} else if hasParent {
		rtc = parent
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan attemptResult[O], len(order))
	launched, pending := 0, 0
	// Per-attempt lineage, maintained by the Execute goroutine only (the
	// attempt goroutines report through the results channel), so the
	// records can be emitted before the request span closes — after
	// RequestEnd a recorder has already committed the trace.
	var (
		lineage  []obs.RPCAttempt
		launches []time.Time
		settled  []bool
	)
	// Per-attempt ejector bookkeeping, independent of the observer: a
	// completed attempt feeds its measured latency, and when another
	// attempt wins the race, the abandoned losers feed their elapsed
	// time as censored (at-least-this-slow) samples.
	ej := r.cfg.Ejector
	var (
		ejEndpoints []string
		ejLaunches  []time.Time
		ejSettled   []bool
	)
	// launchNext starts the next attempt in ranked order. Breaker-open
	// endpoints complete instantly as failed attempts (without dialing),
	// so the loop below immediately moves past them.
	launchNext := func() {
		if launched >= len(order) {
			return
		}
		ep := order[launched]
		launched++
		attempt := launched
		var atc obs.TraceContext
		if rtc.Valid() {
			atc = rtc.Child()
		}
		if o != nil {
			lineage = append(lineage, obs.RPCAttempt{
				Endpoint: v.endpoints[ep].Name, Span: atc, Attempt: attempt,
			})
			launches = append(launches, time.Now())
			settled = append(settled, false)
		}
		if ej != nil {
			ejEndpoints = append(ejEndpoints, v.endpoints[ep].Name)
			ejLaunches = append(ejLaunches, time.Now())
			ejSettled = append(ejSettled, false)
		}
		var (
			brk *resilience.Breaker
			tok resilience.Token
		)
		if r.cfg.Breakers != nil {
			brk = r.cfg.Breakers.For(v.endpoints[ep].Name)
			var err error
			if tok, err = brk.Allow(); err != nil {
				pending++
				results <- attemptResult[O]{err: err, attempt: attempt, ep: ep}
				return
			}
		}
		if attempt > 1 && o != nil {
			obs.EmitHedgeLaunched(o, name, v.endpoints[ep].Name, req, attempt)
		}
		pending++
		go func() {
			start := time.Now()
			value, err := roundTrip[I, O](ctx, r.tp, v, ep, atc, input)
			latency := time.Since(start)
			if o != nil {
				obs.EmitRPCCompleted(o, name, v.endpoints[ep].Name, req, latency, err)
			}
			if brk != nil {
				brk.Record(tok, err)
			}
			results <- attemptResult[O]{value: value, err: err, attempt: attempt, ep: ep, latency: latency}
		}()
	}
	// finish closes the observed request: the lineage (attempts still in
	// flight are the cancelled losers), the adjudication verdict, and the
	// request span.
	finish := func(winner int, err error) {
		if o == nil {
			return
		}
		failureDetected := false
		for i := range lineage {
			a := &lineage[i]
			a.Won = a.Attempt == winner
			if !settled[i] {
				a.Cancelled = true
				a.Latency = time.Since(launches[i])
			} else if a.Err != nil {
				failureDetected = true
			}
			obs.EmitRPCAttempted(o, name, req, *a)
		}
		o.Adjudicated(name, req, err == nil, failureDetected)
		outcome := obs.OutcomeSuccess
		switch {
		case err != nil:
			outcome = obs.OutcomeFailed
		case failureDetected:
			outcome = obs.OutcomeMasked
		}
		o.RequestEnd(name, req, time.Since(start), outcome)
	}
	launchNext()

	// The hedge timer launches the next attempt when the in-flight ones
	// are slow; it is armed only while hedging is enabled and spare
	// endpoints and hedge budget remain.
	var (
		timer   *time.Timer
		timerC  <-chan time.Time
		hedges  int
		lastErr error
	)
	if hedgeAfter > 0 {
		timer = time.NewTimer(hedgeAfter)
		timerC = timer.C
		defer timer.Stop()
	}
	for pending > 0 {
		select {
		case <-timerC:
			if hedges < maxHedges && launched < len(order) {
				hedges++
				launchNext()
			}
			if hedges < maxHedges && launched < len(order) {
				timer.Reset(hedgeAfter)
			} else {
				timerC = nil
			}
		case res := <-results:
			pending--
			if o != nil {
				lineage[res.attempt-1].Latency = res.latency
				lineage[res.attempt-1].Err = res.err
				settled[res.attempt-1] = true
			}
			if ej != nil {
				ejSettled[res.attempt-1] = true
				if res.err == nil {
					ej.Observe(ejEndpoints[res.attempt-1], res.latency)
				}
			}
			if res.err == nil {
				if o != nil {
					obs.EmitHedgeWon(o, name, v.endpoints[res.ep].Name, req, res.attempt)
				}
				if ej != nil {
					for i := range ejSettled {
						if !ejSettled[i] {
							ej.ObserveCensored(ejEndpoints[i], time.Since(ejLaunches[i]))
						}
					}
				}
				finish(res.attempt, nil)
				cancelAll()
				return res.value, nil
			}
			lastErr = res.err
			if pending == 0 {
				if launched < len(order) && ctx.Err() == nil {
					launchNext() // failure-triggered failover, uncapped
				}
			}
		case <-ctx.Done():
			finish(0, ctx.Err())
			return zero, ctx.Err()
		}
	}
	err := fmt.Errorf("remote %s: %w: %w", name, core.ErrAllVariantsFailed, lastErr)
	finish(0, err)
	return zero, err
}

// ordered returns endpoint indexes (into the captured view) ranked for
// this request. The failure detector supplies the liveness class
// (alive before suspect before dead); the ejector then sinks ejected
// latency outliers below everything else — unless this decision grants
// one of them a trickle probe, which is promoted to primary — and
// finally picks the primary among the leading equal-class endpoints by
// power of two choices over the latency EWMAs. Without a detector or
// ejector the configured order stands.
func (r *Remote[I, O]) ordered(v *epSet) []int {
	order := make([]int, len(v.endpoints))
	for i := range order {
		order[i] = i
	}
	det, ej := r.cfg.Detector, r.cfg.Ejector
	if det == nil && ej == nil {
		return order
	}
	class := make([]int, len(order))
	if det != nil {
		for i := range order {
			class[i] = int(det.State(v.endpoints[i].Name))
		}
	}
	probe := -1
	epName := func(i int) string { return v.endpoints[i].Name }
	if ej != nil {
		probe = ej.route(len(order), epName, class)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return class[order[a]] < class[order[b]]
	})
	if probe >= 0 {
		// The probe leads; everyone else keeps rank order behind it, so
		// a hedge rescues the request if the probed endpoint is still
		// slow.
		for pos, epi := range order {
			if epi == probe {
				copy(order[1:pos+1], order[:pos])
				order[0] = probe
				break
			}
		}
	} else if ej != nil {
		ej.p2cFront(order, class, epName)
	}
	return order
}

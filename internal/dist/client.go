package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/resilience"
)

// Endpoint is one dialable replica address.
type Endpoint struct {
	// Name identifies the endpoint in observation events, breaker state,
	// and failure-detector membership. Required, unique per Remote.
	Name string
	// Dial opens a connection to the replica.
	Dial DialFunc
}

// RemoteConfig parameterizes a Remote variant. The zero value selects
// the documented defaults.
type RemoteConfig struct {
	// CallTimeout is the per-endpoint deadline bounding one RPC attempt
	// end to end (dial, send, receive). Default 1s.
	CallTimeout time.Duration
	// HedgeAfter enables hedged requests: when an attempt has not
	// answered within this duration, the request is fanned out to the
	// next-best endpoint without canceling the first — the classic
	// tail-latency defense. The first acceptable result wins and the
	// losers are canceled. Zero disables hedging; failover to the next
	// endpoint then happens only on failure.
	HedgeAfter time.Duration
	// MaxHedges caps how many extra attempts the hedge timer may launch
	// beyond the primary. Zero means "up to every configured endpoint".
	// (Failure-triggered failover is not capped: a finished attempt holds
	// no resources, so moving on costs nothing.)
	MaxHedges int
	// Breakers, if non-nil, gives each endpoint a circuit breaker:
	// endpoints whose breaker is open are skipped without dialing, and
	// every attempt outcome feeds the endpoint's breaker.
	Breakers *resilience.Breakers
	// Detector, if non-nil, ranks endpoints by liveness before each
	// request: alive before suspect before dead, so routing avoids
	// replicas that stopped acknowledging heartbeats.
	Detector *Detector
	// Observer receives RPCCompleted/HedgeLaunched/HedgeWon events under
	// the Remote's name; nil observes nothing.
	Observer obs.Observer
}

// defaultCallTimeout backstops configs that leave CallTimeout zero.
const defaultCallTimeout = time.Second

// ErrClientClosed reports a call on a closed Remote.
var ErrClientClosed = errors.New("dist: remote client closed")

// maxIdleConns bounds each endpoint's connection pool.
const maxIdleConns = 2

// Remote is a core.Variant whose Execute happens on the other side of
// the network: the input travels to a replica server as a framed RPC and
// the replica's result (or failure) travels back. Because it satisfies
// core.Variant, a Remote plugs unchanged into all four pattern
// executors — parallel evaluation, parallel selection, sequential
// alternatives, and Single — which is exactly the paper's process-
// replicas pattern with the replica boundary made real.
//
// A Remote with several endpoints is one logical replica service with
// failover: endpoints are tried in failure-detector order, a failed
// attempt falls through to the next endpoint, and with HedgeAfter set a
// slow attempt is raced against the next endpoint (first acceptable
// result wins, losers are canceled).
type Remote[I, O any] struct {
	name      string
	endpoints []Endpoint
	cfg       RemoteConfig
	pools     []*connPool
	ids       atomic.Uint64
	closed    atomic.Bool
	// traced caches obs.WantsTrace(cfg.Observer): span derivation and
	// lineage recording happen only when an attached observer records
	// traces (the envelope still forwards an inherited trace regardless,
	// so a traced caller's context reaches the replica server).
	traced bool
}

var _ core.Variant[int, int] = (*Remote[int, int])(nil)

// NewRemote builds a remote variant over one or more endpoints.
func NewRemote[I, O any](name string, cfg RemoteConfig, endpoints ...Endpoint) (*Remote[I, O], error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("dist: remote %q: %w", name, core.ErrNoVariants)
	}
	seen := make(map[string]bool, len(endpoints))
	for _, ep := range endpoints {
		if ep.Name == "" || ep.Dial == nil {
			return nil, fmt.Errorf("dist: remote %q: endpoint needs a name and a dialer", name)
		}
		if seen[ep.Name] {
			return nil, fmt.Errorf("dist: remote %q: duplicate endpoint %q", name, ep.Name)
		}
		seen[ep.Name] = true
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = defaultCallTimeout
	}
	if cfg.MaxHedges <= 0 || cfg.MaxHedges > len(endpoints)-1 {
		cfg.MaxHedges = len(endpoints) - 1
	}
	if cfg.Breakers != nil {
		cfg.Breakers.Bind("remote:"+name, cfg.Observer)
	}
	eps := make([]Endpoint, len(endpoints))
	copy(eps, endpoints)
	pools := make([]*connPool, len(eps))
	for i := range pools {
		pools[i] = newConnPool()
	}
	return &Remote[I, O]{
		name: name, endpoints: eps, cfg: cfg, pools: pools,
		traced: obs.WantsTrace(cfg.Observer),
	}, nil
}

// Name implements core.Variant.
func (r *Remote[I, O]) Name() string { return r.name }

// Close releases every pooled and in-flight connection; blocked calls
// unblock with a connection error. Idempotent.
func (r *Remote[I, O]) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	for _, p := range r.pools {
		p.close()
	}
	return nil
}

// attemptResult is one finished (or breaker-rejected) attempt.
type attemptResult[O any] struct {
	value   O
	err     error
	attempt int // 1-based launch order
	ep      int // index into the detector-ranked order
	latency time.Duration
}

// Execute implements core.Variant: the hedged, failure-detector-routed,
// breaker-guarded RPC fan-out. The first acceptable result wins; every
// other in-flight attempt is canceled promptly (its connection deadline
// is smashed, so blocked reads return).
//
// With an observer attached the fan-out is one observed request: a
// RequestStart/RequestEnd span under the Remote's name, an Adjudicated
// verdict (a hedge or failover that masked an attempt failure counts as
// a detected-and-masked fault), and — when the observer records traces —
// a span bound via RequestTraced plus one RPCAttempted lineage record
// per attempt, including losers and cancelled hedges. Each attempt's
// envelope carries a per-attempt child span so the replica server's
// request span joins the same causal trace.
func (r *Remote[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	if r.closed.Load() {
		return zero, ErrClientClosed
	}
	order := r.ordered()
	o := r.cfg.Observer
	var (
		req   uint64
		start time.Time
	)
	if o != nil {
		req = obs.NextRequestID()
		o.RequestStart(r.name, req)
		start = time.Now()
	}
	// The trace context the attempts fan out under: a fresh child span
	// when this client records traces, or the inherited context passed
	// through verbatim when only an upstream executor records them. Each
	// launched attempt derives its own child span for the wire.
	parent, hasParent := obs.TraceContextFrom(ctx)
	var rtc obs.TraceContext
	if r.traced {
		if hasParent {
			rtc = parent.Child()
		} else {
			rtc = obs.NewTraceContext()
		}
		obs.EmitRequestTraced(o, r.name, req, rtc)
	} else if hasParent {
		rtc = parent
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan attemptResult[O], len(order))
	launched, pending := 0, 0
	// Per-attempt lineage, maintained by the Execute goroutine only (the
	// attempt goroutines report through the results channel), so the
	// records can be emitted before the request span closes — after
	// RequestEnd a recorder has already committed the trace.
	var (
		lineage  []obs.RPCAttempt
		launches []time.Time
		settled  []bool
	)
	// launchNext starts the next attempt in ranked order. Breaker-open
	// endpoints complete instantly as failed attempts (without dialing),
	// so the loop below immediately moves past them.
	launchNext := func() {
		if launched >= len(order) {
			return
		}
		ep := order[launched]
		launched++
		attempt := launched
		var atc obs.TraceContext
		if rtc.Valid() {
			atc = rtc.Child()
		}
		if o != nil {
			lineage = append(lineage, obs.RPCAttempt{
				Endpoint: r.endpoints[ep].Name, Span: atc, Attempt: attempt,
			})
			launches = append(launches, time.Now())
			settled = append(settled, false)
		}
		var (
			brk *resilience.Breaker
			tok resilience.Token
		)
		if r.cfg.Breakers != nil {
			brk = r.cfg.Breakers.For(r.endpoints[ep].Name)
			var err error
			if tok, err = brk.Allow(); err != nil {
				pending++
				results <- attemptResult[O]{err: err, attempt: attempt, ep: ep}
				return
			}
		}
		if attempt > 1 && o != nil {
			obs.EmitHedgeLaunched(o, r.name, r.endpoints[ep].Name, req, attempt)
		}
		pending++
		go func() {
			start := time.Now()
			value, err := r.roundTrip(ctx, ep, atc, input)
			latency := time.Since(start)
			if o != nil {
				obs.EmitRPCCompleted(o, r.name, r.endpoints[ep].Name, req, latency, err)
			}
			if brk != nil {
				brk.Record(tok, err)
			}
			results <- attemptResult[O]{value: value, err: err, attempt: attempt, ep: ep, latency: latency}
		}()
	}
	// finish closes the observed request: the lineage (attempts still in
	// flight are the cancelled losers), the adjudication verdict, and the
	// request span.
	finish := func(winner int, err error) {
		if o == nil {
			return
		}
		failureDetected := false
		for i := range lineage {
			a := &lineage[i]
			a.Won = a.Attempt == winner
			if !settled[i] {
				a.Cancelled = true
				a.Latency = time.Since(launches[i])
			} else if a.Err != nil {
				failureDetected = true
			}
			obs.EmitRPCAttempted(o, r.name, req, *a)
		}
		o.Adjudicated(r.name, req, err == nil, failureDetected)
		outcome := obs.OutcomeSuccess
		switch {
		case err != nil:
			outcome = obs.OutcomeFailed
		case failureDetected:
			outcome = obs.OutcomeMasked
		}
		o.RequestEnd(r.name, req, time.Since(start), outcome)
	}
	launchNext()

	// The hedge timer launches the next attempt when the in-flight ones
	// are slow; it is armed only while hedging is enabled and spare
	// endpoints and hedge budget remain.
	var (
		timer   *time.Timer
		timerC  <-chan time.Time
		hedges  int
		lastErr error
	)
	if r.cfg.HedgeAfter > 0 {
		timer = time.NewTimer(r.cfg.HedgeAfter)
		timerC = timer.C
		defer timer.Stop()
	}
	for pending > 0 {
		select {
		case <-timerC:
			if hedges < r.cfg.MaxHedges && launched < len(order) {
				hedges++
				launchNext()
			}
			if hedges < r.cfg.MaxHedges && launched < len(order) {
				timer.Reset(r.cfg.HedgeAfter)
			} else {
				timerC = nil
			}
		case res := <-results:
			pending--
			if o != nil {
				lineage[res.attempt-1].Latency = res.latency
				lineage[res.attempt-1].Err = res.err
				settled[res.attempt-1] = true
			}
			if res.err == nil {
				if o != nil {
					obs.EmitHedgeWon(o, r.name, r.endpoints[res.ep].Name, req, res.attempt)
				}
				finish(res.attempt, nil)
				cancelAll()
				return res.value, nil
			}
			lastErr = res.err
			if pending == 0 {
				if launched < len(order) && ctx.Err() == nil {
					launchNext() // failure-triggered failover, uncapped
				}
			}
		case <-ctx.Done():
			finish(0, ctx.Err())
			return zero, ctx.Err()
		}
	}
	err := fmt.Errorf("remote %s: %w: %w", r.name, core.ErrAllVariantsFailed, lastErr)
	finish(0, err)
	return zero, err
}

// ordered returns endpoint indexes ranked by the failure detector:
// alive before suspect before dead, stable within a class. Without a
// detector the configured order stands.
func (r *Remote[I, O]) ordered() []int {
	order := make([]int, len(r.endpoints))
	for i := range order {
		order[i] = i
	}
	if r.cfg.Detector == nil {
		return order
	}
	rank := make([]obs.ReplicaState, len(order))
	for i := range order {
		rank[i] = r.cfg.Detector.State(r.endpoints[i].Name)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rank[order[a]] < rank[order[b]]
	})
	return order
}

// roundTrip performs one RPC attempt against one endpoint: pooled
// connection (or fresh dial), framed call out, framed reply in, all
// under the per-endpoint deadline. The attempt span tc (zero when
// untraced) rides the envelope so the replica continues the trace.
// Context cancellation — the hedge winner canceling losers, or the
// caller giving up — smashes the connection deadline so a blocked read
// returns promptly.
func (r *Remote[I, O]) roundTrip(ctx context.Context, ep int, tc obs.TraceContext, input I) (out O, err error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.CallTimeout)
	defer cancel()
	conn, err := r.pools[ep].get(ctx, r.endpoints[ep].Dial)
	if err != nil {
		return out, err
	}
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0)) // the distant past: unblock I/O now
	})
	reusable := false
	defer func() {
		if !stop() {
			// The canceler ran (or is running): the deadline may be
			// smashed, so the connection cannot be trusted for reuse.
			r.pools[ep].drop(conn)
			return
		}
		if reusable {
			conn.SetDeadline(time.Time{})
			r.pools[ep].put(conn)
		} else {
			r.pools[ep].drop(conn)
		}
	}()
	if d, ok := ctx.Deadline(); ok {
		conn.SetDeadline(d)
	}
	env := &envelope{ID: r.ids.Add(1), Kind: kindCall, TraceID: tc.TraceID, SpanID: tc.SpanID}
	if env.Payload, err = encodeValue(input); err != nil {
		return out, err
	}
	frame, err := encodeEnvelope(env)
	if err != nil {
		return out, err
	}
	if err := writeFrame(conn, frame); err != nil {
		return out, fmt.Errorf("dist: %s: send: %w", r.endpoints[ep].Name, err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		return out, fmt.Errorf("dist: %s: recv: %w", r.endpoints[ep].Name, err)
	}
	reply, err := decodeEnvelope(payload)
	if err != nil {
		return out, err
	}
	if reply.Kind != kindReply || reply.ID != env.ID {
		return out, fmt.Errorf("%w: unexpected reply kind %d id %d", ErrBadFrame, reply.Kind, reply.ID)
	}
	if reply.Err != "" {
		// An in-band failure: the variant on the far side failed, but the
		// connection itself completed a clean round trip and stays usable.
		reusable = true
		return out, fmt.Errorf("dist: %s: %w: %s", r.endpoints[ep].Name, ErrRemote, reply.Err)
	}
	if err := decodeValue(reply.Payload, &out); err != nil {
		return out, err
	}
	reusable = true
	return out, nil
}

// connPool is one endpoint's connection pool. It tracks every live
// connection it handed out — pooled and in-flight alike — so closing
// the pool unblocks calls stuck on a partitioned network.
type connPool struct {
	mu     sync.Mutex
	free   []net.Conn
	all    map[net.Conn]struct{}
	closed bool
}

func newConnPool() *connPool {
	return &connPool{all: make(map[net.Conn]struct{})}
}

// get pops an idle connection or dials a fresh one.
func (p *connPool) get(ctx context.Context, dial DialFunc) (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrClientClosed
	}
	p.all[c] = struct{}{}
	p.mu.Unlock()
	return c, nil
}

// put returns a healthy connection to the idle list (or closes it when
// the pool is full or closed).
func (p *connPool) put(c net.Conn) {
	p.mu.Lock()
	if p.closed || len(p.free) >= maxIdleConns {
		delete(p.all, c)
		p.mu.Unlock()
		c.Close()
		return
	}
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// drop discards a connection that must not be reused.
func (p *connPool) drop(c net.Conn) {
	p.mu.Lock()
	delete(p.all, c)
	for i, f := range p.free {
		if f == c {
			p.free = append(p.free[:i], p.free[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	c.Close()
}

// close closes every tracked connection; subsequent gets fail fast.
func (p *connPool) close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.all))
	for c := range p.all {
		conns = append(conns, c)
	}
	p.all = make(map[net.Conn]struct{})
	p.free = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

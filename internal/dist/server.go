package dist

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/supervise"
)

// ServerConfig parameterizes a replica server. The zero value selects
// the documented defaults.
type ServerConfig struct {
	// Name identifies the replica in observation events and supervision
	// trees; empty means the variant's name.
	Name string
	// CallTimeout bounds one variant execution on the server side, so a
	// wedged variant cannot pin a connection handler forever. Zero means
	// 30 seconds.
	CallTimeout time.Duration
	// Observer receives request/variant spans for served calls under the
	// executor name "replica:<name>"; nil observes nothing.
	Observer obs.Observer
}

// defaultServerCallTimeout backstops servers whose config leaves
// CallTimeout zero.
const defaultServerCallTimeout = 30 * time.Second

// Server exposes one core.Variant as a remote replica: it accepts
// framed connections from a net.Listener and answers calls by executing
// the variant (panic-contained via core.Guard) and pings by echoing a
// pong, which is what the failure detector's heartbeats measure.
//
// Connections are handled serially — one in-flight request per
// connection — matching the client's pooled one-round-trip-at-a-time
// discipline; concurrency comes from concurrent connections.
type Server[I, O any] struct {
	variant core.Variant[I, O]
	ln      net.Listener
	cfg     ServerConfig
	// traced caches obs.WantsTrace(cfg.Observer): server-side spans join
	// the wire trace only when an attached observer records traces.
	traced bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	cancel context.CancelFunc
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps variant as a replica served from ln.
func NewServer[I, O any](variant core.Variant[I, O], ln net.Listener, cfg ServerConfig) *Server[I, O] {
	if cfg.Name == "" {
		cfg.Name = variant.Name()
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = defaultServerCallTimeout
	}
	return &Server[I, O]{
		variant: variant,
		ln:      ln,
		cfg:     cfg,
		traced:  obs.WantsTrace(cfg.Observer),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Name returns the replica's name.
func (s *Server[I, O]) Name() string { return s.cfg.Name }

// Addr returns the listener's address.
func (s *Server[I, O]) Addr() net.Addr { return s.ln.Addr() }

// Serve runs the accept loop until the context is canceled or the
// server is closed, then waits for all connection handlers to drain.
// A clean shutdown returns nil; an unexpected accept error is returned
// as the failure (the supervision story: a supervisor restarts the
// accept loop via AsChild).
func (s *Server[I, O]) Serve(ctx context.Context) error {
	// In-flight variant executions run under this context so shutdown can
	// cancel them; otherwise Close would block on CallTimeout for every
	// wedged call.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.mu.Lock()
	s.cancel = cancel
	s.mu.Unlock()
	stop := context.AfterFunc(ctx, s.shutdown)
	defer stop()
	var failure error
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.isClosed() && !errors.Is(err, net.ErrClosed) {
				failure = err
				s.shutdown()
			}
			break
		}
		if !s.track(conn) {
			conn.Close()
			break
		}
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(ctx, conn)
		}()
	}
	s.wg.Wait()
	if failure != nil {
		return failure
	}
	return nil
}

// Close shuts the server down — listener and all live connections — and
// waits for the handlers to finish. Idempotent.
func (s *Server[I, O]) Close() error {
	s.shutdown()
	s.wg.Wait()
	return nil
}

// AsChild adapts the server into a supervise.ChildSpec so the accept
// loop runs under a supervision tree: a crashed accept loop is a child
// failure the supervisor restarts (the listener itself survives — only
// the loop is re-entered).
func (s *Server[I, O]) AsChild() supervise.ChildSpec {
	return supervise.ChildSpec{
		Name:    "replica-" + s.cfg.Name,
		Restart: supervise.Transient,
		Run:     s.Serve,
	}
}

// shutdown closes the listener and every live connection without
// waiting for handlers; Serve and Close wait.
func (s *Server[I, O]) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	cancel := s.cancel
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	if cancel != nil {
		cancel()
	}
}

// isClosed reports whether shutdown has run.
func (s *Server[I, O]) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// track registers a live connection and reserves a slot in the handler
// wait group; false means the server is closed. The wg.Add happens under
// the same lock that shutdown uses to set closed, so no Add can race a
// Wait that follows shutdown.
func (s *Server[I, O]) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

// untrack removes and closes a finished connection.
func (s *Server[I, O]) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// handle serves one connection: framed envelopes in, framed envelopes
// out, until the peer hangs up or the stream corrupts.
func (s *Server[I, O]) handle(ctx context.Context, conn net.Conn) {
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // EOF, closed, or corrupt stream: abandon the connection
		}
		env, err := decodeEnvelope(payload)
		if err != nil {
			return
		}
		var reply envelope
		switch env.Kind {
		case kindPing:
			reply = envelope{ID: env.ID, Kind: kindPong}
		case kindCall:
			reply = s.call(ctx, env)
		default:
			return // protocol violation
		}
		out, err := encodeEnvelope(&reply)
		if err != nil {
			return
		}
		if err := writeFrame(conn, out); err != nil {
			return
		}
	}
}

// call executes the variant for one request envelope. Failures —
// decode errors, variant errors, contained panics — travel back as the
// error string of the reply; the server connection survives them.
//
// With an observer attached each served call is one observed request
// under "replica:<name>" — request span, variant span, adjudication —
// and when the observer records traces the request span continues the
// trace carried by the envelope (its parent is the client attempt span
// that sent the call), so the per-process trace exports assemble into
// one causal tree.
func (s *Server[I, O]) call(ctx context.Context, env *envelope) envelope {
	reply := envelope{ID: env.ID, Kind: kindReply}
	var input I
	if err := decodeValue(env.Payload, &input); err != nil {
		reply.Err = err.Error()
		return reply
	}
	callCtx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()
	executor := "replica:" + s.cfg.Name
	o := s.cfg.Observer
	var req uint64
	if o != nil {
		req = obs.NextRequestID()
		o.RequestStart(executor, req)
		if s.traced {
			stc := obs.ContinueTrace(env.TraceID, env.SpanID)
			callCtx = obs.WithTraceContext(callCtx, stc)
			obs.EmitRequestTraced(o, executor, req, stc)
		}
		o.VariantStart(executor, s.variant.Name(), req)
	}
	start := time.Now()
	value, err := core.Guard(s.variant).Execute(callCtx, input)
	if o != nil {
		latency := time.Since(start)
		o.VariantEnd(executor, s.variant.Name(), req, latency, err)
		o.Adjudicated(executor, req, err == nil, err != nil)
		outcome := obs.OutcomeSuccess
		if err != nil {
			outcome = obs.OutcomeFailed
		}
		o.RequestEnd(executor, req, latency, outcome)
	}
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	payload, err := encodeValue(value)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	reply.Payload = payload
	return reply
}

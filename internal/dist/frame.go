// Package dist moves the replica boundary from a function call to a
// real, faulty network: it exposes any core.Variant as a remote replica
// server behind a length-prefixed, CRC-framed RPC transport, and gives
// clients a Remote variant that plugs unchanged into every pattern
// executor — with per-endpoint deadlines, circuit-breaker integration,
// hedged requests against tail latency, and a heartbeat failure detector
// whose alive/suspect/dead membership steers routing away from
// partitioned replicas.
//
// In the paper's taxonomy this is the *process replicas* technique
// (Table 2: deliberate redundancy in the environment dimension,
// reactive-implicit adjudication) made honest: the replicas live on the
// other side of a transport that drops, delays, duplicates, reorders and
// partitions (internal/faultmodel's NetworkCampaign injects exactly
// those), so the redundancy mechanisms are exercised against the failure
// modes that motivate them. The transport is deliberately minimal — one
// request per connection round trip over pooled connections — so its
// behavior under fault injection stays analyzable.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout: a fixed 9-byte header — 1-byte wire version, 4-byte
// big-endian payload length, 4-byte IEEE CRC32 of the payload —
// followed by the payload. The CRC turns injected corruption (and torn
// or reordered byte streams) into a detected connection-level failure
// instead of a silently wrong result, the same discipline as the
// checkpoint WAL's record framing. The version byte rejects peers
// speaking an incompatible envelope schema (version 2 added in-band
// trace propagation) with a typed error instead of a gob decode error
// deep in the payload.
const frameHeaderSize = 9

// frameVersion is the current wire version. History:
//
//	1 — unversioned 8-byte header (length + CRC only)
//	2 — version byte added; envelope carries TraceID/SpanID
const frameVersion = 2

// MaxFrameSize bounds one frame's payload so a corrupt or hostile length
// prefix cannot make a reader allocate without bound.
const MaxFrameSize = 16 << 20

// Sentinel errors of the transport layer.
var (
	// ErrBadFrame reports a frame whose CRC or length prefix is invalid:
	// the byte stream is corrupt and the connection must be abandoned.
	ErrBadFrame = errors.New("dist: corrupt frame")
	// ErrFrameTooLarge reports a frame exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("dist: frame exceeds size limit")
	// ErrVersionMismatch reports a frame whose wire version differs from
	// this build's: the peer speaks an incompatible envelope schema and
	// the connection must be abandoned.
	ErrVersionMismatch = errors.New("dist: frame version mismatch")
)

// writeFrame writes one CRC-framed payload. A short write leaves the
// stream unusable; callers abandon the connection on any error.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	hdr := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	hdr[0] = frameVersion
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	// One Write call per frame: the fault injector's per-write loss,
	// duplication and reordering then operate on whole frames, which is
	// what makes CRC detection (rather than resynchronization) the right
	// recovery.
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one CRC-framed payload, validating version, length
// and checksum. It returns ErrVersionMismatch or ErrBadFrame (wrapped)
// on incompatible or corrupt frames; io errors pass through for the
// caller to classify.
func readFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != frameVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersionMismatch, hdr[0], frameVersion)
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: length prefix %d", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[5:9]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	return payload, nil
}

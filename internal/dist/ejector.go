package dist

// Ejector is the gray-failure defense: per-endpoint latency EWMAs fed
// from the attempt latencies the Remote client already measures,
// peer-relative outlier ejection, power-of-two-choices latency-aware
// routing, and probation with trickle probes and slow-start
// reinstatement.
//
// The problem it solves is invisible to every other defense in the
// repo: a fail-slow ("gray") replica answers heartbeats on time, so
// the failure detector's miss track never fires; it answers
// *correctly*, so quorum voting files no accusations; its breaker
// sees no errors. Only the latency profile of real requests carries
// the signal. The ejector turns that profile into membership
// decisions the rest of the stack understands — it files reversible
// slowness evidence with the Detector, so ranking, the stats table,
// and the control plane's GrayFailurePolicy all see the same verdict.
//
// Ejection is peer-relative (an endpoint is an outlier against the
// fleet median, not an absolute threshold), reversible (ejected
// endpoints get trickle probes and are reinstated after sustained
// recovery), and capped (the non-ejected set never shrinks below
// MinKeep — a defense must not turn one slow replica into an outage).

import (
	"sort"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// EjectorConfig parameterizes latency-outlier ejection. The zero value
// selects the documented defaults.
type EjectorConfig struct {
	// Name labels the ejector in observation events; empty means
	// "ejector".
	Name string
	// Alpha is the EWMA smoothing factor in (0, 1]: higher weighs the
	// newest sample more. Default 0.3.
	Alpha float64
	// Threshold is the peer-relative ejection multiplier k: an endpoint
	// is ejected when its EWMA exceeds k× the median EWMA of the
	// non-ejected fleet. Default 3.
	Threshold float64
	// ReinstateBelow is the recovery multiplier: a probe counts as good
	// when its latency is at or below ReinstateBelow× the fleet median.
	// Kept well under Threshold so ejection and reinstatement have a
	// hysteresis band between them. Default Threshold/2.
	ReinstateBelow float64
	// MinSamples is how many samples an endpoint needs before it can be
	// ejected — one slow response is an anecdote, not an outlier.
	// Default 5.
	MinSamples int
	// MinKeep is the ejection floor: an ejection that would leave fewer
	// than MinKeep endpoints in rotation is skipped, however slow the
	// outlier. Default 1.
	MinKeep int
	// ProbeEvery is the probation trickle rate: roughly one of every
	// ProbeEvery routing decisions that would have skipped an ejected
	// endpoint routes to it instead, as a probe. Hedging bounds the
	// probe's cost if the endpoint is still slow. Default 32.
	ProbeEvery int
	// ReinstateAfter is how many consecutive good probes restore an
	// ejected endpoint to rotation. Default 3.
	ReinstateAfter int
	// ExploreEvery is the P2C exploration rate: one of every
	// ExploreEvery picks routes to the sampled pair's *worse*-looking
	// endpoint. Without it a slow-looking (but not yet ejected)
	// endpoint loses every comparison, stops receiving traffic, and so
	// never accumulates the samples ejection — or exoneration — needs.
	// Default 16.
	ExploreEvery int
	// Seed drives the power-of-two-choices sampling; campaigns share
	// theirs so routing replays deterministically.
	Seed uint64
	// Detector, if non-nil, receives the ejector's verdicts as slowness
	// evidence: ReportSlow on ejection and on every failed probe,
	// ClearSlow on reinstatement. This is what routes persistent
	// limping into the control plane.
	Detector *Detector
	// Observer receives ReplicaEjected/ProbeLaunched/ReplicaReinstated
	// events under Name; nil observes nothing.
	Observer obs.Observer
}

func (c EjectorConfig) withDefaults() EjectorConfig {
	if c.Name == "" {
		c.Name = "ejector"
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Threshold <= 1 {
		c.Threshold = 3
	}
	if c.ReinstateBelow <= 0 {
		c.ReinstateBelow = c.Threshold / 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.MinKeep <= 0 {
		c.MinKeep = 1
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 32
	}
	if c.ReinstateAfter <= 0 {
		c.ReinstateAfter = 3
	}
	if c.ExploreEvery <= 0 {
		c.ExploreEvery = 16
	}
	return c
}

// epLatency is the ejector's state for one endpoint.
type epLatency struct {
	ewma       float64 // smoothed attempt latency, nanoseconds
	samples    int
	ejected    bool
	ejections  int // lifetime ejection count (ground-truth scoring)
	goodProbes int // consecutive fast probes this probation
	probeTick  int // routing decisions skipped while ejected
}

// EndpointLatency is a point-in-time copy of one endpoint's ejector
// state — the per-endpoint latency snapshot reports print.
type EndpointLatency struct {
	Endpoint   string        `json:"endpoint"`
	EWMA       time.Duration `json:"ewma"`
	Samples    int           `json:"samples"`
	Ejected    bool          `json:"ejected,omitempty"`
	Ejections  int           `json:"ejections,omitempty"`
	GoodProbes int           `json:"good_probes,omitempty"`
}

// Ejector tracks per-endpoint latency EWMAs and decides which
// endpoints are latency outliers. Attach one to a Remote via
// RemoteConfig.Ejector; the client feeds it every attempt outcome and
// consults it on every routing decision. Safe for concurrent use.
type Ejector struct {
	cfg EjectorConfig

	mu          sync.Mutex
	eps         map[string]*epLatency
	rng         *xrand.Rand
	exploreTick int

	ejections      int
	reinstatements int
}

// NewEjector returns an ejector with no observations yet.
func NewEjector(cfg EjectorConfig) *Ejector {
	cfg = cfg.withDefaults()
	return &Ejector{cfg: cfg, eps: make(map[string]*epLatency), rng: xrand.New(cfg.Seed)}
}

// ep resolves (creating on first use) an endpoint's state. Caller
// holds mu.
func (e *Ejector) ep(name string) *epLatency {
	p, ok := e.eps[name]
	if !ok {
		p = &epLatency{}
		e.eps[name] = p
	}
	return p
}

// medianLocked returns the median EWMA over the non-ejected fleet, or
// 0 when nothing has been observed. Caller holds mu.
func (e *Ejector) medianLocked() float64 {
	vals := make([]float64, 0, len(e.eps))
	for _, p := range e.eps {
		if !p.ejected && p.samples > 0 {
			vals = append(vals, p.ewma)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 0 {
		return (vals[mid-1] + vals[mid]) / 2
	}
	return vals[mid]
}

// update folds one latency sample into an endpoint's EWMA. Caller
// holds mu.
func (e *Ejector) update(p *epLatency, x float64) {
	if p.samples == 0 {
		p.ewma = x
	} else {
		p.ewma = e.cfg.Alpha*x + (1-e.cfg.Alpha)*p.ewma
	}
	p.samples++
}

// Observe feeds one completed attempt's measured latency. For an
// endpoint in rotation this is the ejection evidence stream; for an
// ejected endpoint it is a probe outcome — fast enough counts toward
// reinstatement, slow resets probation and files slowness evidence.
func (e *Ejector) Observe(endpoint string, latency time.Duration) {
	e.mu.Lock()
	p := e.ep(endpoint)
	e.update(p, float64(latency))
	if p.ejected {
		med := e.medianLocked()
		if med > 0 && float64(latency) <= e.cfg.ReinstateBelow*med {
			p.goodProbes++
			if p.goodProbes >= e.cfg.ReinstateAfter {
				probes := p.goodProbes
				p.ejected = false
				p.goodProbes = 0
				// Slow-start re-entry: the stale limping EWMA would
				// either shadow the endpoint from P2C for ages or
				// re-trigger ejection on the next median shift;
				// restart it at the fleet median and let fresh
				// samples earn back (or lose) full weight.
				p.ewma = med
				e.reinstatements++
				e.mu.Unlock()
				if e.cfg.Detector != nil {
					e.cfg.Detector.ClearSlow(endpoint)
				}
				if e.cfg.Observer != nil {
					obs.EmitReplicaReinstated(e.cfg.Observer, e.cfg.Name, endpoint, probes)
				}
				return
			}
			e.mu.Unlock()
			return
		}
		p.goodProbes = 0
		e.mu.Unlock()
		if e.cfg.Detector != nil {
			e.cfg.Detector.ReportSlow(endpoint)
		}
		return
	}
	e.maybeEject(endpoint, p)
}

// ObserveCensored feeds an abandoned attempt: the request was settled
// by another endpoint (a hedge won) while this one was still in
// flight after elapsed time. The true latency is unknown but at least
// elapsed, so the sample only ever pushes the EWMA up — without it a
// limper that loses every hedge race would never accumulate evidence,
// because its attempts never complete. For an ejected endpoint a
// censored probe is proof it is still slow.
func (e *Ejector) ObserveCensored(endpoint string, elapsed time.Duration) {
	e.mu.Lock()
	p := e.ep(endpoint)
	if float64(elapsed) <= p.ewma && p.samples > 0 {
		// A quickly-canceled attempt says nothing: it was abandoned
		// before it could prove itself slow or fast.
		e.mu.Unlock()
		return
	}
	e.update(p, float64(elapsed))
	if p.ejected {
		p.goodProbes = 0
		e.mu.Unlock()
		if e.cfg.Detector != nil {
			e.cfg.Detector.ReportSlow(endpoint)
		}
		return
	}
	e.maybeEject(endpoint, p)
}

// maybeEject applies the ejection rule to one endpoint. Caller holds
// mu; the lock is released before detector/observer callbacks.
func (e *Ejector) maybeEject(endpoint string, p *epLatency) {
	if p.samples < e.cfg.MinSamples {
		e.mu.Unlock()
		return
	}
	med := e.medianLocked()
	if med <= 0 || p.ewma <= e.cfg.Threshold*med {
		e.mu.Unlock()
		return
	}
	// The floor: ejection may never leave the rotation thinner than
	// MinKeep, no matter how slow the outlier is.
	inRotation := 0
	for _, q := range e.eps {
		if !q.ejected {
			inRotation++
		}
	}
	if inRotation-1 < e.cfg.MinKeep {
		e.mu.Unlock()
		return
	}
	p.ejected = true
	p.ejections++
	p.goodProbes = 0
	p.probeTick = 0
	e.ejections++
	ewma := time.Duration(p.ewma)
	e.mu.Unlock()
	if e.cfg.Detector != nil {
		e.cfg.Detector.ReportSlow(endpoint)
	}
	if e.cfg.Observer != nil {
		obs.EmitReplicaEjected(e.cfg.Observer, e.cfg.Name, endpoint, ewma, time.Duration(med))
	}
}

// ejectPenalty pushes ejected endpoints' routing class below every
// detector state (alive=0, suspect=1, dead=2), so they are only dialed
// when everything healthier has failed.
const ejectPenalty = 16

// route applies ejection to one routing decision: class[i] (the
// detector-derived rank the client sorts by) is penalized for ejected
// endpoints, except that roughly one in ProbeEvery decisions grants
// one ejected endpoint a trickle probe instead — the caller promotes
// that endpoint to primary so its recovery can be observed. Returns
// the probe's index, or -1.
func (e *Ejector) route(n int, name func(int) string, class []int) int {
	probe := -1
	e.mu.Lock()
	for i := 0; i < n; i++ {
		p, ok := e.eps[name(i)]
		if !ok || !p.ejected {
			continue
		}
		if probe < 0 {
			p.probeTick++
			if p.probeTick%e.cfg.ProbeEvery == 0 {
				probe = i
				continue
			}
		}
		class[i] += ejectPenalty
	}
	e.mu.Unlock()
	if probe >= 0 && e.cfg.Observer != nil {
		obs.EmitProbeLaunched(e.cfg.Observer, e.cfg.Name, name(probe))
	}
	return probe
}

// p2cFront applies power of two choices to a class-sorted order: two
// members of the leading equal-class run are sampled from the seeded
// stream and the one with the lower latency EWMA becomes the primary.
// Sampling two — rather than ranking everyone — is the classic
// load-balancing trick: it avoids the herd behavior of always picking
// the single best-looking endpoint while still preferring fast ones,
// and it costs O(1) per request. An unobserved endpoint counts as
// fast, so new endpoints get explored; every ExploreEvery-th pick the
// comparison inverts, so a slow-looking endpoint still gets a trickle
// of traffic — the evidence stream ejection (or exoneration) rides on.
func (e *Ejector) p2cFront(order []int, class []int, name func(int) string) {
	run := 1
	for run < len(order) && class[order[run]] == class[order[0]] {
		run++
	}
	if run < 2 {
		return
	}
	e.mu.Lock()
	i := e.rng.Intn(run)
	j := e.rng.Intn(run - 1)
	if j >= i {
		j++
	}
	var ei, ej float64
	if p, ok := e.eps[name(order[i])]; ok {
		ei = p.ewma
	}
	if p, ok := e.eps[name(order[j])]; ok {
		ej = p.ewma
	}
	e.exploreTick++
	explore := e.exploreTick%e.cfg.ExploreEvery == 0
	e.mu.Unlock()
	win := i
	if explore {
		if ej > ei {
			win = j
		}
	} else if ej < ei {
		win = j
	}
	if win != 0 {
		order[0], order[win] = order[win], order[0]
	}
}

// Ejected reports whether an endpoint is currently out of rotation.
func (e *Ejector) Ejected(endpoint string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.eps[endpoint]
	return ok && p.ejected
}

// Ejections returns how many ejections have happened in total.
func (e *Ejector) Ejections() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ejections
}

// Reinstatements returns how many probations ended in reinstatement.
func (e *Ejector) Reinstatements() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reinstatements
}

// Snapshot returns a copy of every endpoint's latency state, sorted by
// endpoint name.
func (e *Ejector) Snapshot() []EndpointLatency {
	e.mu.Lock()
	out := make([]EndpointLatency, 0, len(e.eps))
	for name, p := range e.eps {
		out = append(out, EndpointLatency{
			Endpoint:   name,
			EWMA:       time.Duration(p.ewma),
			Samples:    p.samples,
			Ejected:    p.ejected,
			Ejections:  p.ejections,
			GoodProbes: p.goodProbes,
		})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

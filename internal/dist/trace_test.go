// Causal trace propagation over the wire: the client's request span,
// per-attempt envelope spans, and the replica servers' continued spans
// must form one trace, with hedge winners and cancelled losers marked in
// the client's lineage. Run with -race: the lineage is maintained by the
// Execute goroutine while attempts race across goroutines.
package dist

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
)

// startTracedReplica is startReplica with a per-replica trace recorder,
// simulating a separate process exporting its own trace file.
func startTracedReplica(t *testing.T, network *PipeNetwork, name string, v core.Variant[int, int]) *obs.TraceRecorder {
	t.Helper()
	ln, err := network.Listen(name)
	if err != nil {
		t.Fatalf("Listen(%q): %v", name, err)
	}
	rec := obs.NewTraceRecorder(64)
	srv := NewServer(v, ln, ServerConfig{Name: name, Observer: rec})
	go srv.Serve(context.Background())
	t.Cleanup(func() { srv.Close() })
	return rec
}

func TestTracePropagatesThroughHedging(t *testing.T) {
	before := runtime.NumGoroutine()
	network := NewPipeNetwork()
	release := make(chan struct{})
	slowRec := startTracedReplica(t, network, "slow", core.NewVariant("slow",
		func(ctx context.Context, x int) (int, error) {
			select {
			case <-release:
				return x, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}))
	fastRec := startTracedReplica(t, network, "fast", double())
	// On early Fatalf the cleanup's server Close cancels the serve
	// context, which unblocks the slow variant — release is closed on the
	// success path only, before the leak check.

	clientRec := obs.NewTraceRecorder(64)
	collector := obs.NewCollector()
	remote, err := NewRemote[int, int]("hedger", RemoteConfig{
		CallTimeout: 5 * time.Second,
		HedgeAfter:  10 * time.Millisecond,
		Observer:    obs.Combine(collector, clientRec),
	},
		Endpoint{Name: "slow", Dial: network.Dial("slow")},
		Endpoint{Name: "fast", Dial: network.Dial("fast")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()

	// An upstream trace: the client's request span must be its child.
	ctx, caller := obs.StartTrace(context.Background())
	got, err := remote.Execute(ctx, 7)
	if err != nil {
		t.Fatalf("hedged Execute: %v", err)
	}
	if got != 14 {
		t.Fatalf("hedged Execute: got %d want 14 (the hedge's answer)", got)
	}

	// Client side: one trace, child of the caller span, with a full hedge
	// lineage — a cancelled loser on "slow", a winner on "fast".
	ctraces := clientRec.Snapshot()
	if len(ctraces) != 1 {
		t.Fatalf("client recorded %d traces, want 1", len(ctraces))
	}
	ct := ctraces[0]
	if ct.TraceID != caller.TraceID || ct.ParentSpanID != caller.SpanID {
		t.Fatalf("client span (trace %d parent %d) not a child of caller %+v",
			ct.TraceID, ct.ParentSpanID, caller)
	}
	if len(ct.Attempts) != 2 {
		t.Fatalf("client lineage has %d attempts, want 2: %+v", len(ct.Attempts), ct.Attempts)
	}
	var winner, loser *obs.AttemptSpan
	for i := range ct.Attempts {
		if ct.Attempts[i].Won {
			winner = &ct.Attempts[i]
		} else {
			loser = &ct.Attempts[i]
		}
	}
	if winner == nil || loser == nil {
		t.Fatalf("lineage lacks a winner and a loser: %+v", ct.Attempts)
	}
	if winner.Endpoint != "fast" {
		t.Fatalf("winner = %q, want the hedge endpoint \"fast\"", winner.Endpoint)
	}
	if !loser.Cancelled {
		t.Fatalf("losing attempt not marked cancelled: %+v", loser)
	}
	if winner.SpanID == 0 || loser.SpanID == 0 {
		t.Fatalf("attempt spans not stamped: %+v", ct.Attempts)
	}

	// Server side: the winning replica's span shares the client TraceID
	// and names the winning attempt span as its parent. (The cancelled
	// loser's server may or may not commit a trace depending on timing;
	// the winner must.)
	deadline := time.Now().Add(2 * time.Second)
	var st *obs.Trace
	for time.Now().Before(deadline) {
		straces := fastRec.Snapshot()
		if len(straces) > 0 {
			st = &straces[0]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st == nil {
		t.Fatal("winning replica recorded no trace")
	}
	if st.TraceID != caller.TraceID {
		t.Fatalf("server TraceID %d, want client trace %d", st.TraceID, caller.TraceID)
	}
	if st.ParentSpanID != winner.SpanID {
		t.Fatalf("server parent span %d, want winning attempt span %d", st.ParentSpanID, winner.SpanID)
	}
	if st.Executor != "replica:fast" {
		t.Fatalf("server executor %q", st.Executor)
	}
	_ = slowRec

	// Hedge attribution seen by the collector matches the lineage.
	for _, s := range collector.Snapshot() {
		if s.Executor == "hedger" && (s.Hedges == 0 || s.HedgeWins == 0) {
			t.Fatalf("collector missed the hedge: %+v", s)
		}
	}

	// No goroutines may outlive the hedged call (the cancelled loser's
	// goroutine must unblock via the smashed deadline). The two replica
	// accept loops remain by design — the tolerance covers them.
	close(release)
	remote.Close()
	leakDeadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestUntracedClientForwardsCallerTrace(t *testing.T) {
	// A client with no trace-recording observer still forwards an
	// inherited trace context on the wire, so a traced replica joins the
	// caller's trace.
	network := NewPipeNetwork()
	rec := startTracedReplica(t, network, "r1", double())
	remote, err := NewRemote[int, int]("fwd", RemoteConfig{Observer: obs.NewCollector()},
		Endpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	ctx, caller := obs.StartTrace(context.Background())
	if _, err := remote.Execute(ctx, 1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if traces := rec.Snapshot(); len(traces) > 0 {
			if traces[0].TraceID != caller.TraceID {
				t.Fatalf("replica trace %d, want caller trace %d", traces[0].TraceID, caller.TraceID)
			}
			if traces[0].ParentSpanID == 0 {
				t.Fatal("replica span has no parent attempt span")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("replica recorded no trace")
}

func TestUntracedCallStaysUntraced(t *testing.T) {
	// No trace anywhere: the envelope carries zero trace fields and the
	// traced server starts a fresh root rather than inventing a parent.
	network := NewPipeNetwork()
	rec := startTracedReplica(t, network, "r1", double())
	remote, err := NewRemote[int, int]("plain", RemoteConfig{},
		Endpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer remote.Close()
	if _, err := remote.Execute(context.Background(), 1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if traces := rec.Snapshot(); len(traces) > 0 {
			if traces[0].ParentSpanID != 0 {
				t.Fatalf("untraced call produced parent span %d", traces[0].ParentSpanID)
			}
			if traces[0].TraceID == 0 {
				t.Fatal("traced server did not open a root trace")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("replica recorded no trace")
}

package dist

// Quorum client tests: construction-time 2k+1 enforcement, majority
// verdicts over the pipe network, outvoted-liar accusation flow into the
// detector, straggler cancellation after an early verdict, and the
// no-verdict error path. Run with -race: every call fans n concurrent
// round trips.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// intEq is the agreement relation used throughout.
func intEq(a, b int) bool { return a == b }

// startQuorumFleet serves n replicas named r1..rn and returns their
// endpoints. Variants come from mk(i) (0-based).
func startQuorumFleet(t *testing.T, network *PipeNetwork, n int, mk func(i int) core.Variant[int, int]) []Endpoint {
	t.Helper()
	endpoints := make([]Endpoint, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i+1)
		startReplica(t, network, name, mk(i))
		endpoints[i] = Endpoint{Name: name, Dial: network.Dial(name)}
	}
	return endpoints
}

func TestNewQuorumValidation(t *testing.T) {
	network := NewPipeNetwork()
	eps := startQuorumFleet(t, network, 3, func(int) core.Variant[int, int] { return double() })
	adj := vote.Majority[int](intEq)

	if _, err := NewQuorum[int, int]("q", QuorumConfig{}, adj, intEq); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("no endpoints err = %v, want ErrNoVariants", err)
	}
	if _, err := NewQuorum[int, int]("q", QuorumConfig{}, nil, intEq, eps...); err == nil {
		t.Error("nil adjudicator accepted")
	}
	if _, err := NewQuorum[int, int]("q", QuorumConfig{}, adj, nil, eps...); err == nil {
		t.Error("nil equality accepted")
	}
	if _, err := NewQuorum[int, int]("q", QuorumConfig{Faults: -1}, adj, intEq, eps...); err == nil {
		t.Error("negative fault target accepted")
	}
	// k=2 needs 2k+1=5 replicas; 3 must be refused at construction.
	if _, err := NewQuorum[int, int]("q", QuorumConfig{Faults: 2}, adj, intEq, eps...); !errors.Is(err, ErrQuorumSize) {
		t.Errorf("undersized quorum err = %v, want ErrQuorumSize", err)
	}
	q, err := NewQuorum[int, int]("q", QuorumConfig{Faults: 1}, adj, intEq, eps...)
	if err != nil {
		t.Fatalf("NewQuorum: %v", err)
	}
	defer q.Close()
	if q.Replicas() != 3 || q.TolerableFaults() != 1 || q.Name() != "q" {
		t.Errorf("accessors = (%d, %d, %q)", q.Replicas(), q.TolerableFaults(), q.Name())
	}
}

func TestQuorumAgreesOverHonestFleet(t *testing.T) {
	network := NewPipeNetwork()
	eps := startQuorumFleet(t, network, 3, func(int) core.Variant[int, int] { return double() })
	collector := obs.NewCollector()
	q, err := NewQuorum[int, int]("q", QuorumConfig{Faults: 1, Observer: collector},
		vote.Majority[int](intEq), intEq, eps...)
	if err != nil {
		t.Fatalf("NewQuorum: %v", err)
	}
	defer q.Close()
	for i := 0; i < 20; i++ {
		got, err := q.Execute(context.Background(), i)
		if err != nil || got != 2*i {
			t.Fatalf("Execute(%d) = (%d, %v), want (%d, nil)", i, got, err, 2*i)
		}
	}
	var quorums, disagreements int64
	for _, e := range collector.Snapshot() {
		quorums += e.QuorumsReached
		disagreements += e.VoteDisagreement
	}
	if quorums != 20 {
		t.Errorf("quorums reached = %d, want 20", quorums)
	}
	if disagreements != 0 {
		t.Errorf("vote disagreements = %d over an honest fleet", disagreements)
	}
}

func TestQuorumOutvotesLiarAndAccuses(t *testing.T) {
	network := NewPipeNetwork()
	liar := core.NewVariant("double", func(_ context.Context, x int) (int, error) {
		return 2*x + 2, nil // plausible, wrong, prompt
	})
	eps := startQuorumFleet(t, network, 3, func(i int) core.Variant[int, int] {
		if i == 0 {
			return liar
		}
		return double()
	})
	detector := NewDetector(DetectorConfig{AccuseSuspectAfter: 3, AccuseDeadAfter: 8})
	collector := obs.NewCollector()
	q, err := NewQuorum[int, int]("q", QuorumConfig{Faults: 1, Detector: detector, Observer: collector},
		vote.Majority[int](intEq), intEq, eps...)
	if err != nil {
		t.Fatalf("NewQuorum: %v", err)
	}
	defer q.Close()
	for i := 0; i < 20; i++ {
		got, err := q.Execute(context.Background(), i)
		if err != nil || got != 2*i {
			t.Fatalf("Execute(%d) = (%d, %v): the liar was not outvoted", i, got, err)
		}
	}
	if acc := detector.Accusations("r1"); acc == 0 {
		t.Error("no accusations recorded against the lying replica")
	}
	if state := detector.States()["r1"]; state == obs.ReplicaAlive {
		t.Errorf("r1 still %v after persistent lying; accusations should have convicted it", state)
	}
	var outvoted int64
	for _, e := range collector.Snapshot() {
		outvoted += e.ReplicasOutvoted
	}
	if outvoted == 0 {
		t.Error("no ReplicaOutvoted events emitted")
	}
}

func TestQuorumEarlyVerdictCancelsStraggler(t *testing.T) {
	network := NewPipeNetwork()
	straggler := core.NewVariant("double", func(ctx context.Context, x int) (int, error) {
		select {
		case <-time.After(5 * time.Second):
			return 2 * x, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})
	eps := startQuorumFleet(t, network, 3, func(i int) core.Variant[int, int] {
		if i == 2 {
			return straggler
		}
		return double()
	})
	q, err := NewQuorum[int, int]("q", QuorumConfig{Faults: 1, MinReplies: 2, CallTimeout: 10 * time.Second},
		vote.Majority[int](intEq), intEq, eps...)
	if err != nil {
		t.Fatalf("NewQuorum: %v", err)
	}
	defer q.Close()
	start := time.Now()
	got, err := q.Execute(context.Background(), 21)
	if err != nil || got != 42 {
		t.Fatalf("Execute = (%d, %v), want (42, nil)", got, err)
	}
	// Two prompt agreeing replies are a strict majority of 3: the verdict
	// must not wait out the straggler's five seconds.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("verdict took %v; the straggler was awaited instead of cancelled", elapsed)
	}
}

func TestQuorumNoVerdictBlamesNobody(t *testing.T) {
	network := NewPipeNetwork()
	// Three replicas, three distinct answers: no majority exists, and
	// with no verdict no individual replica can be singled out.
	eps := startQuorumFleet(t, network, 3, func(i int) core.Variant[int, int] {
		return core.NewVariant("double", func(_ context.Context, x int) (int, error) {
			return 2*x + i, nil
		})
	})
	detector := NewDetector(DetectorConfig{})
	q, err := NewQuorum[int, int]("q", QuorumConfig{Faults: 1, Detector: detector},
		vote.Majority[int](intEq), intEq, eps...)
	if err != nil {
		t.Fatalf("NewQuorum: %v", err)
	}
	defer q.Close()
	_, err = q.Execute(context.Background(), 5)
	if !errors.Is(err, core.ErrNoConsensus) {
		t.Fatalf("Execute err = %v, want ErrNoConsensus", err)
	}
	for _, name := range []string{"r1", "r2", "r3"} {
		if acc := detector.Accusations(name); acc != 0 {
			t.Errorf("%s accused %d times despite no verdict", name, acc)
		}
	}
}

func TestDetectorAccusationsConvictWithoutMissedHeartbeats(t *testing.T) {
	d := NewDetector(DetectorConfig{AccuseSuspectAfter: 3, AccuseDeadAfter: 5})
	// Accuse registers the replica on first use; no Watch needed.
	for i := 0; i < 2; i++ {
		d.Accuse("liar")
	}
	if state := d.States()["liar"]; state != obs.ReplicaAlive {
		t.Fatalf("state after 2 accusations = %v, want alive", state)
	}
	d.Accuse("liar")
	if state := d.States()["liar"]; state != obs.ReplicaSuspect {
		t.Fatalf("state after 3 accusations = %v, want suspect", state)
	}
	d.Accuse("liar")
	d.Accuse("liar")
	if state := d.States()["liar"]; state != obs.ReplicaDead {
		t.Fatalf("state after 5 accusations = %v, want dead", state)
	}
	if got := d.Accusations("liar"); got != 5 {
		t.Errorf("Accusations = %d, want 5", got)
	}
	if got := d.Accusations("unknown"); got != 0 {
		t.Errorf("Accusations(unknown) = %d, want 0", got)
	}
}

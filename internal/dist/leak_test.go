package dist

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
)

// leakCheck fails the test if goroutines grew across it. The retry loop
// gives exiting goroutines a moment to die; the +2 slack tolerates the
// runtime's own background workers.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+2 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines leaked: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	}
}

// TestNoLeakAcceptLoopShutdown: closing a server (directly and via
// context cancellation) must terminate the accept loop and every
// connection handler, including handlers mid-read on an idle connection.
func TestNoLeakAcceptLoopShutdown(t *testing.T) {
	check := leakCheck(t)
	network := NewPipeNetwork()

	// Server closed via Close, with a live idle connection parked in a
	// handler's readFrame.
	ln, err := network.Listen("r1")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := NewServer(double(), ln, ServerConfig{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background()) }()
	conn, err := network.Dial("r1")(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // let the handler park in readFrame
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve after Close: %v, want nil (clean shutdown)", err)
	}
	conn.Close()

	// Server stopped via context cancellation.
	ln2, err := network.Listen("r2")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv2 := NewServer(double(), ln2, ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ctx) }()
	cancel()
	if err := <-done2; err != nil {
		t.Fatalf("Serve after cancel: %v, want nil", err)
	}
	check()
}

// TestNoLeakHedgeCancellation: after the first acceptable result wins, the
// losing hedged attempts — parked in blocking reads on a replica that
// never answers — must be canceled and their goroutines must exit.
func TestNoLeakHedgeCancellation(t *testing.T) {
	check := leakCheck(t)
	network := NewPipeNetwork()
	never := make(chan struct{})
	defer close(never)
	// The stuck replica honors cancellation but otherwise never answers;
	// the server's shutdown cancellation is what reaps its handlers.
	stuck := startReplica(t, network, "stuck", core.NewVariant("stuck",
		func(ctx context.Context, x int) (int, error) {
			select {
			case <-never:
			case <-ctx.Done():
			}
			return 0, ctx.Err()
		}))
	fast := startReplica(t, network, "fast", double())
	remote, err := NewRemote[int, int]("hedger", RemoteConfig{
		CallTimeout: 10 * time.Second,
		HedgeAfter:  5 * time.Millisecond,
	},
		Endpoint{Name: "stuck", Dial: network.Dial("stuck")},
		Endpoint{Name: "fast", Dial: network.Dial("fast")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	for i := 0; i < 5; i++ {
		if got, err := remote.Execute(context.Background(), i); err != nil || got != 2*i {
			t.Fatalf("hedged Execute %d: got %d, %v", i, got, err)
		}
	}
	remote.Close()
	stuck.Close() // must cancel the in-flight stuck calls, not wait them out
	fast.Close()
	check()
}

// TestNoLeakClientCloseDuringPartition: a call blocked on a partitioned
// network (the replica accepted the connection, then went silent forever)
// must unblock when the client is closed, and leave nothing running.
func TestNoLeakClientCloseDuringPartition(t *testing.T) {
	check := leakCheck(t)
	network := NewPipeNetwork()
	// A "partitioned" replica: accepts connections and reads nothing, so
	// the client's write (net.Pipe is synchronous) or read blocks forever.
	ln, err := network.Listen("blackhole")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 8)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c // hold the conn open, never read from it
		}
	}()
	defer func() {
		for {
			select {
			case c := <-accepted:
				c.Close()
			default:
				return
			}
		}
	}()
	remote, err := NewRemote[int, int]("marooned", RemoteConfig{
		CallTimeout: 10 * time.Second, // the test must not ride on this timeout
	}, Endpoint{Name: "blackhole", Dial: network.Dial("blackhole")})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	execDone := make(chan error, 1)
	go func() {
		_, err := remote.Execute(context.Background(), 1)
		execDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call block in the partition
	remote.Close()
	select {
	case err := <-execDone:
		if err == nil {
			t.Fatal("Execute during partition succeeded after Close")
		}
		if errors.Is(err, ErrClientClosed) {
			break // closed before the attempt started: also fine
		}
		if !errors.Is(err, core.ErrAllVariantsFailed) {
			t.Fatalf("Execute unblocked with %v, want a failure chain", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Execute still blocked 3s after client Close during partition")
	}
	if _, err := remote.Execute(context.Background(), 1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Execute after Close: %v, want ErrClientClosed", err)
	}
	check()
}

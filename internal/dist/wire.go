package dist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// Message kinds carried in the envelope.
const (
	kindCall = iota + 1
	kindReply
	kindPing
	kindPong
)

// envelope is the one message type of the protocol, gob-encoded inside a
// CRC frame. Calls carry the gob-encoded input in Payload; replies carry
// the gob-encoded output, or a non-empty Err. Pings and pongs carry
// nothing but the ID.
//
// TraceID and SpanID (wire version 2) propagate the causal trace
// in-band on calls: TraceID names the client's distributed trace and
// SpanID the client attempt span that carried this call, so the
// server-side request span continues the trace as that attempt's
// child. Both are zero on untraced calls and on replies.
type envelope struct {
	ID      uint64
	Kind    int
	Payload []byte
	Err     string
	TraceID uint64
	SpanID  uint64
}

// ErrRemote marks a failure reported by the replica server: the variant
// on the far side executed and failed (or panicked — the server contains
// panics with core.Guard). The original error chain does not survive the
// wire; only its message does.
var ErrRemote = errors.New("dist: remote variant failed")

// encodeEnvelope serializes an envelope for framing.
func encodeEnvelope(e *envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("dist: encode envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeEnvelope deserializes a framed envelope. A payload that does not
// decode is a corrupt frame for classification purposes.
func decodeEnvelope(data []byte) (*envelope, error) {
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("%w: envelope: %v", ErrBadFrame, err)
	}
	return &e, nil
}

// encodeValue gob-encodes one RPC input or output value.
func encodeValue(v any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, fmt.Errorf("dist: encode value: %w", err)
	}
	return b.Bytes(), nil
}

// decodeValue gob-decodes one RPC input or output value into out (a
// pointer).
func decodeValue(data []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("%w: value: %v", ErrBadFrame, err)
	}
	return nil
}

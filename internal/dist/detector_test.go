package dist

import (
	"context"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// flakyDial returns a DialFunc that fails while broken is set and
// otherwise dials the real address.
func flakyDial(base DialFunc, broken *atomic.Bool) DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		if broken.Load() {
			return nil, ErrReplicaUnavailable
		}
		return base(ctx)
	}
}

func TestDetectorLifecycle(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "r1", double())
	var partitioned atomic.Bool
	collector := obs.NewCollector()
	det := NewDetector(DetectorConfig{
		Timeout:      200 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    4,
		Observer:     collector,
	})
	det.Watch("r1", flakyDial(network.Dial("r1"), &partitioned))
	ctx := context.Background()

	det.Poll(ctx)
	if got := det.State("r1"); got != obs.ReplicaAlive {
		t.Fatalf("healthy replica: %v, want alive", got)
	}
	if det.LastSeen("r1").IsZero() {
		t.Fatal("acknowledged heartbeat did not record LastSeen")
	}

	partitioned.Store(true)
	det.Poll(ctx)
	if got := det.State("r1"); got != obs.ReplicaAlive {
		t.Fatalf("one miss: %v, want still alive (SuspectAfter=2)", got)
	}
	det.Poll(ctx)
	if got := det.State("r1"); got != obs.ReplicaSuspect {
		t.Fatalf("two misses: %v, want suspect", got)
	}
	det.Poll(ctx)
	det.Poll(ctx)
	if got := det.State("r1"); got != obs.ReplicaDead {
		t.Fatalf("four misses: %v, want dead", got)
	}

	// Suspicion is reversible: one acknowledged heartbeat resurrects.
	partitioned.Store(false)
	det.Poll(ctx)
	if got := det.State("r1"); got != obs.ReplicaAlive {
		t.Fatalf("heartbeat after recovery: %v, want alive again", got)
	}

	// Transitions were observed: alive→suspect, suspect→dead, dead→alive.
	for _, snap := range collector.Snapshot() {
		if snap.ReplicaSuspects == 0 || snap.ReplicaDeaths == 0 {
			t.Fatalf("detector transitions not counted: %+v", snap)
		}
	}
}

func TestDetectorStatesAndUnknown(t *testing.T) {
	det := NewDetector(DetectorConfig{})
	if got := det.State("stranger"); got != obs.ReplicaAlive {
		t.Fatalf("unknown replica: %v, want alive (no evidence against it)", got)
	}
	det.Watch("a", func(ctx context.Context) (net.Conn, error) { return nil, ErrReplicaUnavailable })
	states := det.States()
	if len(states) != 1 || states["a"] != obs.ReplicaAlive {
		t.Fatalf("States: %v, want map[a:alive]", states)
	}
}

func TestDetectorRank(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "up", double())
	det := NewDetector(DetectorConfig{Timeout: 100 * time.Millisecond, SuspectAfter: 1, DeadAfter: 2})
	det.Watch("up", network.Dial("up"))
	det.Watch("down", func(ctx context.Context) (net.Conn, error) { return nil, ErrReplicaUnavailable })
	det.Poll(context.Background())
	det.Poll(context.Background())
	// down has missed twice (dead), up is alive; rank must reorder.
	got := det.Rank("ignored", []string{"down", "up"})
	if want := []string{"up", "down"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank: %v, want %v", got, want)
	}
	// Within a class the order is shuffled, but the class boundary must
	// hold across calls: alive names always precede the dead one.
	for i := 0; i < 20; i++ {
		got = det.Rank("ignored", []string{"stranger", "down", "up"})
		if len(got) != 3 || got[2] != "down" {
			t.Fatalf("Rank call %d: %v, want the dead replica last", i, got)
		}
	}
}

func TestDetectorRankSpreadsEqualStates(t *testing.T) {
	// All three replicas are alive (no evidence against them). A stable
	// sort here would pin every request to the caller's first name,
	// concentrating all non-hedged traffic on one replica; the seeded
	// tie-break must spread primaries across the class.
	det := NewDetector(DetectorConfig{Seed: 7})
	names := []string{"r1", "r2", "r3"}
	firsts := make(map[string]int)
	const calls = 300
	for i := 0; i < calls; i++ {
		firsts[det.Rank("exec", names)[0]]++
	}
	for _, name := range names {
		if firsts[name] < calls/10 {
			t.Fatalf("replica %s ranked first %d/%d times; equal-state ranking is pinned: %v",
				name, firsts[name], calls, firsts)
		}
	}
	// Same seed, fresh detector: the spread replays exactly.
	det2 := NewDetector(DetectorConfig{Seed: 7})
	firsts2 := make(map[string]int)
	for i := 0; i < calls; i++ {
		firsts2[det2.Rank("exec", names)[0]]++
	}
	if !reflect.DeepEqual(firsts, firsts2) {
		t.Fatalf("same seed diverged: %v vs %v", firsts, firsts2)
	}
}

func TestDetectorSlownessTrack(t *testing.T) {
	collector := obs.NewCollector()
	det := NewDetector(DetectorConfig{
		SuspectAfter: 2, DeadAfter: 5,
		SlowSuspectAfter: 3, SlowDeadAfter: 6,
		Observer: collector,
	})
	det.Watch("gray", func(ctx context.Context) (net.Conn, error) { return nil, ErrReplicaUnavailable })

	// Two reports: below the suspect threshold, still alive.
	det.ReportSlow("gray")
	det.ReportSlow("gray")
	if got := det.State("gray"); got != obs.ReplicaAlive {
		t.Fatalf("2 slowness reports: %v, want alive (SlowSuspectAfter=3)", got)
	}
	det.ReportSlow("gray")
	if got := det.State("gray"); got != obs.ReplicaSuspect {
		t.Fatalf("3 slowness reports: %v, want suspect", got)
	}
	if _, _, slowness := det.Evidence("gray"); slowness != 3 {
		t.Fatalf("Evidence slowness = %d, want 3", slowness)
	}
	for i := 0; i < 3; i++ {
		det.ReportSlow("gray")
	}
	if got := det.State("gray"); got != obs.ReplicaDead {
		t.Fatalf("6 slowness reports: %v, want dead (SlowDeadAfter=6)", got)
	}

	// The track is reversible: recovery clears all slowness evidence
	// and the verdict, unlike accusations.
	det.ClearSlow("gray")
	if got := det.State("gray"); got != obs.ReplicaAlive {
		t.Fatalf("after ClearSlow: %v, want alive", got)
	}
	if _, _, slowness := det.Evidence("gray"); slowness != 0 {
		t.Fatalf("Evidence slowness after clear = %d, want 0", slowness)
	}

	// Reporting an unwatched name registers it, like Accuse.
	det.ReportSlow("stranger")
	if _, _, slowness := det.Evidence("stranger"); slowness != 1 {
		t.Fatalf("unwatched ReportSlow: slowness = %d, want 1", slowness)
	}

	// Slowness does not erase the other tracks: a limper that also
	// lies keeps its accusations through ClearSlow.
	det.Accuse("gray")
	det.ClearSlow("gray")
	if _, accusations, _ := det.Evidence("gray"); accusations != 1 {
		t.Fatalf("accusations after ClearSlow = %d, want 1 (only timing evidence is exculpable)", accusations)
	}
}

func TestDetectorRunLoop(t *testing.T) {
	network := NewPipeNetwork()
	startReplica(t, network, "r1", double())
	det := NewDetector(DetectorConfig{Interval: 5 * time.Millisecond, Timeout: 100 * time.Millisecond})
	det.Watch("r1", network.Dial("r1"))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- det.Run(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for det.LastSeen("r1").IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("Run loop produced no heartbeat within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run after cancel: %v, want nil", err)
	}
	child := det.AsChild()
	if child.Name == "" || child.Run == nil {
		t.Fatalf("AsChild incomplete: %+v", child)
	}
}

func TestReplicaStateString(t *testing.T) {
	cases := map[obs.ReplicaState]string{
		obs.ReplicaAlive:     "alive",
		obs.ReplicaSuspect:   "suspect",
		obs.ReplicaDead:      "dead",
		obs.ReplicaState(42): "unknown",
	}
	for state, want := range cases {
		if got := state.String(); got != want {
			t.Fatalf("ReplicaState(%d).String() = %q, want %q", state, got, want)
		}
	}
}

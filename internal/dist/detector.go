package dist

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/supervise"
)

// DetectorConfig parameterizes a failure detector. The zero value
// selects the documented defaults.
type DetectorConfig struct {
	// Name labels the detector in observation events; empty means
	// "detector".
	Name string
	// Interval is the heartbeat period. Default 500ms.
	Interval time.Duration
	// Timeout bounds one heartbeat round trip (dial + ping + pong).
	// Default: Interval.
	Timeout time.Duration
	// SuspectAfter is how many consecutive missed heartbeats mark a
	// replica suspect. Default 2.
	SuspectAfter int
	// DeadAfter is how many consecutive missed heartbeats mark a replica
	// dead. Default 5.
	DeadAfter int
	// Observer receives ReplicaStateChanged events; nil observes nothing.
	Observer obs.Observer
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Name == "" {
		c.Name = "detector"
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 3
	}
	return c
}

// member is the detector's state for one watched replica.
type member struct {
	name     string
	dial     DialFunc
	misses   int
	state    obs.ReplicaState
	lastSeen time.Time
}

// Detector is a heartbeat-based failure detector: it pings every
// watched replica each interval over the same (possibly faulty)
// transport the clients use, counts consecutive misses, and publishes
// alive/suspect/dead membership. A partitioned replica stops answering
// pings, crosses the suspect threshold within SuspectAfter heartbeat
// windows, and is routed around by Remote clients (RemoteConfig.
// Detector) and by pattern executors that take the detector as their
// variant Ranker.
//
// Suspicion is reversible — one acknowledged heartbeat resets a member
// to alive — which is what makes the detector safe on a merely slow
// network (the Chandra-Toueg insight that failure detectors over
// asynchronous networks are necessarily unreliable and must be allowed
// to change their mind).
type Detector struct {
	cfg DetectorConfig

	mu      sync.Mutex
	members map[string]*member
}

// NewDetector returns a detector with no members; Watch replicas, then
// either Run it (blocking loop) or drive Poll by hand in tests.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), members: make(map[string]*member)}
}

// Watch adds a replica to the membership, initially alive. Watching an
// already-watched name replaces its dialer and resets its state.
func (d *Detector) Watch(name string, dial DialFunc) {
	d.mu.Lock()
	d.members[name] = &member{name: name, dial: dial, state: obs.ReplicaAlive}
	d.mu.Unlock()
}

// State returns the detector's opinion of one replica. Unknown names
// are alive: the detector has no evidence against them.
func (d *Detector) State(name string) obs.ReplicaState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[name]; ok {
		return m.state
	}
	return obs.ReplicaAlive
}

// States returns a copy of the full membership.
func (d *Detector) States() map[string]obs.ReplicaState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]obs.ReplicaState, len(d.members))
	for name, m := range d.members {
		out[name] = m.state
	}
	return out
}

// LastSeen returns when the replica last acknowledged a heartbeat (zero
// if never).
func (d *Detector) LastSeen(name string) time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[name]; ok {
		return m.lastSeen
	}
	return time.Time{}
}

// Rank implements the pattern executors' Ranker contract over replica
// names: alive first, then suspect, then dead, stable within a class.
// Attaching a Detector with pattern.WithRanker makes sequential
// alternatives try live replicas first and parallel selection prefer a
// live replica's acceptable result.
func (d *Detector) Rank(_ string, names []string) []string {
	out := make([]string, len(names))
	copy(out, names)
	sort.SliceStable(out, func(a, b int) bool {
		return d.State(out[a]) < d.State(out[b])
	})
	return out
}

// Run drives the heartbeat loop until the context is canceled. It is
// supervisable: AsChild wraps it as a supervision-tree member.
func (d *Detector) Run(ctx context.Context) error {
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			d.Poll(ctx)
		}
	}
}

// AsChild adapts the heartbeat loop into a supervise.ChildSpec.
func (d *Detector) AsChild() supervise.ChildSpec {
	return supervise.ChildSpec{
		Name:    d.cfg.Name,
		Restart: supervise.Transient,
		Run:     d.Run,
	}
}

// Poll performs one heartbeat sweep: every member is pinged
// concurrently and its miss counter and state updated. Exposed so tests
// and simulations can step the detector deterministically instead of
// racing a ticker.
func (d *Detector) Poll(ctx context.Context) {
	d.mu.Lock()
	members := make([]*member, 0, len(d.members))
	for _, m := range d.members {
		members = append(members, m)
	}
	d.mu.Unlock()
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			err := d.ping(ctx, m.dial)
			d.record(m.name, err == nil)
		}(m)
	}
	wg.Wait()
}

// ping performs one heartbeat round trip on a fresh connection. Dialing
// fresh each time keeps the heartbeat honest about the dial path — a
// partition that breaks new connections is detected even while old
// pooled connections linger.
func (d *Detector) ping(ctx context.Context, dial DialFunc) error {
	ctx, cancel := context.WithTimeout(ctx, d.cfg.Timeout)
	defer cancel()
	conn, err := dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	frame, err := encodeEnvelope(&envelope{Kind: kindPing})
	if err != nil {
		return err
	}
	if err := writeFrame(conn, frame); err != nil {
		return err
	}
	payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	reply, err := decodeEnvelope(payload)
	if err != nil {
		return err
	}
	if reply.Kind != kindPong {
		return ErrBadFrame
	}
	return nil
}

// record folds one heartbeat outcome into a member's state, emitting a
// ReplicaStateChanged event on transitions.
func (d *Detector) record(name string, ok bool) {
	d.mu.Lock()
	m, found := d.members[name]
	if !found {
		d.mu.Unlock()
		return
	}
	from := m.state
	if ok {
		m.misses = 0
		m.state = obs.ReplicaAlive
		m.lastSeen = time.Now()
	} else {
		m.misses++
		switch {
		case m.misses >= d.cfg.DeadAfter:
			m.state = obs.ReplicaDead
		case m.misses >= d.cfg.SuspectAfter:
			m.state = obs.ReplicaSuspect
		}
	}
	to := m.state
	d.mu.Unlock()
	if from != to && d.cfg.Observer != nil {
		obs.EmitReplicaStateChanged(d.cfg.Observer, d.cfg.Name, name, from, to)
	}
}

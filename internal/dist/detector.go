package dist

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/supervise"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// DetectorConfig parameterizes a failure detector. The zero value
// selects the documented defaults.
type DetectorConfig struct {
	// Name labels the detector in observation events; empty means
	// "detector".
	Name string
	// Interval is the heartbeat period. Default 500ms.
	Interval time.Duration
	// Timeout bounds one heartbeat round trip (dial + ping + pong).
	// Default: Interval.
	Timeout time.Duration
	// SuspectAfter is how many consecutive missed heartbeats mark a
	// replica suspect. Default 2.
	SuspectAfter int
	// DeadAfter is how many consecutive missed heartbeats mark a replica
	// dead. Default 5.
	DeadAfter int
	// AccuseSuspectAfter is how many vote-disagreement accusations
	// (Accuse) mark a replica suspect. Unlike heartbeat misses,
	// accusations never reset: answering the next ping does not undo a
	// wrong answer. Default 3.
	AccuseSuspectAfter int
	// AccuseDeadAfter is how many accusations mark a replica dead.
	// Default: AccuseSuspectAfter + 5.
	AccuseDeadAfter int
	// SlowSuspectAfter is how many pieces of slowness evidence
	// (ReportSlow, filed by the latency ejector) mark a replica suspect.
	// Slowness is the third evidence track: a gray replica answers every
	// ping on time and never lies, so neither misses nor accusations can
	// see it — only the latency profile of real requests can. Unlike
	// accusations the track is reversible (ClearSlow), because slowness
	// is often environmental and a recovered replica should be allowed
	// back. Default 3.
	SlowSuspectAfter int
	// SlowDeadAfter is how many pieces of slowness evidence mark a
	// replica dead. Deliberately far above SlowSuspectAfter: a limping
	// replica still serves correct answers, so demoting it below
	// crashed replicas should take sustained evidence. Default:
	// SlowSuspectAfter + 9.
	SlowDeadAfter int
	// Seed drives the Rank tie-break shuffle among equal-state
	// replicas. Zero is a valid seed; campaigns share theirs so ranking
	// replays deterministically.
	Seed uint64
	// Observer receives ReplicaStateChanged events; nil observes nothing.
	Observer obs.Observer
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Name == "" {
		c.Name = "detector"
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 3
	}
	if c.AccuseSuspectAfter <= 0 {
		c.AccuseSuspectAfter = 3
	}
	if c.AccuseDeadAfter <= c.AccuseSuspectAfter {
		c.AccuseDeadAfter = c.AccuseSuspectAfter + 5
	}
	if c.SlowSuspectAfter <= 0 {
		c.SlowSuspectAfter = 3
	}
	if c.SlowDeadAfter <= c.SlowSuspectAfter {
		c.SlowDeadAfter = c.SlowSuspectAfter + 9
	}
	return c
}

// member is the detector's state for one watched replica.
type member struct {
	name        string
	dial        DialFunc
	misses      int
	accusations int
	slowness    int
	state       obs.ReplicaState
	lastSeen    time.Time
}

// recompute derives the member's state from all three evidence
// streams: consecutive heartbeat misses (omission evidence, reset by
// any ack), accumulated accusations (value-fault evidence, never
// reset), and accumulated slowness reports (timing-fault evidence,
// reset by ClearSlow when the latency profile recovers). The worst
// verdict stands, so a replica that heartbeats perfectly while lying
// or limping still degrades — and a convicted liar cannot talk its way
// back to alive by answering pings.
func (m *member) recompute(cfg DetectorConfig) {
	state := obs.ReplicaAlive
	switch {
	case m.misses >= cfg.DeadAfter:
		state = obs.ReplicaDead
	case m.misses >= cfg.SuspectAfter:
		state = obs.ReplicaSuspect
	}
	switch {
	case m.accusations >= cfg.AccuseDeadAfter:
		state = obs.ReplicaDead
	case m.accusations >= cfg.AccuseSuspectAfter && state == obs.ReplicaAlive:
		state = obs.ReplicaSuspect
	}
	switch {
	case m.slowness >= cfg.SlowDeadAfter:
		state = obs.ReplicaDead
	case m.slowness >= cfg.SlowSuspectAfter && state == obs.ReplicaAlive:
		state = obs.ReplicaSuspect
	}
	m.state = state
}

// Detector is a heartbeat-based failure detector: it pings every
// watched replica each interval over the same (possibly faulty)
// transport the clients use, counts consecutive misses, and publishes
// alive/suspect/dead membership. A partitioned replica stops answering
// pings, crosses the suspect threshold within SuspectAfter heartbeat
// windows, and is routed around by Remote clients (RemoteConfig.
// Detector) and by pattern executors that take the detector as their
// variant Ranker.
//
// Suspicion from missed heartbeats is reversible — one acknowledged
// heartbeat resets the miss counter — which is what makes the detector
// safe on a merely slow network (the Chandra-Toueg insight that failure
// detectors over asynchronous networks are necessarily unreliable and
// must be allowed to change their mind). The detector also accepts a
// second, non-reversible evidence stream: Accuse files vote-
// disagreement evidence from Quorum clients, so a Byzantine replica
// that acknowledges every ping while returning wrong answers still
// transitions alive → suspect → dead.
type Detector struct {
	cfg DetectorConfig

	mu      sync.Mutex
	members map[string]*member
	rng     *xrand.Rand // Rank tie-break stream; guarded by mu
}

// NewDetector returns a detector with no members; Watch replicas, then
// either Run it (blocking loop) or drive Poll by hand in tests.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{cfg: cfg, members: make(map[string]*member), rng: xrand.New(cfg.Seed)}
}

// Watch adds a replica to the membership, initially alive. Watching an
// already-watched name replaces its dialer and resets its state.
func (d *Detector) Watch(name string, dial DialFunc) {
	d.mu.Lock()
	d.members[name] = &member{name: name, dial: dial, state: obs.ReplicaAlive}
	d.mu.Unlock()
}

// State returns the detector's opinion of one replica. Unknown names
// are alive: the detector has no evidence against them.
func (d *Detector) State(name string) obs.ReplicaState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[name]; ok {
		return m.state
	}
	return obs.ReplicaAlive
}

// States returns a copy of the full membership.
func (d *Detector) States() map[string]obs.ReplicaState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]obs.ReplicaState, len(d.members))
	for name, m := range d.members {
		out[name] = m.state
	}
	return out
}

// LastSeen returns when the replica last acknowledged a heartbeat (zero
// if never).
func (d *Detector) LastSeen(name string) time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[name]; ok {
		return m.lastSeen
	}
	return time.Time{}
}

// Rank implements the pattern executors' Ranker contract over replica
// names: alive first, then suspect, then dead. Within a class the
// order is a seeded shuffle, not the caller's order — a stable sort
// here would pin every non-hedged request to whichever live replica
// the caller happens to list first, concentrating all traffic (and all
// wear) on one member of a healthy fleet. The shuffle draws from the
// detector's seeded stream, so a campaign replays the same spread.
// Attaching a Detector with pattern.WithRanker makes sequential
// alternatives try live replicas first and parallel selection prefer a
// live replica's acceptable result.
func (d *Detector) Rank(_ string, names []string) []string {
	out := make([]string, len(names))
	copy(out, names)
	d.mu.Lock()
	class := make(map[string]obs.ReplicaState, len(out))
	for _, name := range out {
		if m, ok := d.members[name]; ok {
			class[name] = m.state
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return class[out[a]] < class[out[b]]
	})
	for lo := 0; lo < len(out); {
		hi := lo + 1
		for hi < len(out) && class[out[hi]] == class[out[lo]] {
			hi++
		}
		if run := hi - lo; run > 1 {
			d.rng.Shuffle(run, func(i, j int) {
				out[lo+i], out[lo+j] = out[lo+j], out[lo+i]
			})
		}
		lo = hi
	}
	d.mu.Unlock()
	return out
}

// Run drives the heartbeat loop until the context is canceled. It is
// supervisable: AsChild wraps it as a supervision-tree member.
func (d *Detector) Run(ctx context.Context) error {
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			d.Poll(ctx)
		}
	}
}

// AsChild adapts the heartbeat loop into a supervise.ChildSpec.
func (d *Detector) AsChild() supervise.ChildSpec {
	return supervise.ChildSpec{
		Name:    d.cfg.Name,
		Restart: supervise.Transient,
		Run:     d.Run,
	}
}

// Poll performs one heartbeat sweep: every member is pinged
// concurrently and its miss counter and state updated. Exposed so tests
// and simulations can step the detector deterministically instead of
// racing a ticker.
func (d *Detector) Poll(ctx context.Context) {
	d.mu.Lock()
	members := make([]*member, 0, len(d.members))
	for _, m := range d.members {
		members = append(members, m)
	}
	d.mu.Unlock()
	var wg sync.WaitGroup
	for _, m := range members {
		if m.dial == nil {
			continue // registered by accusation only; nothing to ping
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			err := d.ping(ctx, m.dial)
			d.record(m.name, err == nil)
		}(m)
	}
	wg.Wait()
}

// ping performs one heartbeat round trip on a fresh connection. Dialing
// fresh each time keeps the heartbeat honest about the dial path — a
// partition that breaks new connections is detected even while old
// pooled connections linger.
func (d *Detector) ping(ctx context.Context, dial DialFunc) error {
	ctx, cancel := context.WithTimeout(ctx, d.cfg.Timeout)
	defer cancel()
	conn, err := dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	frame, err := encodeEnvelope(&envelope{Kind: kindPing})
	if err != nil {
		return err
	}
	if err := writeFrame(conn, frame); err != nil {
		return err
	}
	payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	reply, err := decodeEnvelope(payload)
	if err != nil {
		return err
	}
	if reply.Kind != kindPong {
		return ErrBadFrame
	}
	return nil
}

// record folds one heartbeat outcome into a member's state, emitting a
// ReplicaStateChanged event on transitions.
func (d *Detector) record(name string, ok bool) {
	d.mu.Lock()
	m, found := d.members[name]
	if !found {
		d.mu.Unlock()
		return
	}
	from := m.state
	if ok {
		m.misses = 0
		m.lastSeen = time.Now()
	} else {
		m.misses++
	}
	m.recompute(d.cfg)
	to := m.state
	d.mu.Unlock()
	if from != to && d.cfg.Observer != nil {
		obs.EmitReplicaStateChanged(d.cfg.Observer, d.cfg.Name, name, from, to)
	}
}

// Accuse files one piece of value-fault evidence against a replica —
// typically a Quorum client reporting an outvoted reply. Accusations
// accumulate for the lifetime of the membership entry and are
// deliberately not decayed by healthy heartbeats: a Byzantine replica's
// prompt pings are not exculpatory, and decay would let an intermittent
// liar oscillate below the threshold forever. Accusing an unwatched
// name registers it (with no dialer) so purely quorum-driven fleets
// still converge on a verdict about their liars.
func (d *Detector) Accuse(name string) {
	d.mu.Lock()
	m, found := d.members[name]
	if !found {
		m = &member{name: name, state: obs.ReplicaAlive}
		d.members[name] = m
	}
	from := m.state
	m.accusations++
	m.recompute(d.cfg)
	to := m.state
	d.mu.Unlock()
	if from != to && d.cfg.Observer != nil {
		obs.EmitReplicaStateChanged(d.cfg.Observer, d.cfg.Name, name, from, to)
	}
}

// Forget drops a replica from the membership along with all evidence
// against it. The autonomic controller retires a replaced endpoint
// this way, so a dead verdict for a replica that no longer exists
// stops influencing ranking and membership reports.
func (d *Detector) Forget(name string) {
	d.mu.Lock()
	delete(d.members, name)
	d.mu.Unlock()
}

// ReportSlow files one piece of timing-fault evidence against a
// replica — typically the latency ejector reporting an endpoint whose
// EWMA is a peer-relative outlier. Like Accuse, reporting an unwatched
// name registers it (with no dialer). Unlike accusations, slowness is
// reversible through ClearSlow: limps are frequently environmental and
// the recovered replica should serve again.
func (d *Detector) ReportSlow(name string) {
	d.mu.Lock()
	m, found := d.members[name]
	if !found {
		m = &member{name: name, state: obs.ReplicaAlive}
		d.members[name] = m
	}
	from := m.state
	m.slowness++
	m.recompute(d.cfg)
	to := m.state
	d.mu.Unlock()
	if from != to && d.cfg.Observer != nil {
		obs.EmitReplicaStateChanged(d.cfg.Observer, d.cfg.Name, name, from, to)
	}
}

// ClearSlow withdraws all slowness evidence against a replica — the
// ejector calls it when a probed endpoint's latency profile has
// recovered and it is reinstated. Misses and accusations are
// untouched; only the timing track is exculpable.
func (d *Detector) ClearSlow(name string) {
	d.mu.Lock()
	m, found := d.members[name]
	if !found {
		d.mu.Unlock()
		return
	}
	from := m.state
	m.slowness = 0
	m.recompute(d.cfg)
	to := m.state
	d.mu.Unlock()
	if from != to && d.cfg.Observer != nil {
		obs.EmitReplicaStateChanged(d.cfg.Observer, d.cfg.Name, name, from, to)
	}
}

// Evidence returns the detector's current evidence against a replica:
// consecutive missed heartbeats (reversible), accumulated accusations
// (never reset), and accumulated slowness reports (reversible via
// ClearSlow). Reports, the control plane's policies, and the faultsim
// stats table use it to show *which* track convicted a replica, not
// just the verdict.
func (d *Detector) Evidence(name string) (misses, accusations, slowness int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[name]; ok {
		return m.misses, m.accusations, m.slowness
	}
	return 0, 0, 0
}

// Accusations returns how many times a replica has been accused.
func (d *Detector) Accusations(name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[name]; ok {
		return m.accusations
	}
	return 0
}

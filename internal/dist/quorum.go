package dist

// Quorum is the Byzantine sibling of Remote. Where Remote treats its
// endpoints as interchangeable servers of one trusted service (failover
// and hedging pick *a* reply), Quorum treats them as independently
// faulty replicas whose replies must be adjudicated: every request fans
// out to all n endpoints, the replies are voted with an internal/vote
// adjudicator, and the 2k+1 sizing rule of the paper (Section 4.1) is
// enforced at construction so a fleet of n replicas provably masks up
// to k wrong answers. This is the paper's multi-version claim — and
// Table 1's malicious-fault column — carried across the process
// boundary: a replica that *lies* (answers promptly but wrongly) is
// outvoted, and the disagreement is converted into failure-detector
// evidence against it.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// ErrQuorumSize reports a Quorum constructed with fewer endpoints than
// its fault-tolerance target requires (n must be at least 2k+1).
var ErrQuorumSize = errors.New("dist: not enough replicas for the fault-tolerance target (need 2k+1)")

// errStragglerPending is the placeholder failure standing in for a
// replica that has not answered yet when the adjudicator runs early.
var errStragglerPending = errors.New("dist: reply pending")

// QuorumConfig parameterizes a Quorum variant. The zero value selects
// the documented defaults.
type QuorumConfig struct {
	// CallTimeout is the per-endpoint deadline bounding one RPC attempt
	// end to end (dial, send, receive). Default 1s.
	CallTimeout time.Duration
	// Faults is k, the number of wrong or missing answers the quorum
	// must tolerate. Construction fails unless at least
	// vote.VersionsNeeded(Faults) = 2k+1 endpoints are configured.
	Faults int
	// MinReplies is how many replies must settle before the adjudicator
	// first runs. Verdict soundness does not depend on it — pending
	// replicas are adjudicated as failed placeholders, so a strict-
	// majority adjudicator needs the same k+1 agreeing votes early or
	// late — but plurality-style adjudicators decide on whatever has
	// settled, so the default waits for n-Faults replies.
	MinReplies int
	// Detector, if non-nil, receives an accusation (Detector.Accuse)
	// for every outvoted reply, letting vote disagreement move a
	// prompt-but-lying replica to suspect and dead. The detector's
	// heartbeats are not consulted for routing: a quorum must query
	// every replica regardless of liveness opinion.
	Detector *Detector
	// Observer receives the request span plus QuorumReached,
	// VoteDisagreement, and ReplicaOutvoted events under the Quorum's
	// name; nil observes nothing.
	Observer obs.Observer
}

// Quorum is a core.Variant whose Execute fans one call out to every
// replica endpoint and returns the adjudicated verdict. The first
// moment a quorum is reached the stragglers are canceled (their
// connection deadlines are smashed, so blocked reads return), keeping
// the fast path at roughly the (n-k)-th fastest replica rather than
// the slowest.
//
// Because it satisfies core.Variant, a Quorum plugs unchanged into the
// local pattern executors — a quorum fleet can itself be one variant
// of a recovery block or N-version set.
type Quorum[I, O any] struct {
	tp     *transport
	cfg    QuorumConfig
	adj    core.Adjudicator[O]
	eq     core.Equal[O]
	traced bool
}

var _ core.Variant[int, int] = (*Quorum[int, int])(nil)

// NewQuorum builds a quorum variant over 2k+1 or more endpoints. The
// adjudicator decides the verdict (vote.Majority for the paper's
// strict-majority reading; Plurality / MOfN / Weighted compose too);
// eq is the agreement relation used to attribute each settled reply to
// the verdict — it should be the same equality the adjudicator votes
// with, and is what turns a losing reply into a ReplicaOutvoted event
// and a detector accusation.
func NewQuorum[I, O any](name string, cfg QuorumConfig, adj core.Adjudicator[O], eq core.Equal[O], endpoints ...Endpoint) (*Quorum[I, O], error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("dist: quorum %q: %w", name, core.ErrNoVariants)
	}
	if adj == nil || eq == nil {
		return nil, fmt.Errorf("dist: quorum %q: adjudicator and equality are required", name)
	}
	if cfg.Faults < 0 {
		return nil, fmt.Errorf("dist: quorum %q: negative fault tolerance %d", name, cfg.Faults)
	}
	if need := vote.VersionsNeeded(cfg.Faults); len(endpoints) < need {
		return nil, fmt.Errorf("dist: quorum %q: %w: k=%d needs %d replicas, have %d",
			name, ErrQuorumSize, cfg.Faults, need, len(endpoints))
	}
	tp, err := newTransport("quorum", name, cfg.CallTimeout, endpoints)
	if err != nil {
		return nil, err
	}
	cfg.CallTimeout = tp.callTimeout
	// MinReplies is left as configured (possibly zero) and resolved per
	// request against the fleet size of that request's endpoint view, so
	// a fleet grown or shrunk at runtime keeps the n-k default honest.
	return &Quorum[I, O]{
		tp: tp, cfg: cfg, adj: adj, eq: eq,
		traced: obs.WantsTrace(cfg.Observer),
	}, nil
}

// Name implements core.Variant.
func (q *Quorum[I, O]) Name() string { return q.tp.name }

// Replicas returns the fleet size n.
func (q *Quorum[I, O]) Replicas() int { return len(q.tp.view().endpoints) }

// TolerableFaults returns k, the configured wrong-answer tolerance.
func (q *Quorum[I, O]) TolerableFaults() int { return q.cfg.Faults }

// AddEndpoint splices a new replica into the live fleet. Requests
// already fanned out keep the endpoint view they captured; the next
// Execute votes over the grown fleet.
func (q *Quorum[I, O]) AddEndpoint(ep Endpoint) error { return q.tp.add(ep) }

// RemoveEndpoint takes a replica out of the live fleet and cancels any
// straggler still blocked on it. Removal is refused when it would
// shrink the fleet below the 2k+1 floor the fault-tolerance target
// requires — a controller must splice the replacement in before it
// retires the convicted replica.
func (q *Quorum[I, O]) RemoveEndpoint(name string) error {
	return q.tp.remove(name, vote.VersionsNeeded(q.cfg.Faults))
}

// Endpoints returns the current replica names in configured order.
func (q *Quorum[I, O]) Endpoints() []string { return q.tp.view().names() }

// Close releases every pooled and in-flight connection; blocked calls
// unblock with a connection error. Idempotent.
func (q *Quorum[I, O]) Close() error {
	q.tp.close()
	return nil
}

// quorumReply is one settled endpoint reply.
type quorumReply[O any] struct {
	value   O
	err     error
	ep      int
	latency time.Duration
}

// Execute implements core.Variant: the full fan-out with incremental
// adjudication. Replies are collected into a fixed slate of n results
// (stragglers stand in as failed placeholders); once MinReplies have
// settled, every further settle re-runs the adjudicator, and the first
// verdict wins. A strict-majority adjudicator over the padded slate is
// monotone — pending replies can only add votes, never dethrone a
// majority already reached — so deciding early is sound.
//
// With an observer attached the fan-out is one observed request span
// under the Quorum's name with one RPCAttempted lineage record per
// replica (losers and canceled stragglers included), the adjudication
// verdict, and the quorum events: QuorumReached on a verdict,
// VoteDisagreement when the settled successes were not unanimous, and
// ReplicaOutvoted (plus a Detector accusation) per losing reply.
func (q *Quorum[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	if q.tp.closed.Load() {
		return zero, ErrClientClosed
	}
	o := q.cfg.Observer
	name := q.tp.name
	// One immutable endpoint view per request: a controller splicing
	// replicas mid-flight changes the next request's fleet, not this one.
	v := q.tp.view()
	n := len(v.endpoints)
	minReplies := q.cfg.MinReplies
	if minReplies <= 0 {
		minReplies = n - q.cfg.Faults
	}
	if minReplies > n {
		minReplies = n
	}
	var (
		req   uint64
		start time.Time
	)
	if o != nil {
		req = obs.NextRequestID()
		o.RequestStart(name, req)
		start = time.Now()
	}
	// Trace plumbing mirrors Remote: a fresh child span when this client
	// records traces, the inherited context otherwise; each replica
	// attempt gets its own child span on the wire.
	parent, hasParent := obs.TraceContextFrom(ctx)
	var rtc obs.TraceContext
	if q.traced {
		if hasParent {
			rtc = parent.Child()
		} else {
			rtc = obs.NewTraceContext()
		}
		obs.EmitRequestTraced(o, name, req, rtc)
	} else if hasParent {
		rtc = parent
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	replies := make(chan quorumReply[O], n)
	var (
		lineage  []obs.RPCAttempt
		launches []time.Time
		settled  = make([]bool, n)
	)
	if o != nil {
		lineage = make([]obs.RPCAttempt, n)
		launches = make([]time.Time, n)
	}
	for ep := 0; ep < n; ep++ {
		var atc obs.TraceContext
		if rtc.Valid() {
			atc = rtc.Child()
		}
		if o != nil {
			lineage[ep] = obs.RPCAttempt{
				Endpoint: v.endpoints[ep].Name, Span: atc, Attempt: ep + 1,
			}
			launches[ep] = time.Now()
		}
		go func(ep int, atc obs.TraceContext) {
			start := time.Now()
			value, err := roundTrip[I, O](ctx, q.tp, v, ep, atc, input)
			latency := time.Since(start)
			if o != nil {
				obs.EmitRPCCompleted(o, name, v.endpoints[ep].Name, req, latency, err)
			}
			replies <- quorumReply[O]{value: value, err: err, ep: ep, latency: latency}
		}(ep, atc)
	}

	// The slate the adjudicator sees: every endpoint's slot, pending
	// ones standing in as failures so the vote denominator is always n.
	slate := make([]core.Result[O], n)
	for ep := range slate {
		slate[ep] = core.Result[O]{Variant: v.endpoints[ep].Name, Err: errStragglerPending}
	}

	// finish closes the observed request span; verdictEp < 0 means no
	// winning endpoint (failure or cancellation).
	finish := func(agreed []bool, err error) {
		if o == nil {
			return
		}
		failureDetected := false
		for ep := range lineage {
			a := &lineage[ep]
			a.Won = agreed != nil && agreed[ep]
			if !settled[ep] {
				a.Cancelled = true
				a.Latency = time.Since(launches[ep])
			} else if a.Err != nil || (agreed != nil && !agreed[ep]) {
				// A settled loser — failed round trip or outvoted reply —
				// is a detected (and, on success, masked) fault.
				failureDetected = true
			}
			obs.EmitRPCAttempted(o, name, req, *a)
		}
		o.Adjudicated(name, req, err == nil, failureDetected)
		outcome := obs.OutcomeSuccess
		switch {
		case err != nil:
			outcome = obs.OutcomeFailed
		case failureDetected:
			outcome = obs.OutcomeMasked
		}
		o.RequestEnd(name, req, time.Since(start), outcome)
	}

	// disagreement counts the equivalence classes among the settled
	// successful replies under eq.
	answerClasses := func() int {
		var reps []O
	outer:
		for ep := range slate {
			if !settled[ep] || !slate[ep].OK() {
				continue
			}
			for _, r := range reps {
				if q.eq(r, slate[ep].Value) {
					continue outer
				}
			}
			reps = append(reps, slate[ep].Value)
		}
		return len(reps)
	}

	settledCount := 0
	for settledCount < n {
		select {
		case rep := <-replies:
			settledCount++
			settled[rep.ep] = true
			slate[rep.ep] = core.Result[O]{
				Variant: v.endpoints[rep.ep].Name,
				Value:   rep.value, Err: rep.err, Latency: rep.latency,
			}
			if o != nil {
				lineage[rep.ep].Latency = rep.latency
				lineage[rep.ep].Err = rep.err
			}
			if settledCount < minReplies {
				continue
			}
			verdict, err := q.adj.Adjudicate(slate)
			if err != nil {
				continue // no quorum yet; wait for more replies
			}
			// A verdict: attribute every settled reply to it, convert the
			// losers into evidence, and cancel the stragglers.
			agreed := make([]bool, n)
			votes := 0
			disagreed := false
			for ep := range slate {
				if !settled[ep] || !slate[ep].OK() {
					continue
				}
				if q.eq(slate[ep].Value, verdict) {
					agreed[ep] = true
					votes++
					continue
				}
				disagreed = true
				obs.EmitReplicaOutvoted(o, name, v.endpoints[ep].Name, req)
				if q.cfg.Detector != nil {
					q.cfg.Detector.Accuse(v.endpoints[ep].Name)
				}
			}
			if disagreed {
				obs.EmitVoteDisagreement(o, name, req, answerClasses())
			}
			obs.EmitQuorumReached(o, name, req, votes, settledCount, n)
			finish(agreed, nil)
			cancelAll()
			return verdict, nil
		case <-ctx.Done():
			finish(nil, ctx.Err())
			return zero, ctx.Err()
		}
	}
	// Every replica settled and the adjudicator never produced a
	// verdict: too many failures, or a vote split past tolerance. The
	// split itself is still reportable evidence, but with no verdict no
	// individual replica can be blamed, so nobody is accused.
	_, err := q.adj.Adjudicate(slate)
	if answerClasses() > 1 {
		obs.EmitVoteDisagreement(o, name, req, answerClasses())
	}
	err = fmt.Errorf("quorum %s: %w", name, err)
	finish(nil, err)
	return zero, err
}

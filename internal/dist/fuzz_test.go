package dist

// FuzzDecodeFrame hammers the v2 wire path's decode side: readFrame
// (version byte, length prefix, CRC) and decodeEnvelope (gob payload
// carrying the trace words). The workload and checkpoint layers have
// had fuzz targets since their PRs; the frame codec is the third
// parser of untrusted bytes in the repo — every replica server reads
// frames straight off a network a fault injector deliberately
// corrupts — and the contract under corruption is: a typed error
// (ErrBadFrame, ErrFrameTooLarge, ErrVersionMismatch) or an io error,
// never a panic, never an allocation or read beyond the declared
// bounds.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func FuzzDecodeFrame(f *testing.F) {
	// Seed with valid frames so mutations explore the near-valid space
	// where parser bugs live: a ping envelope, a trace-carrying call
	// envelope, a raw payload, and the empty frame.
	seed := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			f.Fatalf("seed writeFrame: %v", err)
		}
		return buf.Bytes()
	}
	ping, err := encodeEnvelope(&envelope{ID: 1, Kind: kindPing})
	if err != nil {
		f.Fatal(err)
	}
	traced, err := encodeEnvelope(&envelope{
		ID: 7, Kind: kindCall, Payload: []byte("input"),
		TraceID: 0xdeadbeefcafe, SpanID: 0x1234,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed(ping))
	f.Add(seed(traced))
	f.Add(seed([]byte("hello")))
	f.Add(seed(nil))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})             // old wire version 1
	f.Add([]byte{2, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // hostile length

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			// Corruption must classify as a typed frame error or an io
			// error (truncated stream) — anything else is an escape.
			switch {
			case errors.Is(err, ErrBadFrame),
				errors.Is(err, ErrFrameTooLarge),
				errors.Is(err, ErrVersionMismatch),
				errors.Is(err, io.EOF),
				errors.Is(err, io.ErrUnexpectedEOF):
			default:
				t.Fatalf("readFrame(%d bytes): untyped error %v", len(data), err)
			}
			return
		}
		// No over-read: the payload cannot exceed what the stream held
		// past the header, nor the declared size cap.
		if len(payload) > len(data)-frameHeaderSize {
			t.Fatalf("readFrame returned %d payload bytes from a %d-byte stream", len(payload), len(data))
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("readFrame returned %d bytes, above MaxFrameSize", len(payload))
		}
		// A frame that round-trips must re-encode byte-identically —
		// the replay property campaigns rely on.
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		back, err := readFrame(&buf)
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("accepted frame did not round-trip: %v", err)
		}
		// The envelope layer under the frame: corrupt gob (including
		// mutated trace words) must yield ErrBadFrame, never panic.
		if env, err := decodeEnvelope(payload); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decodeEnvelope: untyped error %v", err)
			}
		} else if env == nil {
			t.Fatal("decodeEnvelope returned nil envelope and nil error")
		}
	})
}

// Package geneticfix implements automatic fault fixing with genetic
// programming (Weimer et al.'s "Automatically finding patches using
// genetic programming"; Arcuri and Yao's co-evolutionary bug fixing). The
// runtime keeps a test suite as the explicit adjudicator; when the
// program fails, a population of variants of the faulty program is
// evolved — mutation and crossover over the program's expression tree,
// tournament selection guided by the number of passing tests — until a
// variant passes the whole suite.
//
// The package defines a small integer expression language (constants,
// variables, arithmetic/min/max operators, and comparisons via If nodes)
// standing in for the subject programs of the paper's sources, plus the
// GP loop itself.
//
// Taxonomy position (paper Table 2): opportunistic intention, code
// redundancy (variants of the program are generated from the program
// itself), reactive explicit adjudicator (the test suite), Bohrbugs.
package geneticfix

import (
	"fmt"
	"strconv"
)

// Op is a binary arithmetic operator.
type Op int

const (
	// OpAdd is addition.
	OpAdd Op = iota + 1
	// OpSub is subtraction.
	OpSub
	// OpMul is multiplication.
	OpMul
	// OpMin is the minimum.
	OpMin
	// OpMax is the maximum.
	OpMax
)

// allOps lists the operators mutation can choose from.
var allOps = []Op{OpAdd, OpSub, OpMul, OpMin, OpMax}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return "?"
	}
}

// Cmp is a comparison operator used in If conditions.
type Cmp int

const (
	// CmpLT is <.
	CmpLT Cmp = iota + 1
	// CmpLE is <=.
	CmpLE
	// CmpEQ is ==.
	CmpEQ
	// CmpGT is >.
	CmpGT
)

// allCmps lists the comparators mutation can choose from.
var allCmps = []Cmp{CmpLT, CmpLE, CmpEQ, CmpGT}

// String implements fmt.Stringer.
func (c Cmp) String() string {
	switch c {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpEQ:
		return "=="
	case CmpGT:
		return ">"
	default:
		return "?"
	}
}

// Node is one node of a program's expression tree.
type Node interface {
	// Eval computes the node's value in the given variable environment.
	Eval(vars map[string]int) int
	// Clone returns a deep copy.
	Clone() Node
	// String renders the expression.
	String() string
}

// Const is an integer literal.
type Const struct {
	// Value is the literal value.
	Value int
}

var _ Node = Const{}

// Eval implements Node.
func (c Const) Eval(map[string]int) int { return c.Value }

// Clone implements Node.
func (c Const) Clone() Node { return c }

// String implements Node.
func (c Const) String() string { return strconv.Itoa(c.Value) }

// Var is a variable reference; unbound variables evaluate to 0.
type Var struct {
	// Name is the variable name.
	Name string
}

var _ Node = Var{}

// Eval implements Node.
func (v Var) Eval(vars map[string]int) int { return vars[v.Name] }

// Clone implements Node.
func (v Var) Clone() Node { return v }

// String implements Node.
func (v Var) String() string { return v.Name }

// Bin is a binary operation.
type Bin struct {
	// Op is the operator.
	Op Op
	// L and R are the operands.
	L, R Node
}

var _ Node = (*Bin)(nil)

// Eval implements Node.
func (b *Bin) Eval(vars map[string]int) int {
	l, r := b.L.Eval(vars), b.R.Eval(vars)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpMin:
		if l < r {
			return l
		}
		return r
	case OpMax:
		if l > r {
			return l
		}
		return r
	default:
		return 0
	}
}

// Clone implements Node.
func (b *Bin) Clone() Node {
	return &Bin{Op: b.Op, L: b.L.Clone(), R: b.R.Clone()}
}

// String implements Node.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// If is a conditional expression: if (L cmp R) then Then else Else.
type If struct {
	// Cmp is the comparison operator.
	Cmp Cmp
	// L and R are the compared expressions.
	L, R Node
	// Then and Else are the branches.
	Then, Else Node
}

var _ Node = (*If)(nil)

// Eval implements Node.
func (n *If) Eval(vars map[string]int) int {
	l, r := n.L.Eval(vars), n.R.Eval(vars)
	var cond bool
	switch n.Cmp {
	case CmpLT:
		cond = l < r
	case CmpLE:
		cond = l <= r
	case CmpEQ:
		cond = l == r
	case CmpGT:
		cond = l > r
	}
	if cond {
		return n.Then.Eval(vars)
	}
	return n.Else.Eval(vars)
}

// Clone implements Node.
func (n *If) Clone() Node {
	return &If{
		Cmp: n.Cmp,
		L:   n.L.Clone(), R: n.R.Clone(),
		Then: n.Then.Clone(), Else: n.Else.Clone(),
	}
}

// String implements Node.
func (n *If) String() string {
	return fmt.Sprintf("(if %s %s %s then %s else %s)", n.L, n.Cmp, n.R, n.Then, n.Else)
}

// size returns the number of nodes in the tree.
func size(n Node) int {
	switch t := n.(type) {
	case *Bin:
		return 1 + size(t.L) + size(t.R)
	case *If:
		return 1 + size(t.L) + size(t.R) + size(t.Then) + size(t.Else)
	default:
		return 1
	}
}

// nodeAt returns the i-th node in preorder (0-based), or nil when i is
// out of range.
func nodeAt(n Node, i int) Node {
	idx := 0
	var found Node
	var rec func(Node)
	rec = func(cur Node) {
		if found != nil {
			return
		}
		if idx == i {
			found = cur
			return
		}
		idx++
		switch t := cur.(type) {
		case *Bin:
			rec(t.L)
			rec(t.R)
		case *If:
			rec(t.L)
			rec(t.R)
			rec(t.Then)
			rec(t.Else)
		}
	}
	rec(n)
	return found
}

// replaceAt returns a deep copy of the tree with the i-th preorder node
// replaced by a clone of repl.
func replaceAt(n Node, i int, repl Node) Node {
	idx := 0
	var rec func(Node) Node
	rec = func(cur Node) Node {
		if idx == i {
			idx++
			// Skip the subtree being replaced in the preorder count.
			idx += size(cur) - 1
			return repl.Clone()
		}
		idx++
		switch t := cur.(type) {
		case *Bin:
			l := rec(t.L)
			r := rec(t.R)
			return &Bin{Op: t.Op, L: l, R: r}
		case *If:
			l := rec(t.L)
			r := rec(t.R)
			th := rec(t.Then)
			el := rec(t.Else)
			return &If{Cmp: t.Cmp, L: l, R: r, Then: th, Else: el}
		default:
			return cur.Clone()
		}
	}
	return rec(n)
}

package geneticfix

import (
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

// TestCase is one adjudicating test: the program must produce Want when
// evaluated in Vars.
type TestCase struct {
	// Vars is the variable environment.
	Vars map[string]int
	// Want is the expected result.
	Want int
}

// Fitness counts the test cases prog passes.
func Fitness(prog Node, suite []TestCase) int {
	passed := 0
	for _, tc := range suite {
		if prog.Eval(tc.Vars) == tc.Want {
			passed++
		}
	}
	return passed
}

// Config parameterizes the GP repair loop.
type Config struct {
	// PopulationSize is the number of program variants per generation.
	PopulationSize int
	// MaxGenerations bounds the evolution.
	MaxGenerations int
	// TournamentSize is the selection-tournament size.
	TournamentSize int
	// CrossoverProb is the probability an offspring is produced by
	// crossover (otherwise it is a mutated clone of one parent).
	CrossoverProb float64
	// MaxNodes bounds program growth (bloat control).
	MaxNodes int
	// Vars are the variable names mutation may introduce.
	Vars []string
	// Consts are the constant values mutation may introduce.
	Consts []int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig(vars []string) Config {
	vs := make([]string, len(vars))
	copy(vs, vars)
	return Config{
		PopulationSize: 64,
		MaxGenerations: 100,
		TournamentSize: 4,
		CrossoverProb:  0.5,
		MaxNodes:       40,
		Vars:           vs,
		Consts:         []int{0, 1, 2},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PopulationSize < 2 {
		return errors.New("geneticfix: population too small")
	}
	if c.MaxGenerations < 1 {
		return errors.New("geneticfix: need at least one generation")
	}
	if c.TournamentSize < 1 || c.TournamentSize > c.PopulationSize {
		return errors.New("geneticfix: bad tournament size")
	}
	if c.CrossoverProb < 0 || c.CrossoverProb > 1 {
		return errors.New("geneticfix: crossover probability out of range")
	}
	if c.MaxNodes < 3 {
		return errors.New("geneticfix: MaxNodes too small")
	}
	if len(c.Vars) == 0 {
		return errors.New("geneticfix: no variables")
	}
	if len(c.Consts) == 0 {
		return errors.New("geneticfix: no constants")
	}
	return nil
}

// Result reports a repair attempt.
type Result struct {
	// Fixed is the repaired program (nil when repair failed).
	Fixed Node
	// Generations is the number of generations evolved.
	Generations int
	// BestFitness is the best fitness reached.
	BestFitness int
	// Repaired reports whether the full suite passes.
	Repaired bool
}

// Repair evolves variants of the faulty program until one passes the
// whole test suite or the generation budget is exhausted. The initial
// population is seeded with the faulty program and mutants of it, as in
// Weimer et al.: the buggy program is mostly correct, so search starts
// near it.
func Repair(faulty Node, suite []TestCase, cfg Config, rng *xrand.Rand) (Result, error) {
	if faulty == nil {
		return Result{}, errors.New("geneticfix: nil program")
	}
	if len(suite) == 0 {
		return Result{}, errors.New("geneticfix: empty test suite")
	}
	if rng == nil {
		return Result{}, errors.New("geneticfix: nil rng")
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	target := len(suite)
	pop := make([]Node, cfg.PopulationSize)
	pop[0] = faulty.Clone()
	for i := 1; i < cfg.PopulationSize; i++ {
		pop[i] = mutate(faulty, cfg, rng)
	}

	fitness := make([]int, cfg.PopulationSize)
	evaluate := func() (bestIdx int) {
		for i, p := range pop {
			fitness[i] = Fitness(p, suite)
			if fitness[i] > fitness[bestIdx] {
				bestIdx = i
			}
		}
		return bestIdx
	}

	best := evaluate()
	if fitness[best] == target {
		return Result{Fixed: pop[best], Generations: 0, BestFitness: target, Repaired: true}, nil
	}

	for gen := 1; gen <= cfg.MaxGenerations; gen++ {
		next := make([]Node, cfg.PopulationSize)
		// Elitism: carry the best program over unchanged.
		next[0] = pop[best].Clone()
		for i := 1; i < cfg.PopulationSize; i++ {
			if rng.Float64() < cfg.CrossoverProb {
				a := pop[tournament(fitness, cfg.TournamentSize, rng)]
				b := pop[tournament(fitness, cfg.TournamentSize, rng)]
				next[i] = limit(crossover(a, b, rng), faulty, cfg)
			} else {
				parent := pop[tournament(fitness, cfg.TournamentSize, rng)]
				next[i] = limit(mutate(parent, cfg, rng), faulty, cfg)
			}
		}
		pop = next
		best = evaluate()
		if fitness[best] == target {
			return Result{Fixed: pop[best], Generations: gen, BestFitness: target, Repaired: true}, nil
		}
	}
	return Result{
		Fixed:       nil,
		Generations: cfg.MaxGenerations,
		BestFitness: fitness[best],
		Repaired:    false,
	}, nil
}

// tournament returns the index of the fittest of k random contenders.
func tournament(fitness []int, k int, rng *xrand.Rand) int {
	best := rng.Intn(len(fitness))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(fitness))
		if fitness[c] > fitness[best] {
			best = c
		}
	}
	return best
}

// limit enforces the node bound, falling back to a fresh mutant of the
// original when an offspring bloats past it.
func limit(n Node, faulty Node, cfg Config) Node {
	if size(n) <= cfg.MaxNodes {
		return n
	}
	return faulty.Clone()
}

// mutate applies one random edit: operator swap, comparator swap,
// constant perturbation, variable swap, or leaf replacement.
func mutate(n Node, cfg Config, rng *xrand.Rand) Node {
	c := n.Clone()
	pos := rng.Intn(size(c))
	target := nodeAt(c, pos)
	switch t := target.(type) {
	case *Bin:
		mutated := &Bin{Op: allOps[rng.Intn(len(allOps))], L: t.L, R: t.R}
		return replaceAt(c, pos, mutated)
	case *If:
		mutated := &If{Cmp: allCmps[rng.Intn(len(allCmps))], L: t.L, R: t.R, Then: t.Then, Else: t.Else}
		return replaceAt(c, pos, mutated)
	case Const:
		switch rng.Intn(3) {
		case 0:
			return replaceAt(c, pos, Const{Value: t.Value + 1})
		case 1:
			return replaceAt(c, pos, Const{Value: t.Value - 1})
		default:
			return replaceAt(c, pos, randomLeaf(cfg, rng))
		}
	case Var:
		return replaceAt(c, pos, randomLeaf(cfg, rng))
	default:
		return c
	}
}

// randomLeaf draws a random variable or constant.
func randomLeaf(cfg Config, rng *xrand.Rand) Node {
	if rng.Bool(0.5) {
		return Var{Name: cfg.Vars[rng.Intn(len(cfg.Vars))]}
	}
	return Const{Value: cfg.Consts[rng.Intn(len(cfg.Consts))]}
}

// crossover grafts a random subtree of b into a random position of a.
func crossover(a, b Node, rng *xrand.Rand) Node {
	posA := rng.Intn(size(a))
	posB := rng.Intn(size(b))
	graft := nodeAt(b, posB)
	if graft == nil {
		return a.Clone()
	}
	return replaceAt(a, posA, graft)
}

// FaultyMax builds the canonical faulty max(x, y) program with the
// branches swapped — the seeded Bohrbug used in tests and experiments.
func FaultyMax() Node {
	return &If{
		Cmp:  CmpLT,
		L:    Var{Name: "x"},
		R:    Var{Name: "y"},
		Then: Var{Name: "x"}, // bug: should be y
		Else: Var{Name: "y"}, // bug: should be x
	}
}

// MaxSuite returns a test suite for two-variable max.
func MaxSuite() []TestCase {
	cases := [][3]int{
		{1, 2, 2}, {2, 1, 2}, {0, 0, 0}, {-3, 5, 5}, {5, -3, 5},
		{7, 7, 7}, {-2, -8, -2}, {100, 99, 100}, {0, 1, 1}, {1, 0, 1},
	}
	suite := make([]TestCase, len(cases))
	for i, c := range cases {
		suite[i] = TestCase{Vars: map[string]int{"x": c[0], "y": c[1]}, Want: c[2]}
	}
	return suite
}

// String renders a Result for reports.
func (r Result) String() string {
	if r.Repaired {
		return fmt.Sprintf("repaired in %d generations: %s", r.Generations, r.Fixed)
	}
	return fmt.Sprintf("not repaired after %d generations (best fitness %d)", r.Generations, r.BestFitness)
}

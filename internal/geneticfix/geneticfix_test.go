package geneticfix

import (
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

func TestEval(t *testing.T) {
	vars := map[string]int{"x": 3, "y": 5}
	tests := []struct {
		name string
		prog Node
		want int
	}{
		{"const", Const{Value: 7}, 7},
		{"var", Var{Name: "x"}, 3},
		{"unbound var", Var{Name: "z"}, 0},
		{"add", &Bin{Op: OpAdd, L: Var{Name: "x"}, R: Var{Name: "y"}}, 8},
		{"sub", &Bin{Op: OpSub, L: Var{Name: "y"}, R: Var{Name: "x"}}, 2},
		{"mul", &Bin{Op: OpMul, L: Var{Name: "x"}, R: Const{Value: 4}}, 12},
		{"min", &Bin{Op: OpMin, L: Var{Name: "x"}, R: Var{Name: "y"}}, 3},
		{"max", &Bin{Op: OpMax, L: Var{Name: "x"}, R: Var{Name: "y"}}, 5},
		{"if lt", &If{Cmp: CmpLT, L: Var{Name: "x"}, R: Var{Name: "y"},
			Then: Const{Value: 1}, Else: Const{Value: 2}}, 1},
		{"if gt", &If{Cmp: CmpGT, L: Var{Name: "x"}, R: Var{Name: "y"},
			Then: Const{Value: 1}, Else: Const{Value: 2}}, 2},
		{"if eq", &If{Cmp: CmpEQ, L: Var{Name: "x"}, R: Const{Value: 3},
			Then: Const{Value: 9}, Else: Const{Value: 0}}, 9},
		{"if le", &If{Cmp: CmpLE, L: Var{Name: "x"}, R: Const{Value: 3},
			Then: Const{Value: 9}, Else: Const{Value: 0}}, 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.prog.Eval(vars); got != tt.want {
				t.Errorf("Eval = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := &Bin{Op: OpAdd, L: Var{Name: "x"}, R: &Bin{Op: OpMul, L: Const{Value: 2}, R: Var{Name: "y"}}}
	clone, ok := orig.Clone().(*Bin)
	if !ok {
		t.Fatal("clone type changed")
	}
	clone.Op = OpSub
	inner, ok := clone.R.(*Bin)
	if !ok {
		t.Fatal("inner type changed")
	}
	inner.Op = OpAdd
	if orig.Op != OpAdd {
		t.Error("clone aliases root")
	}
	if orig.R.(*Bin).Op != OpMul {
		t.Error("clone aliases inner node")
	}
}

func TestSizeAndNodeAt(t *testing.T) {
	prog := FaultyMax() // If with 4 leaf children: size 5
	if got := size(prog); got != 5 {
		t.Errorf("size = %d, want 5", got)
	}
	if n := nodeAt(prog, 0); n == nil {
		t.Fatal("nodeAt(0) = nil")
	}
	if _, ok := nodeAt(prog, 0).(*If); !ok {
		t.Error("preorder root should be the If")
	}
	if v, ok := nodeAt(prog, 1).(Var); !ok || v.Name != "x" {
		t.Errorf("nodeAt(1) = %v", nodeAt(prog, 1))
	}
	if nodeAt(prog, 99) != nil {
		t.Error("out-of-range index should yield nil")
	}
}

func TestReplaceAt(t *testing.T) {
	prog := &Bin{Op: OpAdd, L: Var{Name: "x"}, R: Var{Name: "y"}}
	// Replace the right operand (preorder index 2).
	out := replaceAt(prog, 2, Const{Value: 9})
	if got := out.Eval(map[string]int{"x": 1, "y": 100}); got != 10 {
		t.Errorf("after replace: Eval = %d, want 10", got)
	}
	// Original untouched.
	if got := prog.Eval(map[string]int{"x": 1, "y": 100}); got != 101 {
		t.Errorf("original mutated: %d", got)
	}
}

func TestReplaceAtRoot(t *testing.T) {
	prog := &Bin{Op: OpAdd, L: Var{Name: "x"}, R: Var{Name: "y"}}
	out := replaceAt(prog, 0, Const{Value: 5})
	if got := out.Eval(nil); got != 5 {
		t.Errorf("Eval = %d", got)
	}
}

// Property: replaceAt preserves total size when replacing a leaf with a
// leaf, and nodeAt visits exactly size(n) distinct positions.
func TestTreeWalkProperty(t *testing.T) {
	prog := FaultyMax()
	f := func(posRaw uint8) bool {
		pos := int(posRaw) % size(prog)
		out := replaceAt(prog, pos, Const{Value: 42})
		if nodeAt(prog, pos) == nil {
			return false
		}
		// Replacing any single node with a leaf can only shrink or keep
		// the size.
		return size(out) <= size(prog)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitness(t *testing.T) {
	suite := MaxSuite()
	correct := &If{
		Cmp: CmpLT, L: Var{Name: "x"}, R: Var{Name: "y"},
		Then: Var{Name: "y"}, Else: Var{Name: "x"},
	}
	if got := Fitness(correct, suite); got != len(suite) {
		t.Errorf("correct program fitness = %d, want %d", got, len(suite))
	}
	faulty := FaultyMax()
	if got := Fitness(faulty, suite); got >= len(suite) {
		t.Errorf("faulty program fitness = %d, should fail some tests", got)
	}
}

func TestRepairFixesSwappedBranches(t *testing.T) {
	cfg := DefaultConfig([]string{"x", "y"})
	res, err := Repair(FaultyMax(), MaxSuite(), cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired {
		t.Fatalf("not repaired: %s", res)
	}
	if got := Fitness(res.Fixed, MaxSuite()); got != len(MaxSuite()) {
		t.Errorf("fixed program fitness = %d", got)
	}
	// The fix must generalize beyond the suite.
	checks := [][3]int{{13, 4, 13}, {-9, -1, -1}, {50, 50, 50}}
	for _, c := range checks {
		if got := res.Fixed.Eval(map[string]int{"x": c[0], "y": c[1]}); got != c[2] {
			t.Errorf("fixed(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestRepairWrongOperator(t *testing.T) {
	// sum(x, y) seeded with the wrong operator: x - y.
	faulty := &Bin{Op: OpSub, L: Var{Name: "x"}, R: Var{Name: "y"}}
	suite := []TestCase{
		{Vars: map[string]int{"x": 1, "y": 2}, Want: 3},
		{Vars: map[string]int{"x": 5, "y": 5}, Want: 10},
		{Vars: map[string]int{"x": -2, "y": 7}, Want: 5},
		{Vars: map[string]int{"x": 0, "y": 0}, Want: 0},
		{Vars: map[string]int{"x": 10, "y": -10}, Want: 0},
	}
	cfg := DefaultConfig([]string{"x", "y"})
	res, err := Repair(faulty, suite, cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired {
		t.Fatalf("not repaired: %s", res)
	}
}

func TestRepairAlreadyCorrectProgram(t *testing.T) {
	correct := &Bin{Op: OpAdd, L: Var{Name: "x"}, R: Var{Name: "y"}}
	suite := []TestCase{{Vars: map[string]int{"x": 1, "y": 2}, Want: 3}}
	res, err := Repair(correct, suite, DefaultConfig([]string{"x", "y"}), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired || res.Generations != 0 {
		t.Errorf("result = %+v, want immediate success", res)
	}
}

func TestRepairValidation(t *testing.T) {
	cfg := DefaultConfig([]string{"x"})
	suite := []TestCase{{Vars: map[string]int{"x": 1}, Want: 1}}
	if _, err := Repair(nil, suite, cfg, xrand.New(1)); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Repair(Var{Name: "x"}, nil, cfg, xrand.New(1)); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := Repair(Var{Name: "x"}, suite, cfg, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := cfg
	bad.PopulationSize = 1
	if _, err := Repair(Var{Name: "x"}, suite, bad, xrand.New(1)); err == nil {
		t.Error("bad config accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig([]string{"x"})
	if err := base.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.PopulationSize = 1 },
		func(c *Config) { c.MaxGenerations = 0 },
		func(c *Config) { c.TournamentSize = 0 },
		func(c *Config) { c.TournamentSize = c.PopulationSize + 1 },
		func(c *Config) { c.CrossoverProb = 1.5 },
		func(c *Config) { c.MaxNodes = 1 },
		func(c *Config) { c.Vars = nil },
		func(c *Config) { c.Consts = nil },
	}
	for i, m := range mutations {
		c := DefaultConfig([]string{"x"})
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestMutateProducesValidPrograms(t *testing.T) {
	cfg := DefaultConfig([]string{"x", "y"})
	rng := xrand.New(5)
	prog := FaultyMax()
	for i := 0; i < 200; i++ {
		m := mutate(prog, cfg, rng)
		if m == nil {
			t.Fatal("mutate returned nil")
		}
		_ = m.Eval(map[string]int{"x": 1, "y": 2}) // must not panic
	}
}

func TestCrossoverProducesValidPrograms(t *testing.T) {
	rng := xrand.New(6)
	a := FaultyMax()
	b := &Bin{Op: OpAdd, L: Var{Name: "x"}, R: Const{Value: 1}}
	for i := 0; i < 200; i++ {
		c := crossover(a, b, rng)
		if c == nil {
			t.Fatal("crossover returned nil")
		}
		_ = c.Eval(map[string]int{"x": 1, "y": 2})
	}
}

func TestStringRenderings(t *testing.T) {
	prog := FaultyMax()
	if prog.String() == "" {
		t.Error("empty program rendering")
	}
	if OpAdd.String() != "+" || OpMin.String() != "min" || Op(0).String() != "?" {
		t.Error("Op.String incorrect")
	}
	if CmpLT.String() != "<" || CmpEQ.String() != "==" || Cmp(0).String() != "?" {
		t.Error("Cmp.String incorrect")
	}
	r := Result{Repaired: true, Generations: 3, Fixed: Const{Value: 1}}
	if r.String() == "" {
		t.Error("Result.String empty")
	}
	r2 := Result{Repaired: false, Generations: 100, BestFitness: 8}
	if r2.String() == "" {
		t.Error("Result.String empty for failure")
	}
}

func TestRepairDeterministicForSeed(t *testing.T) {
	cfg := DefaultConfig([]string{"x", "y"})
	r1, err := Repair(FaultyMax(), MaxSuite(), cfg, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Repair(FaultyMax(), MaxSuite(), cfg, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Generations != r2.Generations || r1.Repaired != r2.Repaired {
		t.Errorf("nondeterministic repair: %+v vs %+v", r1, r2)
	}
}

package workaround

import (
	"context"
	"fmt"
	"sort"
)

// IntSet is the reference intrinsically-redundant component used by
// tests, examples and experiments: a set of integers whose interface
// offers the same functionality through different operation combinations
// (add one element, add a whole range), which is precisely the redundancy
// automatic workarounds exploit.
//
// The component ships with a seeded Bohrbug: AddRange silently drops the
// upper bound of spans of at least BugSpan elements — the kind of
// off-by-one boundary fault that survives testing on small inputs.
type IntSet struct {
	values map[int]bool

	// BugSpan activates the seeded bug for ranges where hi-lo >=
	// BugSpan; 0 disables the bug.
	BugSpan int
}

var _ Component = (*IntSet)(nil)

// NewIntSet creates an empty set with the seeded bug active for spans of
// at least bugSpan (0 disables the bug).
func NewIntSet(bugSpan int) *IntSet {
	return &IntSet{values: make(map[int]bool), BugSpan: bugSpan}
}

// Apply implements Component. Supported operations:
//
//	add(x)          — insert x
//	remove(x)       — delete x
//	clear()         — empty the set
//	addrange(lo,hi) — insert lo..hi inclusive (bugged for wide spans)
func (s *IntSet) Apply(_ context.Context, op Op) error {
	switch op.Name {
	case "add":
		if len(op.Args) != 1 {
			return fmt.Errorf("add wants 1 arg, got %d", len(op.Args))
		}
		s.values[op.Args[0]] = true
	case "remove":
		if len(op.Args) != 1 {
			return fmt.Errorf("remove wants 1 arg, got %d", len(op.Args))
		}
		delete(s.values, op.Args[0])
	case "clear":
		s.values = make(map[int]bool)
	case "addrange":
		if len(op.Args) != 2 {
			return fmt.Errorf("addrange wants 2 args, got %d", len(op.Args))
		}
		lo, hi := op.Args[0], op.Args[1]
		if lo > hi {
			return fmt.Errorf("addrange %d > %d", lo, hi)
		}
		end := hi
		if s.BugSpan > 0 && hi-lo >= s.BugSpan {
			end = hi - 1 // seeded bug: the upper bound is dropped
		}
		for v := lo; v <= end; v++ {
			s.values[v] = true
		}
	default:
		return fmt.Errorf("unknown op %q", op.Name)
	}
	return nil
}

// Reset implements Component.
func (s *IntSet) Reset(context.Context) error {
	s.values = make(map[int]bool)
	return nil
}

// Contents returns the sorted set contents.
func (s *IntSet) Contents() []int {
	out := make([]int, 0, len(s.values))
	for v := range s.values {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Contains reports membership.
func (s *IntSet) Contains(v int) bool { return s.values[v] }

// IntSetRules returns the rewriting rules encoding IntSet's intrinsic
// redundancy, ranked by likelihood of success:
//
//   - split-range: addrange(lo,hi) ≡ addrange(lo,mid); addrange(mid+1,hi)
//   - expand-range: addrange(lo,hi) ≡ add(lo); ...; add(hi) for narrow
//     spans
//   - add-as-range: add(x) ≡ addrange(x,x)
func IntSetRules() []Rule {
	return []Rule{
		{
			Name:     "split-range",
			Match:    []string{"addrange"},
			Priority: 10,
			Replace: func(w []Op) []Op {
				lo, hi := w[0].Args[0], w[0].Args[1]
				if hi <= lo {
					return nil
				}
				mid := lo + (hi-lo)/2
				return []Op{
					{Name: "addrange", Args: []int{lo, mid}},
					{Name: "addrange", Args: []int{mid + 1, hi}},
				}
			},
		},
		{
			Name:     "expand-range",
			Match:    []string{"addrange"},
			Priority: 5,
			Replace: func(w []Op) []Op {
				lo, hi := w[0].Args[0], w[0].Args[1]
				if hi-lo > 16 {
					return nil // too long to expand
				}
				out := make([]Op, 0, hi-lo+1)
				for v := lo; v <= hi; v++ {
					out = append(out, Op{Name: "add", Args: []int{v}})
				}
				return out
			},
		},
		{
			Name:     "add-as-range",
			Match:    []string{"add"},
			Priority: 1,
			Replace: func(w []Op) []Op {
				x := w[0].Args[0]
				return []Op{{Name: "addrange", Args: []int{x, x}}}
			},
		},
	}
}

// RangeOracle returns an oracle asserting the set contains exactly lo..hi.
func RangeOracle(lo, hi int) Oracle {
	return func(_ context.Context, c Component) error {
		s, ok := c.(*IntSet)
		if !ok {
			return fmt.Errorf("oracle wants *IntSet, got %T", c)
		}
		for v := lo; v <= hi; v++ {
			if !s.Contains(v) {
				return fmt.Errorf("missing element %d", v)
			}
		}
		if got := len(s.Contents()); got != hi-lo+1 {
			return fmt.Errorf("set has %d elements, want %d", got, hi-lo+1)
		}
		return nil
	}
}

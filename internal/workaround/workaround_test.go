package workaround

import (
	"context"
	"errors"
	"testing"
)

func engine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(IntSetRules())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestIntSetBasicOps(t *testing.T) {
	s := NewIntSet(0)
	ctx := context.Background()
	ops := Sequence{
		{Name: "add", Args: []int{3}},
		{Name: "add", Args: []int{1}},
		{Name: "remove", Args: []int{3}},
		{Name: "addrange", Args: []int{5, 7}},
	}
	for _, op := range ops {
		if err := s.Apply(ctx, op); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	got := s.Contents()
	want := []int{1, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("contents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents = %v, want %v", got, want)
		}
	}
}

func TestIntSetSeededBug(t *testing.T) {
	s := NewIntSet(3)
	ctx := context.Background()
	if err := s.Apply(ctx, Op{Name: "addrange", Args: []int{0, 5}}); err != nil {
		t.Fatal(err)
	}
	if s.Contains(5) {
		t.Error("bug did not drop the upper bound")
	}
	if !s.Contains(4) {
		t.Error("bug dropped more than the upper bound")
	}
	// Narrow spans are unaffected.
	if err := s.Apply(ctx, Op{Name: "addrange", Args: []int{10, 11}}); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(11) {
		t.Error("narrow span affected by bug")
	}
}

func TestIntSetApplyValidation(t *testing.T) {
	s := NewIntSet(0)
	ctx := context.Background()
	bad := []Op{
		{Name: "add"},
		{Name: "remove", Args: []int{1, 2}},
		{Name: "addrange", Args: []int{1}},
		{Name: "addrange", Args: []int{5, 1}},
		{Name: "nosuch"},
	}
	for _, op := range bad {
		if err := s.Apply(ctx, op); err == nil {
			t.Errorf("op %s accepted", op)
		}
	}
}

func TestCandidatesGeneratedAndRanked(t *testing.T) {
	e := engine(t)
	seq := Sequence{{Name: "addrange", Args: []int{0, 5}}}
	cands := e.Candidates(seq)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2 (split + expand)", len(cands))
	}
	if cands[0].Rule != "split-range" || cands[1].Rule != "expand-range" {
		t.Errorf("ranking = [%s, %s], want [split-range, expand-range]",
			cands[0].Rule, cands[1].Rule)
	}
}

func TestCandidatesDeclineAndDedup(t *testing.T) {
	e := engine(t)
	// addrange(3,3) cannot be split (hi == lo declines) and its expansion
	// is add(3); add-as-range of nothing (no "add" in original).
	seq := Sequence{{Name: "addrange", Args: []int{3, 3}}}
	cands := e.Candidates(seq)
	if len(cands) != 1 || cands[0].Rule != "expand-range" {
		t.Errorf("candidates = %+v", cands)
	}
}

func TestCandidatesRespectMaxCandidates(t *testing.T) {
	e := engine(t)
	e.MaxCandidates = 1
	seq := Sequence{{Name: "addrange", Args: []int{0, 5}}}
	if got := len(e.Candidates(seq)); got != 1 {
		t.Errorf("candidates = %d, want capped 1", got)
	}
}

func TestExecuteHealthySequenceNeedsNoWorkaround(t *testing.T) {
	e := engine(t)
	s := NewIntSet(0) // bug disabled
	out, err := e.Execute(context.Background(), s,
		Sequence{{Name: "addrange", Args: []int{0, 5}}}, RangeOracle(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.WorkedAround || out.Tried != 0 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestExecuteFindsWorkaroundForSeededBug(t *testing.T) {
	e := engine(t)
	s := NewIntSet(3)
	out, err := e.Execute(context.Background(), s,
		Sequence{{Name: "addrange", Args: []int{0, 5}}}, RangeOracle(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.WorkedAround {
		t.Fatal("no workaround found")
	}
	// split-range yields addrange(0,2); addrange(3,5): spans of 2 evade
	// the bug and are tried first by priority.
	if out.Rule != "split-range" {
		t.Errorf("rule = %s, want split-range", out.Rule)
	}
	if !s.Contains(5) {
		t.Error("workaround did not produce the full range")
	}
	if e.Healed != 1 || e.Attempted != 1 {
		t.Errorf("engine counters = healed %d, attempted %d", e.Healed, e.Attempted)
	}
}

func TestExecuteFallsThroughToLowerPriorityRule(t *testing.T) {
	e := engine(t)
	// Bug span 2: split of (0,5) gives spans of 2, still buggy; the
	// expansion into single adds works.
	s := NewIntSet(2)
	out, err := e.Execute(context.Background(), s,
		Sequence{{Name: "addrange", Args: []int{0, 5}}}, RangeOracle(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rule != "expand-range" {
		t.Errorf("rule = %s, want expand-range", out.Rule)
	}
	if out.Tried != 2 {
		t.Errorf("tried = %d, want 2", out.Tried)
	}
}

func TestExecuteNoWorkaroundExists(t *testing.T) {
	rules := []Rule{{
		Name:  "futile",
		Match: []string{"addrange"},
		Replace: func(w []Op) []Op {
			return []Op{w[0]} // rewriting to itself-equivalent buggy op
		},
	}}
	// The futile rule rewrites to the identical op, which dedup removes,
	// leaving no candidates.
	e, err := NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	s := NewIntSet(3)
	_, err = e.Execute(context.Background(), s,
		Sequence{{Name: "addrange", Args: []int{0, 5}}}, RangeOracle(0, 5))
	if !errors.Is(err, ErrNoWorkaround) {
		t.Errorf("err = %v", err)
	}
}

func TestExecuteResetsBetweenCandidates(t *testing.T) {
	e := engine(t)
	s := NewIntSet(2)
	// With bug span 2 the original and the split both fail; ensure the
	// final successful expansion starts from a clean state (no leftover
	// partial elements beyond the oracle's exact-count check).
	out, err := e.Execute(context.Background(), s,
		Sequence{{Name: "addrange", Args: []int{10, 15}}}, RangeOracle(10, 15))
	if err != nil {
		t.Fatal(err)
	}
	if !out.WorkedAround {
		t.Fatal("no workaround")
	}
	if got := len(s.Contents()); got != 6 {
		t.Errorf("contents = %v", s.Contents())
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	e := engine(t)
	s := NewIntSet(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Execute(ctx, s,
		Sequence{{Name: "addrange", Args: []int{0, 5}}}, RangeOracle(0, 5))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine([]Rule{{Name: "bad"}}); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := NewEngine([]Rule{{Name: "bad", Match: []string{"x"}}}); err == nil {
		t.Error("nil Replace accepted")
	}
	e := engine(t)
	if _, err := e.Execute(context.Background(), nil, nil, RangeOracle(0, 0)); err == nil {
		t.Error("nil component accepted")
	}
	if _, err := e.Execute(context.Background(), NewIntSet(0), nil, nil); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestSequenceAndOpString(t *testing.T) {
	seq := Sequence{
		{Name: "clear"},
		{Name: "addrange", Args: []int{1, 3}},
	}
	if got := seq.String(); got != "clear; addrange(1,3)" {
		t.Errorf("String = %q", got)
	}
}

func TestWorkaroundInLongerSequence(t *testing.T) {
	e := engine(t)
	s := NewIntSet(3)
	seq := Sequence{
		{Name: "add", Args: []int{100}},
		{Name: "addrange", Args: []int{0, 5}},
		{Name: "remove", Args: []int{100}},
	}
	out, err := e.Execute(context.Background(), s, seq, RangeOracle(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.WorkedAround {
		t.Fatal("no workaround in context")
	}
	if s.Contains(100) {
		t.Error("surrounding operations were lost in the rewrite")
	}
}

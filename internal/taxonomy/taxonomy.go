// Package taxonomy encodes the paper's taxonomy itself: the
// classification scheme of Table 1 and the classification of all
// seventeen surveyed technique families of Table 2, each mapped to the
// package of this repository that implements it. The tables are
// regenerated from these records (cmd/taxonomy), and golden tests assert
// every cell against the paper.
package taxonomy

import (
	"fmt"
	"strings"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// Technique is one row of the paper's Table 2, extended with the
// implementing package and the architectural pattern discussed in the
// paper's Sections 2-3.
type Technique struct {
	// Name is the technique family name as printed in Table 2.
	Name string
	// References cites the technique's primary sources (paper reference
	// numbers).
	References string
	// Intention is the intention dimension (deliberate/opportunistic).
	Intention core.Intention
	// Type is the redundancy-type dimension (code/data/environment).
	Type core.RedundancyType
	// Adjudicator is the triggers-and-adjudicators dimension.
	Adjudicator core.AdjudicatorKind
	// Faults is the fault-class dimension.
	Faults []core.FaultClass
	// Pattern is the architectural pattern the technique instantiates.
	Pattern core.Pattern
	// Package is the implementing package in this repository.
	Package string
	// Experiment is the id of the experiment exercising the technique.
	Experiment string
}

// faultsString renders the fault classes as in the paper ("Bohrbugs
// malicious" for multi-class rows).
func (t Technique) faultsString() string {
	parts := make([]string, len(t.Faults))
	for i, f := range t.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ", ")
}

// All returns the seventeen technique families in the paper's Table 2
// order.
func All() []Technique {
	return []Technique{
		{
			Name: "N-version programming", References: "[9,29-31]",
			Intention: core.Deliberate, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveImplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.ParallelEvaluationPattern,
			Package:     "internal/nvp", Experiment: "E4/E5",
		},
		{
			Name: "Recovery blocks", References: "[28,29]",
			Intention: core.Deliberate, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.SequentialAlternativesPattern,
			Package:     "internal/recovery", Experiment: "E14",
		},
		{
			Name: "Self-checking programming", References: "[32,29,33]",
			Intention: core.Deliberate, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveBoth,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.ParallelSelectionPattern,
			Package:     "internal/selfcheck", Experiment: "E14",
		},
		{
			Name: "Self-optimizing code", References: "[34,35]",
			Intention: core.Deliberate, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.SequentialAlternativesPattern,
			Package:     "internal/selfopt", Experiment: "E17",
		},
		{
			Name: "Exception handling, rule engines", References: "[36-38]",
			Intention: core.Deliberate, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.SequentialAlternativesPattern,
			Package:     "internal/registry", Experiment: "E13",
		},
		{
			Name: "Wrappers", References: "[39-42]",
			Intention: core.Deliberate, Type: core.CodeRedundancy,
			Adjudicator: core.Preventive,
			Faults:      []core.FaultClass{core.Bohrbugs, core.MaliciousFaults},
			Pattern:     core.IntraComponentPattern,
			Package:     "internal/wrapper", Experiment: "E16",
		},
		{
			Name: "Robust data structures, audits", References: "[43,44]",
			Intention: core.Deliberate, Type: core.DataRedundancy,
			Adjudicator: core.ReactiveImplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.IntraComponentPattern,
			Package:     "internal/robustdata", Experiment: "E15",
		},
		{
			Name: "Data diversity", References: "[26]",
			Intention: core.Deliberate, Type: core.DataRedundancy,
			Adjudicator: core.ReactiveBoth,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.SequentialAlternativesPattern,
			Package:     "internal/datadiv", Experiment: "E8",
		},
		{
			Name: "Data diversity for security", References: "[45]",
			Intention: core.Deliberate, Type: core.DataRedundancy,
			Adjudicator: core.ReactiveImplicit,
			Faults:      []core.FaultClass{core.MaliciousFaults},
			Pattern:     core.ParallelEvaluationPattern,
			Package:     "internal/datadiv", Experiment: "E10",
		},
		{
			Name: "Rejuvenation", References: "[46,15,17]",
			Intention: core.Deliberate, Type: core.EnvironmentRedundancy,
			Adjudicator: core.Preventive,
			Faults:      []core.FaultClass{core.Heisenbugs},
			Pattern:     core.EnvironmentPattern,
			Package:     "internal/rejuv", Experiment: "E6",
		},
		{
			Name: "Environment perturbation", References: "[27]",
			Intention: core.Deliberate, Type: core.EnvironmentRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.EnvironmentPattern,
			Package:     "internal/envperturb", Experiment: "E9",
		},
		{
			Name: "Process replicas", References: "[47,48]",
			Intention: core.Deliberate, Type: core.EnvironmentRedundancy,
			Adjudicator: core.ReactiveImplicit,
			Faults:      []core.FaultClass{core.MaliciousFaults},
			Pattern:     core.ParallelEvaluationPattern,
			Package:     "internal/replica", Experiment: "E10",
		},
		{
			Name: "Dynamic service substitution", References: "[10,49,11,50]",
			Intention: core.Opportunistic, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.SequentialAlternativesPattern,
			Package:     "internal/service", Experiment: "E13",
		},
		{
			Name: "Fault fixing, genetic programming", References: "[51,52]",
			Intention: core.Opportunistic, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.Bohrbugs},
			Pattern:     core.IntraComponentPattern,
			Package:     "internal/geneticfix", Experiment: "E12",
		},
		{
			Name: "Automatic workarounds", References: "[53,25]",
			Intention: core.Opportunistic, Type: core.CodeRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.DevelopmentFaults},
			Pattern:     core.IntraComponentPattern,
			Package:     "internal/workaround", Experiment: "E11",
		},
		{
			Name: "Checkpoint-recovery", References: "[21]",
			Intention: core.Opportunistic, Type: core.EnvironmentRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.Heisenbugs},
			Pattern:     core.EnvironmentPattern,
			Package:     "internal/checkpoint", Experiment: "E9",
		},
		{
			Name: "Reboot and micro-reboot", References: "[12,13]",
			Intention: core.Opportunistic, Type: core.EnvironmentRedundancy,
			Adjudicator: core.ReactiveExplicit,
			Faults:      []core.FaultClass{core.Heisenbugs},
			Pattern:     core.EnvironmentPattern,
			Package:     "internal/microreboot", Experiment: "E7",
		},
	}
}

// ByName returns the technique with the given Table 2 name.
func ByName(name string) (Technique, error) {
	for _, t := range All() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technique{}, fmt.Errorf("taxonomy: unknown technique %q", name)
}

// Table1 regenerates the paper's Table 1: the classification scheme for
// redundancy-based mechanisms.
func Table1() *stats.Table {
	t := stats.NewTable("Table 1. Taxonomy for redundancy based mechanisms",
		"Dimension", "Values")
	t.AddRow("Intention", "deliberate")
	t.AddRow("", "opportunistic")
	t.AddRow("Type", "code")
	t.AddRow("", "data")
	t.AddRow("", "environment")
	t.AddRow("Triggers and adjudicators", "preventive (implicit adjudicator)")
	t.AddRow("", "reactive: implicit adjudicator")
	t.AddRow("", "reactive: explicit adjudicator")
	t.AddRow("Faults addressed by redundancy", "interaction - malicious")
	t.AddRow("", "development: Bohrbugs")
	t.AddRow("", "development: Heisenbugs")
	return t
}

// Table2 regenerates the paper's Table 2: the classification of all
// seventeen technique families on the four dimensions.
func Table2() *stats.Table {
	t := stats.NewTable("Table 2. A taxonomy of redundancy for fault tolerance and self-managed systems",
		"Technique", "Intention", "Type", "Adjudicator", "Faults")
	for _, tech := range All() {
		t.AddRow(tech.Name, tech.Intention.String(), tech.Type.String(),
			tech.Adjudicator.String(), tech.faultsString())
	}
	return t
}

// TableImplementation renders the extended mapping from techniques to
// implementing packages, patterns and experiments — the repository's
// per-experiment index.
func TableImplementation() *stats.Table {
	t := stats.NewTable("Technique implementations in this repository",
		"Technique", "Pattern", "Package", "Experiment")
	for _, tech := range All() {
		t.AddRow(tech.Name, tech.Pattern.String(), tech.Package, tech.Experiment)
	}
	return t
}

// ByIntention returns the techniques with the given intention, in Table 2
// order.
func ByIntention(i core.Intention) []Technique {
	var out []Technique
	for _, t := range All() {
		if t.Intention == i {
			out = append(out, t)
		}
	}
	return out
}

// ByType returns the techniques with the given redundancy type, in
// Table 2 order.
func ByType(rt core.RedundancyType) []Technique {
	var out []Technique
	for _, t := range All() {
		if t.Type == rt {
			out = append(out, t)
		}
	}
	return out
}

// ByFaultClass returns the techniques addressing the given fault class,
// in Table 2 order.
func ByFaultClass(fc core.FaultClass) []Technique {
	var out []Technique
	for _, t := range All() {
		for _, f := range t.Faults {
			if f == fc {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// ByPattern returns the techniques instantiating the given architectural
// pattern, in Table 2 order.
func ByPattern(p core.Pattern) []Technique {
	var out []Technique
	for _, t := range All() {
		if t.Pattern == p {
			out = append(out, t)
		}
	}
	return out
}

package taxonomy

import (
	"strings"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

// TestTable2MatchesPaper is the golden test for the reproduction's
// central artifact: every cell of Table 2 as printed in the paper.
func TestTable2MatchesPaper(t *testing.T) {
	// name -> {intention, type, adjudicator, faults} exactly as in the
	// paper's Table 2.
	want := map[string][4]string{
		"N-version programming":             {"deliberate", "code", "reactive, implicit", "development"},
		"Recovery blocks":                   {"deliberate", "code", "reactive, explicit", "development"},
		"Self-checking programming":         {"deliberate", "code", "reactive, expl./impl.", "development"},
		"Self-optimizing code":              {"deliberate", "code", "reactive, explicit", "development"},
		"Exception handling, rule engines":  {"deliberate", "code", "reactive, explicit", "development"},
		"Wrappers":                          {"deliberate", "code", "preventive", "Bohrbugs, malicious"},
		"Robust data structures, audits":    {"deliberate", "data", "reactive, implicit", "development"},
		"Data diversity":                    {"deliberate", "data", "reactive, expl./impl.", "development"},
		"Data diversity for security":       {"deliberate", "data", "reactive, implicit", "malicious"},
		"Rejuvenation":                      {"deliberate", "environment", "preventive", "Heisenbugs"},
		"Environment perturbation":          {"deliberate", "environment", "reactive, explicit", "development"},
		"Process replicas":                  {"deliberate", "environment", "reactive, implicit", "malicious"},
		"Dynamic service substitution":      {"opportunistic", "code", "reactive, explicit", "development"},
		"Fault fixing, genetic programming": {"opportunistic", "code", "reactive, explicit", "Bohrbugs"},
		"Automatic workarounds":             {"opportunistic", "code", "reactive, explicit", "development"},
		"Checkpoint-recovery":               {"opportunistic", "environment", "reactive, explicit", "Heisenbugs"},
		"Reboot and micro-reboot":           {"opportunistic", "environment", "reactive, explicit", "Heisenbugs"},
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("got %d techniques, paper lists %d", len(all), len(want))
	}
	for _, tech := range all {
		w, ok := want[tech.Name]
		if !ok {
			t.Errorf("unexpected technique %q", tech.Name)
			continue
		}
		if got := tech.Intention.String(); got != w[0] {
			t.Errorf("%s intention = %q, want %q", tech.Name, got, w[0])
		}
		if got := tech.Type.String(); got != w[1] {
			t.Errorf("%s type = %q, want %q", tech.Name, got, w[1])
		}
		if got := tech.Adjudicator.String(); got != w[2] {
			t.Errorf("%s adjudicator = %q, want %q", tech.Name, got, w[2])
		}
		if got := tech.faultsString(); got != w[3] {
			t.Errorf("%s faults = %q, want %q", tech.Name, got, w[3])
		}
	}
}

// TestTable2PaperOrder asserts the paper's row order is preserved.
func TestTable2PaperOrder(t *testing.T) {
	wantOrder := []string{
		"N-version programming",
		"Recovery blocks",
		"Self-checking programming",
		"Self-optimizing code",
		"Exception handling, rule engines",
		"Wrappers",
		"Robust data structures, audits",
		"Data diversity",
		"Data diversity for security",
		"Rejuvenation",
		"Environment perturbation",
		"Process replicas",
		"Dynamic service substitution",
		"Fault fixing, genetic programming",
		"Automatic workarounds",
		"Checkpoint-recovery",
		"Reboot and micro-reboot",
	}
	all := All()
	for i, name := range wantOrder {
		if all[i].Name != name {
			t.Errorf("row %d = %q, want %q", i, all[i].Name, name)
		}
	}
}

func TestEveryTechniqueHasImplementationMetadata(t *testing.T) {
	for _, tech := range All() {
		if tech.Package == "" {
			t.Errorf("%s has no implementing package", tech.Name)
		}
		if !strings.HasPrefix(tech.Package, "internal/") {
			t.Errorf("%s package %q is not internal", tech.Name, tech.Package)
		}
		if tech.Experiment == "" {
			t.Errorf("%s has no experiment", tech.Name)
		}
		if tech.References == "" {
			t.Errorf("%s has no references", tech.Name)
		}
		if tech.Pattern == 0 {
			t.Errorf("%s has no pattern", tech.Name)
		}
	}
}

func TestPatternsMatchPaperSection2(t *testing.T) {
	wantPatterns := map[string]core.Pattern{
		"N-version programming":       core.ParallelEvaluationPattern,
		"Recovery blocks":             core.SequentialAlternativesPattern,
		"Self-checking programming":   core.ParallelSelectionPattern,
		"Self-optimizing code":        core.SequentialAlternativesPattern,
		"Automatic workarounds":       core.IntraComponentPattern,
		"Wrappers":                    core.IntraComponentPattern,
		"Data diversity for security": core.ParallelEvaluationPattern,
	}
	for name, want := range wantPatterns {
		tech, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if tech.Pattern != want {
			t.Errorf("%s pattern = %v, want %v", name, tech.Pattern, want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Rejuvenation"); err != nil {
		t.Errorf("ByName(Rejuvenation) = %v", err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1().String()
	for _, fragment := range []string{
		"Intention", "deliberate", "opportunistic",
		"Type", "code", "data", "environment",
		"Triggers and adjudicators", "preventive", "reactive",
		"Faults addressed by redundancy", "Bohrbugs", "Heisenbugs", "malicious",
	} {
		if !strings.Contains(out, fragment) {
			t.Errorf("Table 1 misses %q:\n%s", fragment, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	tbl := Table2()
	if tbl.NumRows() != 17 {
		t.Errorf("Table 2 has %d rows, want 17", tbl.NumRows())
	}
	out := tbl.String()
	if !strings.Contains(out, "N-version programming") ||
		!strings.Contains(out, "Reboot and micro-reboot") {
		t.Errorf("Table 2 missing rows:\n%s", out)
	}
}

func TestTableImplementationRendering(t *testing.T) {
	tbl := TableImplementation()
	if tbl.NumRows() != 17 {
		t.Errorf("implementation table has %d rows", tbl.NumRows())
	}
	out := tbl.String()
	for _, pkg := range []string{
		"internal/nvp", "internal/recovery", "internal/selfcheck",
		"internal/selfopt", "internal/registry", "internal/wrapper",
		"internal/robustdata", "internal/datadiv", "internal/rejuv",
		"internal/envperturb", "internal/replica", "internal/service",
		"internal/geneticfix", "internal/workaround", "internal/checkpoint",
		"internal/microreboot",
	} {
		if !strings.Contains(out, pkg) {
			t.Errorf("implementation table misses %s", pkg)
		}
	}
}

func TestDimensionQueries(t *testing.T) {
	deliberate := ByIntention(core.Deliberate)
	opportunistic := ByIntention(core.Opportunistic)
	if len(deliberate)+len(opportunistic) != len(All()) {
		t.Errorf("intention partition broken: %d + %d != %d",
			len(deliberate), len(opportunistic), len(All()))
	}
	if len(deliberate) != 12 || len(opportunistic) != 5 {
		t.Errorf("intention counts = (%d, %d), paper has (12, 5)",
			len(deliberate), len(opportunistic))
	}

	code := ByType(core.CodeRedundancy)
	data := ByType(core.DataRedundancy)
	env := ByType(core.EnvironmentRedundancy)
	if len(code) != 9 || len(data) != 3 || len(env) != 5 {
		t.Errorf("type counts = (%d, %d, %d), paper has (9, 3, 5)",
			len(code), len(data), len(env))
	}

	heisen := ByFaultClass(core.Heisenbugs)
	if len(heisen) != 3 { // rejuvenation, checkpoint-recovery, reboot
		t.Errorf("Heisenbug techniques = %d, want 3", len(heisen))
	}
	malicious := ByFaultClass(core.MaliciousFaults)
	if len(malicious) != 3 { // wrappers, data div for security, process replicas
		t.Errorf("malicious techniques = %d, want 3", len(malicious))
	}

	pe := ByPattern(core.ParallelEvaluationPattern)
	if len(pe) != 3 { // NVP, data div for security, process replicas
		t.Errorf("parallel-evaluation techniques = %d, want 3", len(pe))
	}
}

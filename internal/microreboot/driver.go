package microreboot

import (
	"context"
	"fmt"
	"sync"

	"github.com/softwarefaults/redundancy/internal/supervise"
)

// Driver bridges a System into a supervision tree (internal/supervise):
// each component of interest becomes a supervised child whose failure —
// reported through the System's failure-detector hook — triggers a
// supervised micro-reboot instead of a direct MicroReboot call. The
// supervisor contributes what the bare System lacks: restart-intensity
// bounds, escalation to the parent tree, and measured recovery time;
// the Manager underneath contributes Candea-style recursive escalation
// of the reboot scope.
//
// The Driver also serializes access to the System, which on its own is
// not safe for concurrent use. Route all mutations (Fail, Serve,
// OpenSession) through the Driver once it is attached.
type Driver struct {
	mu  sync.Mutex // guards sys and mgr
	sys *System
	mgr *Manager

	subMu sync.Mutex
	subs  map[string]chan struct{} // component -> failure signal
}

// NewDriver wraps sys. The driver registers itself as the System's
// failure callback.
func NewDriver(sys *System) (*Driver, error) {
	mgr, err := NewManager(sys)
	if err != nil {
		return nil, err
	}
	d := &Driver{sys: sys, mgr: mgr, subs: make(map[string]chan struct{})}
	sys.SetOnFail(d.notify)
	return d, nil
}

// notify wakes the subscriber watching the failed component. It runs
// inside Fail, which may itself run under d.mu — so it must only touch
// subMu state.
func (d *Driver) notify(name string) {
	d.subMu.Lock()
	ch := d.subs[name]
	d.subMu.Unlock()
	if ch != nil {
		select {
		case ch <- struct{}{}:
		default: // a signal is already pending
		}
	}
}

// Child returns the supervise.ChildSpec watching one component: Run
// blocks until the component fails (turning the failure into a child
// exit the supervisor reacts to), and Init heals it with the Manager's
// recursive recovery — paying the reboot cost, destroying subtree
// sessions, escalating the scope on repeated failures.
func (d *Driver) Child(component string) (supervise.ChildSpec, error) {
	d.mu.Lock()
	_, known := d.sys.index[component]
	d.mu.Unlock()
	if !known {
		return supervise.ChildSpec{}, fmt.Errorf("%q: %w", component, ErrUnknownComponent)
	}
	d.subMu.Lock()
	ch, ok := d.subs[component]
	if !ok {
		ch = make(chan struct{}, 1)
		d.subs[component] = ch
	}
	d.subMu.Unlock()
	return supervise.ChildSpec{
		Name: component,
		Init: func(context.Context) error {
			d.mu.Lock()
			defer d.mu.Unlock()
			healthy, err := d.sys.Healthy(component)
			if err != nil {
				return err
			}
			if !healthy {
				d.mgr.Recover()
			}
			return nil
		},
		Run: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-ch:
				return fmt.Errorf("component %q: %w", component, ErrComponentFailed)
			}
		},
	}, nil
}

// Fail marks a component failed (thread-safe fault-injection hook). The
// supervised child watching it wakes and the supervisor drives the
// recovery.
func (d *Driver) Fail(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sys.Fail(name)
}

// Serve routes one request (thread-safe).
func (d *Driver) Serve(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sys.Serve(name)
}

// OpenSession records a session (thread-safe).
func (d *Driver) OpenSession(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sys.OpenSession(name)
}

// Healthy reports component health (thread-safe).
func (d *Driver) Healthy(name string) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sys.Healthy(name)
}

// Stats returns the accumulated recovery cost and destroyed sessions.
func (d *Driver) Stats() (downtime float64, sessionsLost int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sys.Downtime, d.sys.SessionsLost
}

// ResetEscalation clears the Manager's escalation history.
func (d *Driver) ResetEscalation() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mgr.ResetEscalation()
}

// Package microreboot implements reboot and micro-reboot recovery
// (Candea et al., JAGR; extended to multi-tier services by Zhang): the
// classic brute-force reboot made affordable by rebooting only the
// minimal failed component subtree instead of the whole system.
// Micro-rebootable systems require a careful modular design — components
// with explicit initialization costs, a dependency tree, and session
// state that a reboot destroys — which this package models directly, so
// the recovery-time and disruption accounting of the paper's sources can
// be reproduced.
//
// Taxonomy position (paper Table 2): opportunistic intention, environment
// redundancy, reactive explicit adjudicator (an external failure detector
// triggers the reboot), Heisenbugs.
package microreboot

import (
	"errors"
	"fmt"
)

// Errors reported by the system.
var (
	// ErrUnknownComponent reports a name not present in the tree.
	ErrUnknownComponent = errors.New("microreboot: unknown component")
	// ErrComponentFailed reports a request that hit a failed component.
	ErrComponentFailed = errors.New("microreboot: component failed")
	// ErrDuplicateComponent reports a component name used twice in a spec.
	ErrDuplicateComponent = errors.New("microreboot: duplicate component name")
)

// Spec declares one component and its children.
type Spec struct {
	// Name is the unique component name.
	Name string
	// InitCost is the time (in abstract cost units) to initialize the
	// component during a reboot.
	InitCost float64
	// Children are the components that depend on this one.
	Children []Spec
}

// component is a node of the runtime tree.
type component struct {
	name     string
	initCost float64
	parent   *component
	children []*component

	healthy  bool
	sessions int // session state destroyed by a reboot
}

// System is a component tree with reboot-based recovery.
type System struct {
	root  *component
	index map[string]*component

	// Downtime accumulates the total recovery cost paid so far.
	Downtime float64
	// SessionsLost accumulates sessions destroyed by reboots.
	SessionsLost int

	// onFail, when set, is called after a component is marked failed —
	// the failure-detector hook recovery drivers subscribe to.
	onFail func(name string)
}

// SetOnFail registers a failure callback, invoked synchronously from
// Fail after the component is marked unhealthy. One callback at a time;
// nil unregisters. The Driver uses it to feed failures into a
// supervision tree.
func (s *System) SetOnFail(fn func(name string)) { s.onFail = fn }

// NewSystem builds the runtime tree from a spec.
func NewSystem(spec Spec) (*System, error) {
	s := &System{index: make(map[string]*component)}
	root, err := s.build(spec, nil)
	if err != nil {
		return nil, err
	}
	s.root = root
	return s, nil
}

func (s *System) build(spec Spec, parent *component) (*component, error) {
	if spec.Name == "" {
		return nil, errors.New("microreboot: empty component name")
	}
	if _, dup := s.index[spec.Name]; dup {
		return nil, fmt.Errorf("%q: %w", spec.Name, ErrDuplicateComponent)
	}
	if spec.InitCost < 0 {
		return nil, fmt.Errorf("microreboot: negative init cost for %q", spec.Name)
	}
	c := &component{name: spec.Name, initCost: spec.InitCost, parent: parent, healthy: true}
	s.index[spec.Name] = c
	for _, child := range spec.Children {
		cc, err := s.build(child, c)
		if err != nil {
			return nil, err
		}
		c.children = append(c.children, cc)
	}
	return c, nil
}

// Healthy reports whether the named component is healthy.
func (s *System) Healthy(name string) (bool, error) {
	c, ok := s.index[name]
	if !ok {
		return false, fmt.Errorf("%q: %w", name, ErrUnknownComponent)
	}
	return c.healthy, nil
}

// Fail marks the named component as failed (the fault injection hook).
func (s *System) Fail(name string) error {
	c, ok := s.index[name]
	if !ok {
		return fmt.Errorf("%q: %w", name, ErrUnknownComponent)
	}
	c.healthy = false
	if s.onFail != nil {
		s.onFail(name)
	}
	return nil
}

// OpenSession records an active session on the named component.
func (s *System) OpenSession(name string) error {
	c, ok := s.index[name]
	if !ok {
		return fmt.Errorf("%q: %w", name, ErrUnknownComponent)
	}
	c.sessions++
	return nil
}

// Sessions returns the number of live sessions on the component.
func (s *System) Sessions(name string) (int, error) {
	c, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("%q: %w", name, ErrUnknownComponent)
	}
	return c.sessions, nil
}

// Serve routes one request along the path from the root to the named
// component; it fails if any component on the path is unhealthy.
func (s *System) Serve(name string) error {
	c, ok := s.index[name]
	if !ok {
		return fmt.Errorf("%q: %w", name, ErrUnknownComponent)
	}
	for n := c; n != nil; n = n.parent {
		if !n.healthy {
			return fmt.Errorf("%q on request path: %w", n.name, ErrComponentFailed)
		}
	}
	return nil
}

// Failed returns the names of all failed components.
func (s *System) Failed() []string {
	var out []string
	var walk func(c *component)
	walk = func(c *component) {
		if !c.healthy {
			out = append(out, c.name)
		}
		for _, ch := range c.children {
			walk(ch)
		}
	}
	walk(s.root)
	return out
}

// subtreeCost is the initialization cost of a subtree reboot.
func subtreeCost(c *component) float64 {
	cost := c.initCost
	for _, ch := range c.children {
		cost += subtreeCost(ch)
	}
	return cost
}

// rebootSubtree restores health, destroys session state, and accounts
// cost for the whole subtree rooted at c.
func (s *System) rebootSubtree(c *component) float64 {
	cost := subtreeCost(c)
	var walk func(n *component)
	walk = func(n *component) {
		n.healthy = true
		s.SessionsLost += n.sessions
		n.sessions = 0
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(c)
	s.Downtime += cost
	return cost
}

// MicroReboot reboots only the named component's subtree and returns the
// recovery cost paid.
func (s *System) MicroReboot(name string) (float64, error) {
	c, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("%q: %w", name, ErrUnknownComponent)
	}
	return s.rebootSubtree(c), nil
}

// Reboot restarts the whole system and returns the recovery cost paid.
func (s *System) Reboot() float64 {
	return s.rebootSubtree(s.root)
}

// FullRebootCost returns the cost a full reboot would pay, without
// performing it.
func (s *System) FullRebootCost() float64 {
	return subtreeCost(s.root)
}

// Manager implements Candea-style recursive recovery: first micro-reboot
// the minimal failed components; if the same component fails again within
// the escalation window, reboot progressively larger subtrees, up to the
// full system.
type Manager struct {
	sys *System
	// escalation counts consecutive recoveries per component name.
	escalation map[string]int
	// Window is the number of repeated recoveries of the same component
	// that triggers escalation to its parent.
	Window int
}

// NewManager wraps sys with the default escalation window of 2.
func NewManager(sys *System) (*Manager, error) {
	if sys == nil {
		return nil, errors.New("microreboot: nil system")
	}
	return &Manager{sys: sys, escalation: make(map[string]int), Window: 2}, nil
}

// Recover heals all currently failed components using recursive recovery
// and returns the total recovery cost paid.
func (m *Manager) Recover() float64 {
	var total float64
	for _, name := range m.sys.Failed() {
		c := m.sys.index[name]
		if c.healthy {
			continue // already healed as part of an earlier subtree reboot
		}
		m.escalation[name]++
		target := c
		// Escalate one ancestor level per Window repeated failures.
		for hops := (m.escalation[name] - 1) / m.Window; hops > 0 && target.parent != nil; hops-- {
			target = target.parent
		}
		total += m.sys.rebootSubtree(target)
	}
	return total
}

// ResetEscalation clears the escalation history (e.g. after a period of
// stability).
func (m *Manager) ResetEscalation() {
	m.escalation = make(map[string]int)
}

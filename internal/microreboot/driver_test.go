package microreboot

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/supervise"
)

func driverFixture(t *testing.T) *Driver {
	t.Helper()
	sys, err := NewSystem(Spec{
		Name: "root", InitCost: 10,
		Children: []Spec{
			{Name: "api", InitCost: 3, Children: []Spec{
				{Name: "cache", InitCost: 1},
			}},
			{Name: "db", InitCost: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(sys)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDriverSupervisedMicroReboot(t *testing.T) {
	d := driverFixture(t)
	c := obs.NewCollector()
	sup := supervise.New(supervise.Options{
		Name:      "reboot-sup",
		Intensity: supervise.Intensity{MaxRestarts: 10, Window: time.Minute},
		Observer:  c,
	})
	spec, err := d.Child("cache")
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Add(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Child("nonexistent"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("unknown component error = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Serve(ctx) }()

	// Let the child start, then inject a failure. Requests through the
	// failed component error until the supervised recovery heals it.
	waitUntil(t, func() bool { return d.Serve("cache") == nil })
	if err := d.OpenSession("cache"); err != nil {
		t.Fatal(err)
	}
	if err := d.Fail("cache"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool {
		healthy, _ := d.Healthy("cache")
		return healthy && d.Serve("cache") == nil
	})
	downtime, lost := d.Stats()
	if downtime != 1 {
		t.Errorf("downtime = %v, want 1 (cache subtree only — the point of micro-reboot)", downtime)
	}
	if lost != 1 {
		t.Errorf("sessions lost = %d, want 1", lost)
	}
	if sup.Restarts("cache") != 1 {
		t.Errorf("supervised restarts = %d, want 1", sup.Restarts("cache"))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not shut down")
	}

	// The MTTR histogram on the supervisor's executor carries the sample.
	var snap obs.ExecutorSnapshot
	for _, e := range c.Snapshot() {
		if e.Executor == "reboot-sup" {
			snap = e
		}
	}
	if snap.Restarts != 1 || snap.MTTR.Count != 1 {
		t.Errorf("obs: restarts=%d mttr samples=%d, want 1 and 1", snap.Restarts, snap.MTTR.Count)
	}
}

func TestDriverRepeatedFailureEscalatesRebootScope(t *testing.T) {
	d := driverFixture(t)
	sup := supervise.New(supervise.Options{
		Intensity: supervise.Intensity{MaxRestarts: 10, Window: time.Minute},
	})
	spec, err := d.Child("cache")
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Add(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sup.Serve(ctx) }()
	waitUntil(t, func() bool { return d.Serve("cache") == nil })

	// Fail the same component three times: with the Manager's default
	// escalation window of 2, the third recovery reboots the parent
	// subtree (api: cost 3+1) instead of just the cache (cost 1).
	for i := 0; i < 3; i++ {
		if err := d.Fail("cache"); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, func() bool {
			healthy, _ := d.Healthy("cache")
			return healthy
		})
		waitUntil(t, func() bool { return sup.Restarts("cache") == i+1 })
	}
	downtime, _ := d.Stats()
	if downtime != 1+1+4 {
		t.Errorf("downtime = %v, want 6 (1 + 1 + escalated 4)", downtime)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not shut down")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

package microreboot

import (
	"errors"
	"testing"
)

// threeTier is the canonical application-server shape: a root with a
// middle tier and leaves.
func threeTier(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Spec{
		Name: "server", InitCost: 50,
		Children: []Spec{
			{Name: "web", InitCost: 10, Children: []Spec{
				{Name: "session-a", InitCost: 2},
				{Name: "session-b", InitCost: 2},
			}},
			{Name: "db", InitCost: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServeHealthySystem(t *testing.T) {
	s := threeTier(t)
	for _, name := range []string{"server", "web", "session-a", "db"} {
		if err := s.Serve(name); err != nil {
			t.Errorf("Serve(%s) = %v", name, err)
		}
	}
}

func TestFailureBlocksPath(t *testing.T) {
	s := threeTier(t)
	if err := s.Fail("web"); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve("session-a"); !errors.Is(err, ErrComponentFailed) {
		t.Errorf("Serve through failed parent = %v", err)
	}
	// The db path does not cross web.
	if err := s.Serve("db"); err != nil {
		t.Errorf("Serve(db) = %v", err)
	}
	if h, _ := s.Healthy("web"); h {
		t.Error("web should be unhealthy")
	}
}

func TestMicroRebootCheaperThanFullReboot(t *testing.T) {
	s := threeTier(t)
	if err := s.Fail("session-a"); err != nil {
		t.Fatal(err)
	}
	cost, err := s.MicroReboot("session-a")
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("micro-reboot cost = %f, want 2", cost)
	}
	if full := s.FullRebootCost(); full != 94 {
		t.Errorf("full reboot cost = %f, want 94", full)
	}
	if err := s.Serve("session-a"); err != nil {
		t.Errorf("Serve after micro-reboot = %v", err)
	}
	if s.Downtime != 2 {
		t.Errorf("downtime = %f", s.Downtime)
	}
}

func TestMicroRebootSubtreeCost(t *testing.T) {
	s := threeTier(t)
	cost, err := s.MicroReboot("web")
	if err != nil {
		t.Fatal(err)
	}
	if cost != 14 { // web(10) + session-a(2) + session-b(2)
		t.Errorf("subtree cost = %f, want 14", cost)
	}
}

func TestRebootHealsEverythingAtFullCost(t *testing.T) {
	s := threeTier(t)
	s.Fail("web")
	s.Fail("db")
	cost := s.Reboot()
	if cost != 94 {
		t.Errorf("reboot cost = %f, want 94", cost)
	}
	if failed := s.Failed(); len(failed) != 0 {
		t.Errorf("failed after reboot: %v", failed)
	}
}

func TestSessionLossAccounting(t *testing.T) {
	s := threeTier(t)
	for i := 0; i < 5; i++ {
		if err := s.OpenSession("session-a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.OpenSession("session-b"); err != nil {
		t.Fatal(err)
	}
	// Micro-rebooting session-a destroys only its 5 sessions.
	if _, err := s.MicroReboot("session-a"); err != nil {
		t.Fatal(err)
	}
	if s.SessionsLost != 5 {
		t.Errorf("SessionsLost = %d, want 5", s.SessionsLost)
	}
	if n, _ := s.Sessions("session-b"); n != 1 {
		t.Errorf("session-b sessions = %d, want untouched 1", n)
	}
	// A full reboot destroys the rest.
	s.Reboot()
	if s.SessionsLost != 6 {
		t.Errorf("SessionsLost = %d, want 6", s.SessionsLost)
	}
}

func TestFailedLists(t *testing.T) {
	s := threeTier(t)
	s.Fail("db")
	s.Fail("session-b")
	failed := s.Failed()
	if len(failed) != 2 {
		t.Errorf("Failed = %v", failed)
	}
}

func TestUnknownComponentErrors(t *testing.T) {
	s := threeTier(t)
	if err := s.Fail("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("Fail = %v", err)
	}
	if err := s.Serve("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("Serve = %v", err)
	}
	if _, err := s.MicroReboot("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("MicroReboot = %v", err)
	}
	if _, err := s.Healthy("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("Healthy = %v", err)
	}
	if err := s.OpenSession("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("OpenSession = %v", err)
	}
	if _, err := s.Sessions("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("Sessions = %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := NewSystem(Spec{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSystem(Spec{Name: "a", InitCost: -1}); err == nil {
		t.Error("negative cost accepted")
	}
	_, err := NewSystem(Spec{Name: "a", Children: []Spec{{Name: "a"}}})
	if !errors.Is(err, ErrDuplicateComponent) {
		t.Errorf("duplicate name: %v", err)
	}
}

func TestManagerRecoversMinimalSubtree(t *testing.T) {
	s := threeTier(t)
	m, err := NewManager(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Fail("session-a")
	cost := m.Recover()
	if cost != 2 {
		t.Errorf("recovery cost = %f, want leaf cost 2", cost)
	}
	if err := s.Serve("session-a"); err != nil {
		t.Errorf("Serve after recovery = %v", err)
	}
}

func TestManagerEscalation(t *testing.T) {
	s := threeTier(t)
	m, err := NewManager(s)
	if err != nil {
		t.Fatal(err)
	}
	// First two failures: leaf reboots (cost 2 each). Third failure of
	// the same component escalates to the parent subtree (cost 14).
	costs := make([]float64, 0, 3)
	for i := 0; i < 3; i++ {
		s.Fail("session-a")
		costs = append(costs, m.Recover())
	}
	if costs[0] != 2 || costs[1] != 2 {
		t.Errorf("early recoveries = %v, want leaf cost", costs)
	}
	if costs[2] != 14 {
		t.Errorf("escalated recovery = %f, want parent subtree 14", costs[2])
	}
}

func TestManagerEscalatesToFullReboot(t *testing.T) {
	s := threeTier(t)
	m, _ := NewManager(s)
	m.Window = 1
	var last float64
	for i := 0; i < 3; i++ {
		s.Fail("session-a")
		last = m.Recover()
	}
	// Window 1: recovery 1 = leaf, 2 = web subtree, 3 = full system.
	if last != 94 {
		t.Errorf("third recovery = %f, want full reboot 94", last)
	}
}

func TestManagerResetEscalation(t *testing.T) {
	s := threeTier(t)
	m, _ := NewManager(s)
	s.Fail("session-a")
	m.Recover()
	s.Fail("session-a")
	m.Recover()
	m.ResetEscalation()
	s.Fail("session-a")
	if cost := m.Recover(); cost != 2 {
		t.Errorf("post-reset recovery = %f, want leaf cost", cost)
	}
}

func TestManagerSkipsAlreadyHealedComponents(t *testing.T) {
	s := threeTier(t)
	m, _ := NewManager(s)
	m.Window = 1
	// Fail parent and child: recovering the parent's subtree heals the
	// child, which must not be rebooted again.
	s.Fail("web")
	s.Fail("session-a")
	cost := m.Recover()
	if cost != 14 && cost != 16 {
		t.Errorf("cost = %f", cost)
	}
	// web is visited first (pre-order), so one subtree reboot suffices.
	if cost != 14 {
		t.Errorf("cost = %f, want 14 (single subtree reboot)", cost)
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Error("nil system accepted")
	}
}

package selfopt

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

func impl(name string) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
		return x, nil
	})
}

// twoProfiles models the classic trade-off: "light" is fast when idle but
// degrades steeply with load; "heavy" has higher constant cost but scales
// flat.
func twoProfiles() []Profile[int, int] {
	return []Profile[int, int]{
		{Variant: impl("light"), Latency: func(load float64) float64 { return 1 + 20*load }},
		{Variant: impl("heavy"), Latency: func(load float64) float64 { return 6 }},
	}
}

func TestStaysOnBestImplementationWhenIdle(t *testing.T) {
	load := 0.1
	o, err := NewOptimizer(twoProfiles(), 5, 3, func() float64 { return load })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := o.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	if o.Current() != "light" || o.Switches != 0 {
		t.Errorf("current = %s, switches = %d", o.Current(), o.Switches)
	}
}

func TestSwitchesUnderLoad(t *testing.T) {
	load := 0.1
	o, err := NewOptimizer(twoProfiles(), 5, 3, func() float64 { return load })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := o.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	load = 0.9 // light now costs 19 > threshold 5; heavy costs 6
	for i := 0; i < 5; i++ {
		if _, err := o.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	if o.Current() != "heavy" {
		t.Errorf("current = %s, want heavy under load", o.Current())
	}
	if o.Switches != 1 {
		t.Errorf("switches = %d, want 1", o.Switches)
	}
}

func TestSwitchImprovesQoS(t *testing.T) {
	load := 0.9
	o, err := NewOptimizer(twoProfiles(), 5, 1, func() float64 { return load })
	if err != nil {
		t.Fatal(err)
	}
	// First request on light at high load: latency 19.
	if _, err := o.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	first := o.LastLatency
	// Second request should already use heavy: latency 6.
	if _, err := o.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if o.LastLatency >= first {
		t.Errorf("latency did not improve: %f -> %f", first, o.LastLatency)
	}
}

func TestSwitchesBackWhenLoadDrops(t *testing.T) {
	load := 0.9
	o, err := NewOptimizer(twoProfiles(), 5, 1, func() float64 { return load })
	if err != nil {
		t.Fatal(err)
	}
	_, _ = o.Execute(context.Background(), 0) // switches to heavy
	if o.Current() != "heavy" {
		t.Fatalf("setup failed: current = %s", o.Current())
	}
	load = 0.05
	// heavy's latency 6 still exceeds threshold 5, prompting re-selection
	// toward light (latency 2 at load 0.05).
	_, _ = o.Execute(context.Background(), 1)
	if o.Current() != "light" {
		t.Errorf("current = %s, want light after load drop", o.Current())
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	bad := core.NewVariant("bad", func(_ context.Context, _ int) (int, error) {
		return 0, boom
	})
	o, err := NewOptimizer([]Profile[int, int]{
		{Variant: bad, Latency: func(float64) float64 { return 1 }},
	}, 10, 2, func() float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Execute(context.Background(), 0); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestConstructorValidation(t *testing.T) {
	ps := twoProfiles()
	probe := func() float64 { return 0 }
	if _, err := NewOptimizer[int, int](nil, 5, 3, probe); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("no profiles: %v", err)
	}
	if _, err := NewOptimizer([]Profile[int, int]{{Variant: impl("x")}}, 5, 3, probe); err == nil {
		t.Error("nil latency model accepted")
	}
	if _, err := NewOptimizer(ps, 0, 3, probe); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewOptimizer(ps, 5, 0, probe); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewOptimizer(ps, 5, 3, nil); err == nil {
		t.Error("nil probe accepted")
	}
}

func TestWindowBoundsObservations(t *testing.T) {
	o, err := NewOptimizer(twoProfiles(), 1000, 4, func() float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := o.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	if len(o.observed) > 4 {
		t.Errorf("window grew to %d", len(o.observed))
	}
}

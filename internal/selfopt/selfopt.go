// Package selfopt implements self-optimizing code (Diaconescu et al.;
// Naccache and Gannod for web services): the same functionality is
// implemented by several components, each optimized for different runtime
// conditions, and a monitoring framework switches the active
// implementation when the observed quality of service crosses a
// threshold.
//
// Taxonomy position (paper Table 2): deliberate intention, code
// redundancy, reactive explicit adjudicator (a QoS monitor with an
// explicit threshold), development faults (here: performance faults).
package selfopt

import (
	"context"
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
)

// Profile couples an implementation with its latency model: the latency
// (in abstract time units) the implementation exhibits as a function of
// the current load in [0,1]. Profiles let experiments model components
// "optimized for different runtime conditions" — e.g. an implementation
// with low constant overhead that degrades steeply under load versus a
// heavier implementation that scales flatly.
type Profile[I, O any] struct {
	// Variant is the implementation.
	Variant core.Variant[I, O]
	// Latency models the implementation's response time under load.
	Latency func(load float64) float64
}

// Optimizer serves requests through the currently selected implementation
// and switches implementations when the moving average of observed
// latencies exceeds the QoS threshold.
type Optimizer[I, O any] struct {
	profiles  []Profile[I, O]
	current   int
	threshold float64
	window    int
	loadProbe func() float64

	observed []float64
	// Switches counts implementation changes.
	Switches int
	// LastLatency is the latency observed for the most recent request.
	LastLatency float64
}

var _ core.Executor[int, int] = (*Optimizer[int, int])(nil)

// NewOptimizer builds a self-optimizing executor.
//
// threshold is the QoS bound on the moving-average latency; window is the
// number of recent requests averaged; loadProbe samples the current load
// (in [0,1]) before each request.
func NewOptimizer[I, O any](profiles []Profile[I, O], threshold float64, window int, loadProbe func() float64) (*Optimizer[I, O], error) {
	if len(profiles) == 0 {
		return nil, core.ErrNoVariants
	}
	for i, p := range profiles {
		if p.Variant == nil || p.Latency == nil {
			return nil, fmt.Errorf("selfopt: profile %d incomplete", i)
		}
	}
	if threshold <= 0 {
		return nil, errors.New("selfopt: threshold must be positive")
	}
	if window < 1 {
		return nil, errors.New("selfopt: window must be at least 1")
	}
	if loadProbe == nil {
		return nil, errors.New("selfopt: nil load probe")
	}
	ps := make([]Profile[I, O], len(profiles))
	copy(ps, profiles)
	return &Optimizer[I, O]{
		profiles:  ps,
		threshold: threshold,
		window:    window,
		loadProbe: loadProbe,
	}, nil
}

// Current returns the name of the active implementation.
func (o *Optimizer[I, O]) Current() string {
	return o.profiles[o.current].Variant.Name()
}

// Execute implements core.Executor: it serves the request with the active
// implementation, records the modeled latency, and re-selects the best
// implementation for the present load when QoS degrades.
func (o *Optimizer[I, O]) Execute(ctx context.Context, input I) (O, error) {
	load := o.loadProbe()
	p := o.profiles[o.current]
	o.LastLatency = p.Latency(load)
	o.observe(o.LastLatency)

	out, err := p.Variant.Execute(ctx, input)
	if err != nil {
		var zero O
		return zero, err
	}

	if o.movingAverage() > o.threshold {
		if best := o.bestFor(load); best != o.current {
			o.current = best
			o.Switches++
			o.observed = o.observed[:0] // fresh window for the new impl
		}
	}
	return out, nil
}

func (o *Optimizer[I, O]) observe(latency float64) {
	o.observed = append(o.observed, latency)
	if len(o.observed) > o.window {
		o.observed = o.observed[len(o.observed)-o.window:]
	}
}

func (o *Optimizer[I, O]) movingAverage() float64 {
	if len(o.observed) == 0 {
		return 0
	}
	var sum float64
	for _, v := range o.observed {
		sum += v
	}
	return sum / float64(len(o.observed))
}

// bestFor returns the index of the profile with the lowest modeled
// latency at the given load.
func (o *Optimizer[I, O]) bestFor(load float64) int {
	best := 0
	bestLat := o.profiles[0].Latency(load)
	for i := 1; i < len(o.profiles); i++ {
		if lat := o.profiles[i].Latency(load); lat < bestLat {
			best, bestLat = i, lat
		}
	}
	return best
}

package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay checks the WAL's two safety invariants under arbitrary
// file damage: the replayer never panics, and the records it delivers
// are always a prefix of the records that were written. The fuzzer
// writes a known log, then mutilates the segment files as directed by
// the fuzz input (truncations, bit flips, appended garbage) before
// reopening — exactly the damage a crash or a bad disk can inflict.
func FuzzWALReplay(f *testing.F) {
	f.Add(5, int64(3), uint8(0xff), []byte{})
	f.Add(20, int64(100), uint8(0x01), []byte("garbage-tail"))
	f.Add(1, int64(0), uint8(0x00), []byte{0x13, 0x37})
	f.Add(50, int64(-40), uint8(0x80), []byte{})

	f.Fuzz(func(t *testing.T, records int, damageAt int64, flip uint8, tail []byte) {
		if records < 0 || records > 200 {
			t.Skip()
		}
		dir := t.TempDir()
		w, err := OpenWAL(dir, WALOptions{SegmentBytes: 128, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		written := make([][]byte, 0, records)
		for i := 0; i < records; i++ {
			p := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i%11)))
			if _, err := w.Append(p); err != nil {
				t.Fatal(err)
			}
			written = append(written, p)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// Damage the files as the input directs.
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Skip()
		}
		// uint64 conversion makes the index math total for any input,
		// including MinInt64, whose negation overflows.
		at := uint64(damageAt)
		target := segs[at%uint64(len(segs))]
		data, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if damageAt < 0 {
				// Truncate: keep a prefix of the file.
				data = data[:at%uint64(len(data)+1)]
			} else if flip != 0 {
				data[at%uint64(len(data))] ^= flip
			}
		}
		data = append(data, tail...)
		if err := os.WriteFile(target, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Reopen and replay: must not panic, and must deliver a prefix.
		w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 128, NoSync: true})
		if err != nil {
			// Opening can only fail on I/O errors, never on content.
			t.Fatalf("OpenWAL on damaged log: %v", err)
		}
		var got [][]byte
		if _, err := w2.Replay(0, func(_ uint64, payload []byte) error {
			got = append(got, bytes.Clone(payload))
			return nil
		}); err != nil {
			t.Fatalf("Replay after open-time truncation: %v", err)
		}
		if len(got) > len(written) {
			t.Fatalf("replay delivered %d records but only %d were written", len(got), len(written))
		}
		for i := range got {
			if !bytes.Equal(got[i], written[i]) {
				t.Fatalf("record %d = %q, want %q: replay is not a prefix of the written log",
					i, got[i], written[i])
			}
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}

		// Determinism: a second open sees the identical truncated log.
		w3, err := OpenWAL(dir, WALOptions{SegmentBytes: 128, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer w3.Close()
		if w3.TruncatedBytes() != 0 {
			t.Fatalf("second open truncated %d more bytes; truncation must converge in one pass",
				w3.TruncatedBytes())
		}
		if w3.LastSeq() != w2.LastSeq() {
			t.Fatalf("LastSeq changed across reopens: %d then %d", w2.LastSeq(), w3.LastSeq())
		}
	})
}

package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The write-ahead log is the durable half of crash-safe checkpointing:
// every acknowledged operation is framed, checksummed, and appended to a
// segment file before the acknowledgment is returned, so a process that
// panics or is killed can re-derive its exact acknowledged state from the
// latest snapshot plus the log suffix.
//
// On-disk format. The log is a directory of segment files named
// wal-<index>.seg, appended in index order. Each record is framed as
//
//	[4-byte little-endian payload length]
//	[4-byte CRC32 (IEEE) over seq||payload]
//	[8-byte little-endian sequence number]
//	[payload]
//
// Sequence numbers start at 1 and are contiguous across segments. A crash
// mid-append leaves a torn tail — a partial frame, or a frame whose CRC
// does not match — which the replayer detects and physically truncates,
// so successive replays of the same directory are deterministic. A frame
// whose sequence number breaks contiguity is treated the same way: the
// prefix up to it is the log's entire valid content.

const (
	// walFrameHeader is the fixed frame overhead before the payload.
	walFrameHeader = 4 + 4 + 8
	// walMaxRecord bounds a single record; a length field above it is
	// corruption, not a real record (it also keeps a flipped length bit
	// from triggering a huge allocation during replay).
	walMaxRecord = 16 << 20
	// defaultSegmentBytes rotates segments at 1 MiB.
	defaultSegmentBytes = 1 << 20
)

// WALOptions configures a write-ahead log.
type WALOptions struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// reaches this size; values < 1 use the 1 MiB default.
	SegmentBytes int
	// SyncEvery is the fsync policy: fsync the segment after every n-th
	// append. 1 (the default for values < 1... see Normalize) syncs every
	// append — the only policy under which every acknowledged write
	// survives a kill. Larger values trade the tail of a crash window for
	// throughput; Sync flushes explicitly.
	SyncEvery int
	// NoSync disables fsync entirely (benchmarks and tests that simulate
	// crashes by reopening, not by killing the process).
	NoSync bool
}

func (o WALOptions) segmentBytes() int {
	if o.SegmentBytes < 1 {
		return defaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o WALOptions) syncEvery() int {
	if o.NoSync {
		return 0
	}
	if o.SyncEvery < 1 {
		return 1
	}
	return o.SyncEvery
}

// WAL is a segmented append-only write-ahead log with CRC32-framed
// records. It is not safe for concurrent use; the owning runner (or
// supervisor child) serializes access.
type WAL struct {
	dir  string
	opts WALOptions

	seg        *os.File          // current segment, opened for append
	segIndex   uint64            // index of the current segment
	segSize    int64             // current segment size in bytes
	nextSeq    uint64            // sequence number of the next append
	sinceSync  int               // appends since the last fsync
	truncated  int64             // torn-tail bytes discarded during open
	firstSeqOf map[uint64]uint64 // segment index -> first seq in it

	scratch []byte // reused frame buffer
}

// segName formats a segment file name.
func segName(index uint64) string { return fmt.Sprintf("wal-%016d.seg", index) }

// segIndexOf parses a segment file name; ok is false for foreign files.
func segIndexOf(name string) (uint64, bool) {
	var idx uint64
	if _, err := fmt.Sscanf(name, "wal-%016d.seg", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// OpenWAL opens (creating if needed) the log in dir, scans it, truncates
// any torn tail, and positions the append cursor after the last valid
// record. The scan validates every frame, so a valid open implies a fully
// replayable log.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: wal dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, nextSeq: 1, firstSeqOf: make(map[uint64]uint64)}
	segs, err := w.segments()
	if err != nil {
		return nil, err
	}
	tail := uint64(1)
	for i, idx := range segs {
		tail = idx
		torn, err := w.scanSegment(idx)
		if err != nil {
			return nil, err
		}
		if torn {
			// Everything after the tear — including whole later
			// segments — is past the valid prefix; remove it so the
			// next open scans the identical log.
			if i < len(segs)-1 {
				if err := w.dropSegmentsAfter(idx); err != nil {
					return nil, err
				}
			}
			break
		}
	}
	if err := w.openSegment(tail); err != nil {
		return nil, err
	}
	return w, nil
}

// segments lists segment indices in ascending order.
func (w *WAL) segments() ([]uint64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: wal dir: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		if idx, ok := segIndexOf(e.Name()); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// scanSegment validates the frames of one segment, advancing nextSeq past
// every valid record. An invalid frame is a torn tail: it ends the log's
// valid prefix, and the file is physically truncated at that offset so a
// subsequent open sees the identical log — deterministic truncation.
// torn reports whether a tear was found (the caller stops scanning).
func (w *WAL) scanSegment(index uint64) (torn bool, err error) {
	path := filepath.Join(w.dir, segName(index))
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("checkpoint: wal scan: %w", err)
	}
	if w.nextSeq == 1 && index > 1 && len(w.firstSeqOf) == 0 {
		// Compaction removed the log's head; the first surviving record
		// defines the replay start. Peek its seq field — if the frame is
		// corrupt the CRC check below rejects it regardless.
		if len(data) >= walFrameHeader {
			w.nextSeq = binary.LittleEndian.Uint64(data[8:16])
		}
	}
	offset := int64(0)
	for {
		n, seq, _, ok := parseFrame(data[offset:], w.nextSeq)
		if !ok {
			break
		}
		if w.firstSeqOf[index] == 0 {
			w.firstSeqOf[index] = seq
		}
		w.nextSeq = seq + 1
		offset += n
	}
	if offset < int64(len(data)) {
		w.truncated += int64(len(data)) - offset
		if err := os.Truncate(path, offset); err != nil {
			return false, fmt.Errorf("checkpoint: truncating torn tail: %w", err)
		}
		return true, nil
	}
	return false, nil
}

// dropSegmentsAfter removes every segment with an index above the given
// one (they follow a torn tail and are not part of the valid prefix).
func (w *WAL) dropSegmentsAfter(index uint64) error {
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx <= index {
			continue
		}
		path := filepath.Join(w.dir, segName(idx))
		w.truncated += fileSize(path)
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("checkpoint: dropping segment after torn tail: %w", err)
		}
	}
	return nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// parseFrame validates one frame at the head of data. It returns the
// frame's total length, its sequence number and payload, and ok=false if
// the frame is torn, fails its CRC, or breaks sequence contiguity with
// wantSeq (wantSeq 0 accepts any sequence number).
func parseFrame(data []byte, wantSeq uint64) (n int64, seq uint64, payload []byte, ok bool) {
	if len(data) < walFrameHeader {
		return 0, 0, nil, false
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if plen > walMaxRecord || int64(len(data)) < walFrameHeader+int64(plen) {
		return 0, 0, nil, false
	}
	crc := binary.LittleEndian.Uint32(data[4:8])
	seq = binary.LittleEndian.Uint64(data[8:16])
	payload = data[walFrameHeader : walFrameHeader+int64(plen)]
	if crc32.ChecksumIEEE(data[8:walFrameHeader+int64(plen)]) != crc {
		return 0, 0, nil, false
	}
	if wantSeq != 0 && seq != wantSeq {
		return 0, 0, nil, false
	}
	return walFrameHeader + int64(plen), seq, payload, true
}

// openSegment opens segment index for appending, creating it if missing.
func (w *WAL) openSegment(index uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(index)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: wal segment: %w", err)
	}
	w.seg = f
	w.segIndex = index
	w.segSize = fileSize(f.Name())
	return nil
}

// LastSeq returns the sequence number of the last appended record, or 0
// when the log is empty.
func (w *WAL) LastSeq() uint64 { return w.nextSeq - 1 }

// TruncatedBytes reports how many torn-tail bytes the open scan
// discarded.
func (w *WAL) TruncatedBytes() int64 { return w.truncated }

// Append frames, checksums, and writes one record, returning its
// sequence number. When Append returns under the default fsync policy the
// record is durable: it is the acknowledgment point of the log.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if w.seg == nil {
		return 0, errors.New("checkpoint: wal is closed")
	}
	if len(payload) > walMaxRecord {
		return 0, fmt.Errorf("%w: record of %d bytes exceeds the %d-byte frame bound",
			ErrEncodeCheckpoint, len(payload), walMaxRecord)
	}
	if w.segSize >= int64(w.opts.segmentBytes()) {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	need := walFrameHeader + len(payload)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	frame := w.scratch[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[walFrameHeader:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:need]))
	if _, err := w.seg.Write(frame); err != nil {
		return 0, fmt.Errorf("checkpoint: wal append: %w", err)
	}
	w.segSize += int64(need)
	if w.firstSeqOf[w.segIndex] == 0 {
		w.firstSeqOf[w.segIndex] = seq
	}
	w.nextSeq = seq + 1
	if every := w.opts.syncEvery(); every > 0 {
		w.sinceSync++
		if w.sinceSync >= every {
			if err := w.Sync(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// Sync flushes the current segment to stable storage.
func (w *WAL) Sync() error {
	if w.seg == nil {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("checkpoint: wal sync: %w", err)
	}
	w.sinceSync = 0
	return nil
}

// rotate seals the current segment and starts the next one.
func (w *WAL) rotate() error {
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("checkpoint: wal rotate: %w", err)
	}
	return w.openSegment(w.segIndex + 1)
}

// Replay re-reads the log and invokes fn, in order, for every record with
// a sequence number strictly greater than after. It reports the number of
// records delivered. The log must have been opened (and hence tail-
// truncated) by OpenWAL, so every frame read here is expected to be
// valid; an invalid one means the files changed underneath and is
// reported as ErrCorruptCheckpoint.
func (w *WAL) Replay(after uint64, fn func(seq uint64, payload []byte) error) (int, error) {
	segs, err := w.segments()
	if err != nil {
		return 0, err
	}
	n := 0
	want := uint64(0) // first frame fixes the expected sequence
	for _, idx := range segs {
		data, err := os.ReadFile(filepath.Join(w.dir, segName(idx)))
		if err != nil {
			return n, fmt.Errorf("checkpoint: wal replay: %w", err)
		}
		offset := int64(0)
		for offset < int64(len(data)) {
			fl, seq, payload, ok := parseFrame(data[offset:], want)
			if !ok {
				return n, fmt.Errorf("%w: invalid frame at %s offset %d",
					ErrCorruptCheckpoint, segName(idx), offset)
			}
			want = seq + 1
			offset += fl
			if seq <= after {
				continue
			}
			if err := fn(seq, payload); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// TruncateThrough removes whole segments whose records are all covered by
// a snapshot through seq (log compaction). The tail segment is never
// removed; appends continue in place.
func (w *WAL) TruncateThrough(seq uint64) error {
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for i, idx := range segs {
		if idx == w.segIndex || i == len(segs)-1 {
			break
		}
		// A segment is fully covered when the next segment starts at or
		// below seq+1 — i.e. every record in this one is <= seq.
		nextFirst := w.firstSeqOf[segs[i+1]]
		if nextFirst == 0 || nextFirst > seq+1 {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, segName(idx))); err != nil {
			return fmt.Errorf("checkpoint: wal compaction: %w", err)
		}
		delete(w.firstSeqOf, idx)
	}
	return nil
}

// Close syncs and closes the log. The log can be reopened with OpenWAL.
func (w *WAL) Close() error {
	if w.seg == nil {
		return nil
	}
	err := w.Sync()
	if cerr := w.seg.Close(); err == nil {
		err = cerr
	}
	w.seg = nil
	return err
}

// SyncDir fsyncs a directory, making renames within it durable. Errors
// are swallowed: some filesystems reject directory fsync, and the rename
// itself is already atomic — the sync only narrows the crash window.
func SyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// Durable checkpointing extends the in-memory Runner to a disk-backed
// store that survives a process crash: acknowledged operations go to the
// WAL before the acknowledgment returns, snapshots compact the log via
// write-temp-then-atomic-rename, and OpenDurableRunner recovers the
// exact acknowledged state — latest valid snapshot plus a replay of the
// log suffix, with any torn tail truncated deterministically.
//
// Snapshot files are named snap-<seq>.ckpt, where seq is the last
// operation sequence number the snapshot covers, and framed as
//
//	[8-byte little-endian covered seq]
//	[4-byte CRC32 (IEEE) over the gob payload]
//	[gob-encoded state]
//
// A snapshot that fails its CRC or decodes short is skipped in favor of
// the next older one (the WAL still holds every operation a skipped
// snapshot covered, because compaction only drops segments after the
// covering snapshot is durably renamed into place).

const (
	snapHeader = 8 + 4
	// defaultSnapshotInterval snapshots every 64 applied operations.
	defaultSnapshotInterval = 64
	// defaultKeepSnapshots retains the two most recent snapshot files, so
	// one corrupt latest snapshot still leaves a valid recovery point.
	defaultKeepSnapshots = 2
)

// DurableOptions configures a DurableRunner.
type DurableOptions struct {
	// Name labels the runner in observation events (CheckpointTaken,
	// WALReplayed); empty means "durable".
	Name string
	// SnapshotInterval is the number of applied operations between
	// snapshots; values < 1 use the default of 64.
	SnapshotInterval int
	// KeepSnapshots retains this many recent snapshot files; values < 1
	// keep 2.
	KeepSnapshots int
	// WAL configures the operation log.
	WAL WALOptions
	// Observer receives CheckpointTaken and WALReplayed events; nil
	// observes nothing.
	Observer obs.Observer
}

func (o DurableOptions) name() string {
	if o.Name == "" {
		return "durable"
	}
	return o.Name
}

func (o DurableOptions) snapshotInterval() int {
	if o.SnapshotInterval < 1 {
		return defaultSnapshotInterval
	}
	return o.SnapshotInterval
}

func (o DurableOptions) keepSnapshots() int {
	if o.KeepSnapshots < 1 {
		return defaultKeepSnapshots
	}
	return o.KeepSnapshots
}

// DurableRunner drives a deterministic state machine with a disk-backed
// checkpoint store: every successfully applied operation is appended to
// the WAL (the acknowledgment point), and snapshots taken at the
// configured interval compact the log. A crashed runner is recovered by
// OpenDurableRunner on the same directory; the restored state reflects
// exactly the acknowledged operations.
//
// Like Runner, Apply must be a pure transition function and the op type
// must round-trip through gob. The runner is not safe for concurrent
// use; the owning component serializes access.
type DurableRunner[S, M any] struct {
	// Apply is the state transition function.
	Apply func(state S, op M) (S, error)

	dir   string
	opts  DurableOptions
	wal   *WAL
	state S

	lastSnapSeq uint64 // last seq covered by a durable snapshot
	sinceSnap   int    // applied ops since the last snapshot

	replayed  int   // ops re-applied during Open
	truncated int64 // torn-tail bytes discarded during Open
}

// OpenDurableRunner opens (creating if needed) the store in dir and
// recovers the runner's state: the latest valid snapshot is restored and
// the WAL suffix re-applied. A fresh directory yields initial as the
// state. The returned runner owns the directory until Close.
func OpenDurableRunner[S, M any](dir string, initial S, apply func(S, M) (S, error), opts DurableOptions) (*DurableRunner[S, M], error) {
	if apply == nil {
		return nil, errors.New("checkpoint: nil apply function")
	}
	wal, err := OpenWAL(filepath.Join(dir, "wal"), opts.WAL)
	if err != nil {
		return nil, err
	}
	r := &DurableRunner[S, M]{
		Apply: apply,
		dir:   dir,
		opts:  opts,
		wal:   wal,
		state: initial,
	}
	if err := r.recover(); err != nil {
		_ = wal.Close()
		return nil, err
	}
	return r, nil
}

// recover restores the latest valid snapshot and replays the log suffix.
func (r *DurableRunner[S, M]) recover() error {
	state, seq, err := restoreLatestSnapshot[S](r.dir)
	switch {
	case err == nil:
		r.state = state
		r.lastSnapSeq = seq
	case errors.Is(err, ErrNoCheckpoint):
		// Fresh store: keep the initial state.
	default:
		return err
	}
	n, err := r.wal.Replay(r.lastSnapSeq, func(_ uint64, payload []byte) error {
		var op M
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); derr != nil {
			return fmt.Errorf("%w: wal record: %w", ErrCorruptCheckpoint, derr)
		}
		next, aerr := r.Apply(r.state, op)
		if aerr != nil {
			return fmt.Errorf("checkpoint: replaying acknowledged op: %w", aerr)
		}
		r.state = next
		return nil
	})
	if err != nil {
		return err
	}
	r.replayed = n
	r.truncated = r.wal.TruncatedBytes()
	r.sinceSnap = n
	if o := r.opts.Observer; o != nil {
		obs.EmitWALReplayed(o, r.opts.name(), n, r.truncated)
	}
	return nil
}

// State returns the current committed state.
func (r *DurableRunner[S, M]) State() S { return r.state }

// LastSeq returns the sequence number of the last acknowledged operation
// (0 when none).
func (r *DurableRunner[S, M]) LastSeq() uint64 { return r.wal.LastSeq() }

// Replayed reports how many operations Open re-applied on top of the
// restored snapshot.
func (r *DurableRunner[S, M]) Replayed() int { return r.replayed }

// TruncatedBytes reports how many torn-tail bytes Open discarded.
func (r *DurableRunner[S, M]) TruncatedBytes() int64 { return r.truncated }

// Step applies one operation. On success the operation is durably logged
// — when Step returns, the op is acknowledged and will survive a crash —
// and, at the configured interval, a snapshot is taken and the log
// compacted. On failure the committed state and the log are unchanged.
func (r *DurableRunner[S, M]) Step(op M) (uint64, error) {
	next, err := r.Apply(r.state, op)
	if err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&op); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrEncodeCheckpoint, err)
	}
	seq, err := r.wal.Append(buf.Bytes())
	if err != nil {
		return 0, err
	}
	r.state = next
	r.sinceSnap++
	if r.sinceSnap >= r.opts.snapshotInterval() {
		if err := r.Snapshot(); err != nil {
			return seq, fmt.Errorf("checkpointing after op %d: %w", seq, err)
		}
	}
	return seq, nil
}

// Snapshot durably commits the current state, covering every
// acknowledged operation, and compacts the log. It is called
// automatically by Step at the configured interval; explicit calls are
// useful before an orderly shutdown.
func (r *DurableRunner[S, M]) Snapshot() error {
	seq := r.wal.LastSeq()
	size, err := writeSnapshot(r.dir, seq, &r.state)
	if err != nil {
		return err
	}
	r.lastSnapSeq = seq
	r.sinceSnap = 0
	pruneSnapshots(r.dir, r.opts.keepSnapshots())
	if err := r.wal.TruncateThrough(seq); err != nil {
		return err
	}
	if o := r.opts.Observer; o != nil {
		obs.EmitCheckpointTaken(o, r.opts.name(), seq, size)
	}
	return nil
}

// Close syncs and closes the underlying log. The directory can be
// reopened with OpenDurableRunner.
func (r *DurableRunner[S, M]) Close() error { return r.wal.Close() }

// snapName formats a snapshot file name.
func snapName(seq uint64) string { return fmt.Sprintf("snap-%020d.ckpt", seq) }

// snapSeqOf parses a snapshot file name; ok is false for foreign files.
func snapSeqOf(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "snap-%020d.ckpt", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// writeSnapshot gob-encodes state and commits it via
// write-temp-then-atomic-rename, returning the encoded size.
func writeSnapshot[S any](dir string, seq uint64, state *S) (int, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(state); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrEncodeCheckpoint, err)
	}
	buf := make([]byte, snapHeader+payload.Len())
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload.Bytes()))
	copy(buf[snapHeader:], payload.Bytes())

	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: snapshot write: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapName(seq))); err != nil {
		_ = os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: snapshot rename: %w", err)
	}
	SyncDir(dir)
	return payload.Len(), nil
}

// snapshotSeqs lists snapshot sequence numbers in dir, ascending.
func snapshotSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: snapshot dir: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		if seq, ok := snapSeqOf(e.Name()); ok {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// restoreLatestSnapshot decodes the newest valid snapshot in dir. A
// snapshot with a bad CRC, a short read, or an undecodable payload is
// skipped in favor of the next older one; with no valid snapshot at all
// it returns ErrNoCheckpoint.
func restoreLatestSnapshot[S any](dir string) (S, uint64, error) {
	var zero S
	seqs, err := snapshotSeqs(dir)
	if err != nil {
		return zero, 0, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		state, err := readSnapshot[S](filepath.Join(dir, snapName(seqs[i])), seqs[i])
		if err != nil {
			if errors.Is(err, ErrCorruptCheckpoint) {
				continue
			}
			return zero, 0, err
		}
		return state, seqs[i], nil
	}
	return zero, 0, ErrNoCheckpoint
}

// readSnapshot decodes one snapshot file, validating the frame.
func readSnapshot[S any](path string, wantSeq uint64) (S, error) {
	var state S
	data, err := os.ReadFile(path)
	if err != nil {
		return state, fmt.Errorf("checkpoint: snapshot read: %w", err)
	}
	if len(data) < snapHeader {
		return state, fmt.Errorf("%w: snapshot of %d bytes is shorter than its header", ErrCorruptCheckpoint, len(data))
	}
	seq := binary.LittleEndian.Uint64(data[0:8])
	crc := binary.LittleEndian.Uint32(data[8:12])
	payload := data[snapHeader:]
	if seq != wantSeq || crc32.ChecksumIEEE(payload) != crc {
		return state, fmt.Errorf("%w: snapshot frame check failed", ErrCorruptCheckpoint)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&state); err != nil {
		return state, fmt.Errorf("%w: %w", ErrCorruptCheckpoint, err)
	}
	return state, nil
}

// pruneSnapshots removes all but the newest keep snapshot files.
// Failures are ignored: stale snapshots are garbage, not corruption.
func pruneSnapshots(dir string, keep int) {
	seqs, err := snapshotSeqs(dir)
	if err != nil || len(seqs) <= keep {
		return
	}
	for _, seq := range seqs[:len(seqs)-keep] {
		_ = os.Remove(filepath.Join(dir, snapName(seq)))
	}
}

package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// counterState is the canonical durable state machine for tests: a
// running sum plus an op count, so divergence from the acknowledged
// history is detectable.
type counterState struct {
	Sum   int
	Count int
}

func applyAdd(s counterState, op int) (counterState, error) {
	if op < 0 {
		return s, errors.New("negative op rejected")
	}
	return counterState{Sum: s.Sum + op, Count: s.Count + 1}, nil
}

func openCounter(t *testing.T, dir string, opts DurableOptions) *DurableRunner[counterState, int] {
	t.Helper()
	opts.WAL.NoSync = true // crashes are simulated by reopening, not killing
	r, err := OpenDurableRunner(dir, counterState{}, applyAdd, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDurableRunnerSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	r := openCounter(t, dir, DurableOptions{SnapshotInterval: 4})
	wantSum := 0
	for i := 1; i <= 10; i++ {
		if _, err := r.Step(i); err != nil {
			t.Fatal(err)
		}
		wantSum += i
	}
	// "Crash": abandon the runner without Snapshot or orderly shutdown.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openCounter(t, dir, DurableOptions{SnapshotInterval: 4})
	defer r2.Close()
	if got := r2.State(); got.Sum != wantSum || got.Count != 10 {
		t.Fatalf("recovered state = %+v, want sum %d count 10", got, wantSum)
	}
	if r2.LastSeq() != 10 {
		t.Errorf("LastSeq = %d, want 10", r2.LastSeq())
	}
	// Snapshots at 4 and 8 mean only ops 9..10 needed replay.
	if r2.Replayed() != 2 {
		t.Errorf("Replayed = %d, want 2", r2.Replayed())
	}
	// The runner keeps accepting ops with a continuous sequence.
	if seq, err := r2.Step(100); err != nil || seq != 11 {
		t.Fatalf("Step after recovery = (%d, %v), want (11, nil)", seq, err)
	}
}

func TestDurableRunnerZeroAcknowledgedLossAcrossTornTail(t *testing.T) {
	dir := t.TempDir()
	r := openCounter(t, dir, DurableOptions{SnapshotInterval: 100})
	for i := 1; i <= 6; i++ {
		if _, err := r.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append of op 7: a partial frame lands after the six
	// acknowledged records.
	seg := filepath.Join(dir, "wal", segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x04, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openCounter(t, dir, DurableOptions{SnapshotInterval: 100})
	defer r2.Close()
	if got := r2.State(); got.Sum != 21 || got.Count != 6 {
		t.Fatalf("state = %+v, want all six acknowledged ops (sum 21)", got)
	}
	if r2.TruncatedBytes() != 3 {
		t.Errorf("TruncatedBytes = %d, want 3", r2.TruncatedBytes())
	}
}

func TestDurableRunnerFailedApplyLeavesStoreUntouched(t *testing.T) {
	dir := t.TempDir()
	r := openCounter(t, dir, DurableOptions{})
	if _, err := r.Step(5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(-1); err == nil {
		t.Fatal("negative op should fail")
	}
	if r.LastSeq() != 1 {
		t.Errorf("failed op must not be logged; LastSeq = %d", r.LastSeq())
	}
	if got := r.State(); got.Sum != 5 || got.Count != 1 {
		t.Errorf("state after failed op = %+v", got)
	}
}

func TestDurableRunnerSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{SnapshotInterval: 2, KeepSnapshots: 2}
	opts.WAL.SegmentBytes = 48 // tiny segments so compaction has targets
	r := openCounter(t, dir, opts)
	for i := 1; i <= 12; i++ {
		if _, err := r.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Errorf("compaction left %d segments, want <= 2", len(segs))
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Errorf("pruning left %d snapshots, want 2", len(snaps))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery over the compacted store still yields the full state.
	r2 := openCounter(t, dir, opts)
	defer r2.Close()
	if got := r2.State(); got.Sum != 78 || got.Count != 12 {
		t.Fatalf("state after compacted recovery = %+v, want sum 78 count 12", got)
	}
}

func TestDurableRunnerSkipsCorruptLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	r := openCounter(t, dir, DurableOptions{SnapshotInterval: 3})
	for i := 1; i <= 9; i++ {
		if _, err := r.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot (seq 9): recovery must fall back to the
	// older one (seq 6) and make up the difference from the WAL... but the
	// WAL was compacted through 9. Whole-segment compaction with a single
	// small segment keeps the tail in place, so the records survive.
	snaps, err := snapshotSeqs(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshotSeqs = %v, %v", snaps, err)
	}
	latest := filepath.Join(dir, snapName(snaps[len(snaps)-1]))
	data, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(latest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := openCounter(t, dir, DurableOptions{SnapshotInterval: 3})
	defer r2.Close()
	if got := r2.State(); got.Sum != 45 || got.Count != 9 {
		t.Fatalf("state = %+v, want sum 45 count 9 (fallback snapshot + replay)", got)
	}
}

func TestDurableRunnerShortSnapshotIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	// A snapshot shorter than its own header must be classified as
	// ErrCorruptCheckpoint, not cause a panic or an ad-hoc error.
	if err := os.WriteFile(filepath.Join(dir, snapName(3)), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := readSnapshot[counterState](filepath.Join(dir, snapName(3)), 3)
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("short snapshot error = %v, want ErrCorruptCheckpoint", err)
	}
	// And OpenDurableRunner treats it as "no snapshot": fresh state.
	r := openCounter(t, dir, DurableOptions{})
	defer r.Close()
	if got := r.State(); got.Count != 0 {
		t.Errorf("state = %+v, want zero value", got)
	}
}

func TestDurableRunnerUnserializableOpIsSentinel(t *testing.T) {
	dir := t.TempDir()
	// gob cannot encode function values: Step must fail with
	// ErrEncodeCheckpoint and leave the committed state untouched.
	apply := func(s int, _ func()) (int, error) { return s + 1, nil }
	r, err := OpenDurableRunner(dir, 0, apply, DurableOptions{WAL: WALOptions{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Step(func() {}); !errors.Is(err, ErrEncodeCheckpoint) {
		t.Fatalf("Step error = %v, want ErrEncodeCheckpoint", err)
	}
	if r.State() != 0 || r.LastSeq() != 0 {
		t.Errorf("state = %d, LastSeq = %d; want 0, 0", r.State(), r.LastSeq())
	}
}

func TestDurableRunnerUnserializableStateSnapshotIsSentinel(t *testing.T) {
	type badState struct {
		Ch chan int // gob-unsupported field
	}
	dir := t.TempDir()
	apply := func(s badState, _ int) (badState, error) { return s, nil }
	r, err := OpenDurableRunner(dir, badState{Ch: make(chan int)}, apply,
		DurableOptions{SnapshotInterval: 1, WAL: WALOptions{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Step(1) // interval 1 forces an immediate snapshot
	if !errors.Is(err, ErrEncodeCheckpoint) {
		t.Fatalf("snapshot of bad state = %v, want ErrEncodeCheckpoint", err)
	}
}

func TestDurableRunnerEmitsObsEvents(t *testing.T) {
	c := obs.NewCollector()
	dir := t.TempDir()
	opts := DurableOptions{Name: "worker", SnapshotInterval: 2, Observer: c, WAL: WALOptions{NoSync: true}}
	r, err := OpenDurableRunner(dir, counterState{}, applyAdd, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := r.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenDurableRunner(dir, counterState{}, applyAdd, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	var snap obs.ExecutorSnapshot
	for _, s := range c.Snapshot() {
		if s.Executor == "worker" {
			snap = s
		}
	}
	if snap.Checkpoints != 2 {
		t.Errorf("Checkpoints = %d, want 2 (ops 2 and 4)", snap.Checkpoints)
	}
	// Both opens replay (the first replays zero records but still reports).
	if snap.WALReplays != 2 {
		t.Errorf("WALReplays = %d, want 2", snap.WALReplays)
	}
}

func TestDurableRunnerNilApply(t *testing.T) {
	if _, err := OpenDurableRunner[int, int](t.TempDir(), 0, nil, DurableOptions{}); err == nil {
		t.Fatal("nil apply must be rejected")
	}
}

func TestDurableRunnerRecoveryEquivalenceProperty(t *testing.T) {
	// Property: for any op stream and any snapshot interval, reopening
	// mid-stream yields exactly the state of the acknowledged prefix.
	for _, interval := range []int{1, 3, 7, 100} {
		for _, crashAt := range []int{0, 1, 5, 17} {
			t.Run(fmt.Sprintf("interval=%d/crashAt=%d", interval, crashAt), func(t *testing.T) {
				dir := t.TempDir()
				opts := DurableOptions{SnapshotInterval: interval}
				opts.WAL.SegmentBytes = 64
				r := openCounter(t, dir, opts)
				want := counterState{}
				for i := 0; i < crashAt; i++ {
					op := (i * 13) % 29
					if _, err := r.Step(op); err != nil {
						t.Fatal(err)
					}
					want, _ = applyAdd(want, op)
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
				r2 := openCounter(t, dir, opts)
				defer r2.Close()
				if got := r2.State(); got != want {
					t.Fatalf("recovered %+v, want %+v", got, want)
				}
			})
		}
	}
}

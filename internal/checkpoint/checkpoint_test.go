package checkpoint

import (
	"errors"
	"testing"
	"testing/quick"
)

type accountState struct {
	Balances map[string]int
	Version  int
}

func TestStoreSaveRestore(t *testing.T) {
	s := NewStore[accountState](0)
	id, err := s.Save(accountState{Balances: map[string]int{"a": 10}, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Restore(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Balances["a"] != 10 || got.Version != 1 {
		t.Errorf("restored = %+v", got)
	}
}

func TestStoreSnapshotsAreDeepCopies(t *testing.T) {
	s := NewStore[accountState](0)
	live := accountState{Balances: map[string]int{"a": 10}}
	id, err := s.Save(live)
	if err != nil {
		t.Fatal(err)
	}
	live.Balances["a"] = 999 // mutate after checkpoint
	got, err := s.Restore(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Balances["a"] != 10 {
		t.Errorf("snapshot aliased live state: restored balance %d", got.Balances["a"])
	}
}

func TestStoreUnknownID(t *testing.T) {
	s := NewStore[int](0)
	if _, err := s.Restore(7); !errors.Is(err, ErrUnknownCheckpoint) {
		t.Errorf("err = %v", err)
	}
}

func TestStoreLatestEmpty(t *testing.T) {
	s := NewStore[int](0)
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v", err)
	}
}

func TestStoreCapacityEviction(t *testing.T) {
	s := NewStore[int](2)
	id0, _ := s.Save(0)
	s.Save(1)
	s.Save(2)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if _, err := s.Restore(id0); !errors.Is(err, ErrUnknownCheckpoint) {
		t.Errorf("oldest snapshot should be evicted, err = %v", err)
	}
	v, id, err := s.Latest()
	if err != nil || v != 2 {
		t.Errorf("Latest = (%d, %d, %v)", v, id, err)
	}
}

// Property: save/restore round-trips arbitrary serializable states.
func TestStoreRoundTripProperty(t *testing.T) {
	type point struct{ X, Y int }
	s := NewStore[point](0)
	f := func(x, y int) bool {
		id, err := s.Save(point{X: x, Y: y})
		if err != nil {
			return false
		}
		got, err := s.Restore(id)
		return err == nil && got.X == x && got.Y == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogAppendSince(t *testing.T) {
	l := NewLog[string]()
	s0 := l.Append("a")
	l.Append("b")
	l.Append("c")
	if got := l.Since(-1); len(got) != 3 {
		t.Errorf("Since(-1) = %v", got)
	}
	got := l.Since(s0)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Since(%d) = %v", s0, got)
	}
}

func TestLogTruncate(t *testing.T) {
	l := NewLog[int]()
	l.Append(1)
	s1 := l.Append(2)
	l.Append(3)
	l.TruncateThrough(s1)
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1", l.Len())
	}
	got := l.Since(-1)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("after truncate: %v", got)
	}
}

type counter struct {
	Total int
}

func addOp(s counter, n int) (counter, error) {
	s.Total += n
	return s, nil
}

func TestRunnerBasicStepping(t *testing.T) {
	r, err := NewRunner(counter{}, addOp, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		if err := r.Step(n); err != nil {
			t.Fatal(err)
		}
	}
	if r.State().Total != 6 {
		t.Errorf("state = %+v", r.State())
	}
}

func TestRunnerRecoverReplays(t *testing.T) {
	r, err := NewRunner(counter{}, addOp, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ops: 1, 2 (checkpoint), 3 — log now holds [3].
	for _, n := range []int{1, 2, 3} {
		if err := r.Step(n); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Errorf("replayed = %d, want 1", replayed)
	}
	if r.State().Total != 6 {
		t.Errorf("recovered state = %+v, want Total 6", r.State())
	}
}

func TestRunnerRecoverWithNoOpsSinceCheckpoint(t *testing.T) {
	r, err := NewRunner(counter{Total: 5}, addOp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(10); err != nil { // checkpointed immediately
		t.Fatal(err)
	}
	replayed, err := r.Recover()
	if err != nil || replayed != 0 {
		t.Errorf("Recover = (%d, %v), want (0, nil)", replayed, err)
	}
	if r.State().Total != 15 {
		t.Errorf("state = %+v", r.State())
	}
}

func TestRunnerFailedStepLeavesStateIntact(t *testing.T) {
	boom := errors.New("boom")
	apply := func(s counter, n int) (counter, error) {
		if n < 0 {
			return s, boom
		}
		s.Total += n
		return s, nil
	}
	r, err := NewRunner(counter{}, apply, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(4); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(-1); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if r.State().Total != 4 {
		t.Errorf("failed step corrupted state: %+v", r.State())
	}
	// Recovery replays only the successful op.
	replayed, err := r.Recover()
	if err != nil || replayed != 1 {
		t.Errorf("Recover = (%d, %v)", replayed, err)
	}
	if r.State().Total != 4 {
		t.Errorf("recovered = %+v", r.State())
	}
}

func TestRunnerDeterministicFailureReplaysAgain(t *testing.T) {
	// A Bohrbug in Apply fails during replay too: checkpoint-recovery
	// cannot mask deterministic faults.
	calls := 0
	apply := func(s counter, n int) (counter, error) {
		calls++
		if n == 13 && calls > 2 { // op 13 "succeeds" once, then the bug is in state
			return s, errors.New("deterministic corruption")
		}
		s.Total += n
		return s, nil
	}
	r, err := NewRunner(counter{}, apply, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(13); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Recover(); err == nil {
		t.Error("replay of a deterministic failure should fail")
	}
}

func TestRunnerNilApply(t *testing.T) {
	if _, err := NewRunner[counter, int](counter{}, nil, 1); err == nil {
		t.Error("want error for nil apply")
	}
}

func TestRunnerIntervalBelowOneCheckpointsEveryOp(t *testing.T) {
	r, err := NewRunner(counter{}, addOp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	// Log should always be empty right after a checkpoint.
	replayed, err := r.Recover()
	if err != nil || replayed != 0 {
		t.Errorf("Recover = (%d, %v), want (0, nil)", replayed, err)
	}
	if r.State().Total != 5 {
		t.Errorf("state = %+v", r.State())
	}
}

// Property: for any op sequence and any checkpoint interval, recovery
// reconstructs exactly the committed state.
func TestRunnerRecoveryEquivalenceProperty(t *testing.T) {
	f := func(ops []int8, intervalRaw uint8) bool {
		interval := int(intervalRaw%5) + 1
		r, err := NewRunner(counter{}, addOp, interval)
		if err != nil {
			return false
		}
		want := 0
		for _, op := range ops {
			if err := r.Step(int(op)); err != nil {
				return false
			}
			want += int(op)
		}
		if _, err := r.Recover(); err != nil {
			return false
		}
		return r.State().Total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

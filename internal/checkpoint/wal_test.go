package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// collectWAL replays the whole log into a slice of payload copies.
func collectWAL(t *testing.T, w *WAL, after uint64) [][]byte {
	t.Helper()
	var out [][]byte
	n, err := w.Replay(after, func(_ uint64, payload []byte) error {
		out = append(out, bytes.Clone(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(out))
	}
	return out
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		want = append(want, p)
	}
	got := collectWAL(t, w, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Replay after a midpoint skips the covered prefix.
	if n := len(collectWAL(t, w, 7)); n != 3 {
		t.Errorf("replay after 7 delivered %d records, want 3", n)
	}
	if w.LastSeq() != 10 {
		t.Errorf("LastSeq = %d", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the cursor continues from the durable tail.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 10 {
		t.Fatalf("reopened LastSeq = %d, want 10", w2.LastSeq())
	}
	if seq, err := w2.Append([]byte("after-reopen")); err != nil || seq != 11 {
		t.Fatalf("Append after reopen = (%d, %v), want (11, nil)", seq, err)
	}
}

func TestWALTornTailTruncationIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: write a partial frame at the tail.
	path := filepath.Join(dir, segName(1))
	fullSize := fileSize(path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x07, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.LastSeq() != 5 {
		t.Fatalf("LastSeq after torn tail = %d, want 5", w2.LastSeq())
	}
	if w2.TruncatedBytes() != 6 {
		t.Errorf("TruncatedBytes = %d, want 6", w2.TruncatedBytes())
	}
	if got := fileSize(path); got != fullSize {
		t.Errorf("segment size after truncation = %d, want %d", got, fullSize)
	}
	if n := len(collectWAL(t, w2, 0)); n != 5 {
		t.Errorf("replay delivered %d records, want 5", n)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// A second reopen must see the identical, already-truncated log.
	w3, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.LastSeq() != 5 || w3.TruncatedBytes() != 0 {
		t.Errorf("second reopen: LastSeq = %d, TruncatedBytes = %d; want 5, 0",
			w3.LastSeq(), w3.TruncatedBytes())
	}
}

func TestWALCorruptMidLogDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	// Small segments force several files.
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-number-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}

	// Flip a CRC bit in the middle segment: the valid prefix ends there,
	// and every later segment must be dropped.
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.TruncatedBytes() == 0 {
		t.Error("expected truncated bytes after mid-log corruption")
	}
	got := collectWAL(t, w2, 0)
	if len(got) == 0 || len(got) >= 12 {
		t.Fatalf("replay delivered %d records, want a strict non-empty prefix of 12", len(got))
	}
	for i, p := range got {
		if want := fmt.Sprintf("record-number-%02d", i); string(p) != want {
			t.Errorf("record %d = %q, want %q (prefix property violated)", i, p, want)
		}
	}
	if remaining := walSegFiles(t, dir); len(remaining) > len(segs)/2+1 {
		t.Errorf("segments after tear = %d, want <= %d", len(remaining), len(segs)/2+1)
	}
}

func walSegFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 20; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("record-number-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = seq
	}
	before := len(walSegFiles(t, dir))
	if before < 3 {
		t.Fatalf("want >= 3 segments before compaction, got %d", before)
	}

	// Compact through the last sequence: only the tail segment survives,
	// and replay after the covered prefix is empty.
	if err := w.TruncateThrough(lastSeq); err != nil {
		t.Fatal(err)
	}
	after := len(walSegFiles(t, dir))
	if after >= before {
		t.Errorf("segments after compaction = %d, want < %d", after, before)
	}
	if n := len(collectWAL(t, w, lastSeq)); n != 0 {
		t.Errorf("replay after full compaction delivered %d records", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after compaction: appends continue the global sequence.
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != lastSeq {
		t.Fatalf("LastSeq after compacted reopen = %d, want %d", w2.LastSeq(), lastSeq)
	}
	if seq, err := w2.Append([]byte("next")); err != nil || seq != lastSeq+1 {
		t.Fatalf("Append = (%d, %v), want (%d, nil)", seq, err, lastSeq+1)
	}
}

func TestWALPartialCompactionKeepsUncoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-number-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Compact through seq 3 only: later records must all survive.
	if err := w.TruncateThrough(3); err != nil {
		t.Fatal(err)
	}
	got := collectWAL(t, w, 3)
	if len(got) != 17 {
		t.Fatalf("replay after 3 delivered %d records, want 17", len(got))
	}
	if string(got[0]) != "record-number-03" {
		t.Errorf("first uncovered record = %q", got[0])
	}
}

func TestWALOversizeRecordRejected(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(make([]byte, walMaxRecord+1)); !errors.Is(err, ErrEncodeCheckpoint) {
		t.Fatalf("oversize append error = %v, want ErrEncodeCheckpoint", err)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("Append on a closed WAL should fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestWALSyncEveryBatches(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Only durability, not correctness, depends on the sync cadence; the
	// log content is identical.
	if n := len(collectWAL(t, w, 0)); n != 10 {
		t.Errorf("replayed %d records, want 10", n)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestWALSequenceGapIsATear(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the third frame with seq 9 (valid CRC, broken contiguity).
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := int64(walFrameHeader + 1)
	off := 2 * frameLen
	binary.LittleEndian.PutUint64(data[off+8:off+16], 9)
	reframe := data[off : off+frameLen]
	binary.LittleEndian.PutUint32(reframe[4:8], crc32.ChecksumIEEE(reframe[8:]))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 2 {
		t.Errorf("LastSeq = %d, want 2 (gap frame discarded)", w2.LastSeq())
	}
	if n := len(collectWAL(t, w2, 0)); n != 2 {
		t.Errorf("replayed %d records, want 2", n)
	}
}

package checkpoint

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the append path without fsync (the
// framing + write cost; fsync cost is hardware, not code).
func BenchmarkWALAppend(b *testing.B) {
	w, err := OpenWAL(b.TempDir(), WALOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendSynced measures the acknowledged-durable append
// path: fsync after every record.
func BenchmarkWALAppendSynced(b *testing.B) {
	w, err := OpenWAL(b.TempDir(), WALOptions{SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures sequential replay throughput over a
// 1000-record log.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := 0; i < 1000; i++ {
		if _, err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(1000 * len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := w.Replay(0, func(uint64, []byte) error { return nil })
		if err != nil || n != 1000 {
			b.Fatalf("Replay = (%d, %v)", n, err)
		}
	}
	b.StopTimer()
	_ = w.Close()
}

// BenchmarkCrashRecovery measures full crash recovery — open, restore
// the latest snapshot, replay the log suffix — for a store with a
// varying replay distance (ops written past the last snapshot).
func BenchmarkCrashRecovery(b *testing.B) {
	for _, suffix := range []int{0, 64, 512} {
		b.Run(fmt.Sprintf("replay=%d", suffix), func(b *testing.B) {
			dir := b.TempDir()
			opts := DurableOptions{SnapshotInterval: 1 << 30, WAL: WALOptions{NoSync: true}}
			r, err := OpenDurableRunner(dir, counterStateB{}, applyAddB, opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 256; i++ { // state built before the snapshot
				if _, err := r.Step(i); err != nil {
					b.Fatal(err)
				}
			}
			if err := r.Snapshot(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < suffix; i++ { // the un-snapshotted suffix
				if _, err := r.Step(i); err != nil {
					b.Fatal(err)
				}
			}
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r2, err := OpenDurableRunner(dir, counterStateB{}, applyAddB, opts)
				if err != nil {
					b.Fatal(err)
				}
				if r2.Replayed() != suffix {
					b.Fatalf("Replayed = %d, want %d", r2.Replayed(), suffix)
				}
				if err := r2.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// counterStateB mirrors the test helper for benchmarks (bench files
// build alongside test files, but keeping them self-contained makes the
// benchmark copy-pasteable).
type counterStateB struct {
	Sum   int
	Count int
}

func applyAddB(s counterStateB, op int) (counterStateB, error) {
	return counterStateB{Sum: s.Sum + op, Count: s.Count + 1}, nil
}

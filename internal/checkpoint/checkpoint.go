// Package checkpoint implements the checkpoint-recovery substrate of the
// framework: serialized state snapshots, a message log, and a replayer
// that restores the latest consistent state and re-applies logged
// operations.
//
// In the paper's taxonomy, checkpoint-recovery opportunistically exploits
// environment redundancy: after a failure the system is brought back to a
// consistent state and re-executed, relying on spontaneous changes in the
// environment to avoid the conditions that produced the failure. The same
// substrate also provides the rollback mechanism that recovery blocks
// require and the basis for checkpoint-assisted rejuvenation (Garg et
// al.).
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors for checkpoint stores and logs.
var (
	// ErrNoCheckpoint is returned when no snapshot is available.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint available")
	// ErrUnknownCheckpoint is returned for an id that does not exist.
	ErrUnknownCheckpoint = errors.New("checkpoint: unknown checkpoint id")
	// ErrCorruptCheckpoint is returned when stored checkpoint data cannot
	// be decoded back into a state: a failed CRC, a short read, or a gob
	// stream that does not match the state type. Callers branch on it
	// with errors.Is to distinguish corruption from I/O failures.
	ErrCorruptCheckpoint = errors.New("checkpoint: corrupt checkpoint data")
	// ErrEncodeCheckpoint is returned when a state cannot be serialized
	// into a checkpoint in the first place (e.g. a gob-unsupported type
	// such as a function or channel field).
	ErrEncodeCheckpoint = errors.New("checkpoint: state not serializable")
)

// Store keeps serialized snapshots of a process state. Snapshots are deep
// copies (gob round-trips), so later mutations of the live state cannot
// corrupt a saved checkpoint — the property rollback correctness depends
// on. The zero value is not usable; create stores with NewStore.
type Store[S any] struct {
	mu       sync.Mutex
	blobs    map[int][]byte
	order    []int
	nextID   int
	capacity int
}

// NewStore creates a snapshot store that retains at most capacity
// snapshots (older ones are evicted first). capacity <= 0 means unbounded.
func NewStore[S any](capacity int) *Store[S] {
	return &Store[S]{
		blobs:    make(map[int][]byte),
		capacity: capacity,
	}
}

// Save snapshots state and returns the checkpoint id.
func (s *Store[S]) Save(state S) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&state); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrEncodeCheckpoint, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.blobs[id] = buf.Bytes()
	s.order = append(s.order, id)
	if s.capacity > 0 && len(s.order) > s.capacity {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.blobs, evict)
	}
	return id, nil
}

// Restore decodes the snapshot with the given id into a fresh state value.
func (s *Store[S]) Restore(id int) (S, error) {
	var state S
	s.mu.Lock()
	blob, ok := s.blobs[id]
	s.mu.Unlock()
	if !ok {
		return state, fmt.Errorf("id %d: %w", id, ErrUnknownCheckpoint)
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&state); err != nil {
		return state, fmt.Errorf("checkpoint %d: %w: %w", id, ErrCorruptCheckpoint, err)
	}
	return state, nil
}

// Latest restores the most recent snapshot.
func (s *Store[S]) Latest() (S, int, error) {
	s.mu.Lock()
	if len(s.order) == 0 {
		s.mu.Unlock()
		var zero S
		return zero, 0, ErrNoCheckpoint
	}
	id := s.order[len(s.order)-1]
	s.mu.Unlock()
	state, err := s.Restore(id)
	return state, id, err
}

// Len reports the number of retained snapshots.
func (s *Store[S]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Log records the operations applied since the last checkpoint so they
// can be replayed after a rollback (message logging in rollback-recovery
// protocols).
type Log[M any] struct {
	mu      sync.Mutex
	entries []entry[M]
	nextSeq int
}

type entry[M any] struct {
	seq int
	msg M
}

// NewLog creates an empty message log.
func NewLog[M any]() *Log[M] {
	return &Log[M]{}
}

// Append records a message and returns its sequence number.
func (l *Log[M]) Append(msg M) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq
	l.nextSeq++
	l.entries = append(l.entries, entry[M]{seq: seq, msg: msg})
	return seq
}

// Since returns the messages with sequence number > seq, in order.
// Pass -1 for all messages.
func (l *Log[M]) Since(seq int) []M {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []M
	for _, e := range l.entries {
		if e.seq > seq {
			out = append(out, e.msg)
		}
	}
	return out
}

// TruncateThrough discards messages with sequence number <= seq; they are
// covered by a checkpoint and no longer needed for replay.
func (l *Log[M]) TruncateThrough(seq int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.entries[:0]
	for _, e := range l.entries {
		if e.seq > seq {
			keep = append(keep, e)
		}
	}
	l.entries = keep
}

// Len reports the number of retained log entries.
func (l *Log[M]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Runner drives a deterministic state machine with periodic checkpoints
// and operation logging, and recovers it after failures by rolling back
// to the latest checkpoint and replaying the logged operations.
//
// Apply must be a pure transition function: given the same state and
// operation it must produce the same next state. Failures are reported by
// Apply returning an error; the state passed to Apply is a working copy,
// so a failed application never corrupts the committed state.
type Runner[S, M any] struct {
	// Apply is the state transition function.
	Apply func(state S, op M) (S, error)
	// Interval is the number of operations between checkpoints. Values
	// below 1 checkpoint on every operation.
	Interval int

	store    *Store[S]
	log      *Log[M]
	state    S
	sinceCkp int
	lastSeq  int // highest sequence number covered by the latest checkpoint
}

// NewRunner creates a runner with the given initial state. An initial
// checkpoint of that state is taken immediately so recovery is always
// possible.
func NewRunner[S, M any](initial S, apply func(S, M) (S, error), interval int) (*Runner[S, M], error) {
	if apply == nil {
		return nil, errors.New("checkpoint: nil apply function")
	}
	r := &Runner[S, M]{
		Apply:    apply,
		Interval: interval,
		store:    NewStore[S](2),
		log:      NewLog[M](),
		state:    initial,
		lastSeq:  -1,
	}
	if _, err := r.store.Save(initial); err != nil {
		return nil, err
	}
	return r, nil
}

// State returns the current committed state.
func (r *Runner[S, M]) State() S { return r.state }

// Step applies one operation. On success the operation is logged and, at
// the configured interval, a checkpoint is taken. On failure the
// committed state is unchanged and the caller decides whether to Recover
// and retry.
func (r *Runner[S, M]) Step(op M) error {
	next, err := r.Apply(r.state, op)
	if err != nil {
		return err
	}
	r.state = next
	seq := r.log.Append(op)
	r.sinceCkp++
	if r.Interval < 1 || r.sinceCkp >= r.Interval {
		if _, err := r.store.Save(r.state); err != nil {
			return fmt.Errorf("checkpointing after op %d: %w", seq, err)
		}
		r.sinceCkp = 0
		r.lastSeq = seq
		r.log.TruncateThrough(seq)
	}
	return nil
}

// Recover rolls back to the latest checkpoint and replays the logged
// operations. It returns the number of replayed operations. Replay
// re-executes Apply, so a deterministic failure will fail again — the
// reason checkpoint-recovery cannot mask Bohrbugs.
func (r *Runner[S, M]) Recover() (replayed int, err error) {
	state, _, err := r.store.Latest()
	if err != nil {
		return 0, err
	}
	ops := r.log.Since(r.lastSeq)
	for i, op := range ops {
		state, err = r.Apply(state, op)
		if err != nil {
			return i, fmt.Errorf("replaying op %d of %d: %w", i+1, len(ops), err)
		}
	}
	r.state = state
	return len(ops), nil
}

// Package nvp implements N-version programming (Avizienis), the classic
// deliberate code-redundancy technique: N independently developed versions
// of the same program execute in parallel on the same input and a general
// voting algorithm selects the final result from the majority output.
//
// Taxonomy position (paper Table 2): deliberate intention, code
// redundancy, reactive implicit adjudicator, development faults.
// Architectural pattern: parallel evaluation (Figure 1a).
//
// The package also provides the analytic reliability model used by the
// experiments: the probability that a majority vote delivers the correct
// result for independent version failures, and its degradation under
// correlated (common-mode) failures as observed by Brilliant, Knight and
// Leveson.
package nvp

import (
	"context"
	"math"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// System is an N-version programming executor: a parallel-evaluation
// pattern with a majority-voting implicit adjudicator.
type System[I, O any] struct {
	exec *pattern.ParallelEvaluation[I, O]
	n    int
}

var _ core.Executor[int, int] = (*System[int, int])(nil)

// New builds an N-version system over the given versions. eq defines
// result equivalence for the vote. Options are forwarded to the
// underlying pattern executor (metrics, per-version timeout).
func New[I, O any](versions []core.Variant[I, O], eq core.Equal[O], opts ...pattern.Option) (*System[I, O], error) {
	exec, err := pattern.NewParallelEvaluation(versions, vote.Majority(eq), opts...)
	if err != nil {
		return nil, err
	}
	return &System[I, O]{exec: exec, n: len(versions)}, nil
}

// NewWithAdjudicator builds an N-version system with a custom implicit
// adjudicator (e.g. vote.MOfN for consensus voting à la WS-FTM, or
// vote.MedianAdjudicator for inexact numeric voting).
func NewWithAdjudicator[I, O any](versions []core.Variant[I, O], adj core.Adjudicator[O], opts ...pattern.Option) (*System[I, O], error) {
	exec, err := pattern.NewParallelEvaluation(versions, adj, opts...)
	if err != nil {
		return nil, err
	}
	return &System[I, O]{exec: exec, n: len(versions)}, nil
}

// N returns the number of versions.
func (s *System[I, O]) N() int { return s.n }

// TolerableFaults returns how many faulty version results the system's
// majority vote can outvote: floor((N-1)/2).
func (s *System[I, O]) TolerableFaults() int { return vote.TolerableFaults(s.n) }

// Execute implements core.Executor.
func (s *System[I, O]) Execute(ctx context.Context, input I) (O, error) {
	return s.exec.Execute(ctx, input)
}

// ExecuteAll exposes the raw per-version results for inspection.
func (s *System[I, O]) ExecuteAll(ctx context.Context, input I) []core.Result[O] {
	return s.exec.ExecuteAll(ctx, input)
}

// binomialTail returns P[X <= k] for X ~ Binomial(n, p).
func binomialTail(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	total := 0.0
	for i := 0; i <= k; i++ {
		total += math.Exp(lnChoose(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log1p(-p))
	}
	if total > 1 {
		return 1
	}
	return total
}

// lnChoose returns ln(C(n, k)) via log-gamma.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// ReliabilityIndependent returns the probability that a majority vote over
// n versions delivers the correct result when each version independently
// fails with probability p and wrong results never accidentally agree
// with the correct value. The vote succeeds when at most
// TolerableFaults(n) versions fail.
func ReliabilityIndependent(n int, p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	return binomialTail(n, vote.TolerableFaults(n), p)
}

// ReliabilityCorrelated returns the majority-vote success probability
// under the common-shock correlation model of
// faultmodel.CorrelatedFailures: with probability rho all versions share
// one failure draw (the vote then succeeds iff that draw succeeds), and
// with probability 1-rho versions fail independently.
//
// The gap between ReliabilityIndependent and ReliabilityCorrelated is the
// reliability erosion Brilliant et al. measured: at rho=1 the N-version
// system is no more reliable than a single version.
func ReliabilityCorrelated(n int, p, rho float64) float64 {
	return rho*(1-p) + (1-rho)*ReliabilityIndependent(n, p)
}

// Ensemble is the Monte Carlo vehicle for the correlation experiment: it
// simulates an N-version system whose joint version failures follow a
// CorrelatedFailures law. Failing versions return an agreed-upon wrong
// value when the failure is common-mode (the case that defeats voting)
// and version-specific wrong values otherwise.
type Ensemble struct {
	// Law is the joint failure distribution.
	Law faultmodel.CorrelatedFailures
	// Rand drives the joint draws.
	Rand *xrand.Rand

	adj core.Adjudicator[int]
}

// NewEnsemble builds an ensemble with a majority-vote adjudicator.
func NewEnsemble(law faultmodel.CorrelatedFailures, rng *xrand.Rand) (*Ensemble, error) {
	if err := law.Validate(); err != nil {
		return nil, err
	}
	return &Ensemble{
		Law:  law,
		Rand: rng,
		adj:  vote.Majority(core.EqualOf[int]()),
	}, nil
}

// Round simulates one voted request. correct is the right answer every
// healthy version produces. It returns the voted value and whether the
// system delivered the correct result.
func (e *Ensemble) Round(correct int) (voted int, ok bool) {
	fails, common := e.Law.Draw(e.Rand)
	results := make([]core.Result[int], len(fails))
	for i, failed := range fails {
		value := correct
		if failed {
			if common {
				// Common-mode failures produce an identical wrong answer.
				value = correct + 1
			} else {
				// Independent failures produce version-specific wrong
				// answers that do not form a block.
				value = correct + 2 + i
			}
		}
		results[i] = core.Result[int]{Variant: "v", Value: value}
	}
	v, err := e.adj.Adjudicate(results)
	if err != nil {
		return 0, false
	}
	return v, v == correct
}

package nvp

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func version(name string, v int) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
		return v, nil
	})
}

func TestSystemMajorityMasksMinorityFault(t *testing.T) {
	sys, err := New(
		[]core.Variant[int, int]{version("v1", 42), version("v2", 42), version("v3", 0)},
		core.EqualOf[int](),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 3 || sys.TolerableFaults() != 1 {
		t.Errorf("N=%d, TolerableFaults=%d", sys.N(), sys.TolerableFaults())
	}
	got, err := sys.Execute(context.Background(), 0)
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
}

func TestSystemNoMajority(t *testing.T) {
	sys, err := New(
		[]core.Variant[int, int]{version("v1", 1), version("v2", 2), version("v3", 3)},
		core.EqualOf[int](),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(context.Background(), 0); !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("err = %v, want ErrNoConsensus", err)
	}
}

func TestSystemFiveVersionsTolerateTwo(t *testing.T) {
	vs := []core.Variant[int, int]{
		version("v1", 7), version("v2", 7), version("v3", 7),
		version("v4", 1), version("v5", 2),
	}
	sys, err := New(vs, core.EqualOf[int]())
	if err != nil {
		t.Fatal(err)
	}
	if sys.TolerableFaults() != 2 {
		t.Errorf("TolerableFaults = %d, want 2", sys.TolerableFaults())
	}
	got, err := sys.Execute(context.Background(), 0)
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v), want (7, nil)", got, err)
	}
}

func TestNewWithAdjudicatorMedian(t *testing.T) {
	mk := func(name string, v float64) core.Variant[int, float64] {
		return core.NewVariant(name, func(_ context.Context, _ int) (float64, error) {
			return v, nil
		})
	}
	sys, err := NewWithAdjudicator(
		[]core.Variant[int, float64]{mk("a", 1.0), mk("b", 1.05), mk("c", 99)},
		vote.MedianAdjudicator(),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Execute(context.Background(), 0)
	if err != nil || got != 1.05 {
		t.Errorf("= (%f, %v), want (1.05, nil)", got, err)
	}
}

func TestExecuteAllExposesRawResults(t *testing.T) {
	sys, err := New(
		[]core.Variant[int, int]{version("v1", 1), version("v2", 2), version("v3", 2)},
		core.EqualOf[int](),
	)
	if err != nil {
		t.Fatal(err)
	}
	rs := sys.ExecuteAll(context.Background(), 0)
	if len(rs) != 3 || rs[0].Value != 1 || rs[1].Value != 2 {
		t.Errorf("raw results = %+v", rs)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := New[int, int](nil, core.EqualOf[int]()); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewWithAdjudicator[int, int](nil, vote.FirstSuccess[int]()); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
}

func TestReliabilityIndependentKnownValues(t *testing.T) {
	// n=3, p=0.1: success = P[0 or 1 failures]
	// = 0.9^3 + 3*0.1*0.9^2 = 0.729 + 0.243 = 0.972.
	if got := ReliabilityIndependent(3, 0.1); math.Abs(got-0.972) > 1e-9 {
		t.Errorf("R(3, 0.1) = %f, want 0.972", got)
	}
	// n=1: reliability equals 1-p.
	if got := ReliabilityIndependent(1, 0.3); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("R(1, 0.3) = %f, want 0.7", got)
	}
	if ReliabilityIndependent(5, 0) != 1 {
		t.Error("p=0 must give reliability 1")
	}
	if ReliabilityIndependent(5, 1) != 0 {
		t.Error("p=1 must give reliability 0")
	}
}

func TestReliabilityImprovesWithVersionsWhenPSmall(t *testing.T) {
	p := 0.05
	r1 := ReliabilityIndependent(1, p)
	r3 := ReliabilityIndependent(3, p)
	r5 := ReliabilityIndependent(5, p)
	if !(r5 > r3 && r3 > r1) {
		t.Errorf("reliability should grow with n for small p: %f, %f, %f", r1, r3, r5)
	}
}

func TestReliabilityDegradesWithVersionsWhenPLarge(t *testing.T) {
	// Above p = 0.5 voting makes things worse — the classic crossover.
	p := 0.7
	r1 := ReliabilityIndependent(1, p)
	r5 := ReliabilityIndependent(5, p)
	if r5 >= r1 {
		t.Errorf("for p > 0.5, voting should hurt: r1=%f, r5=%f", r1, r5)
	}
}

func TestReliabilityCorrelatedEndpoints(t *testing.T) {
	n, p := 3, 0.1
	if got := ReliabilityCorrelated(n, p, 0); math.Abs(got-ReliabilityIndependent(n, p)) > 1e-12 {
		t.Errorf("rho=0 should match independent: %f", got)
	}
	if got := ReliabilityCorrelated(n, p, 1); math.Abs(got-(1-p)) > 1e-12 {
		t.Errorf("rho=1 should match single version: %f", got)
	}
}

func TestReliabilityCorrelatedMonotoneDecay(t *testing.T) {
	n, p := 5, 0.1
	prev := math.Inf(1)
	for _, rho := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r := ReliabilityCorrelated(n, p, rho)
		if r > prev {
			t.Errorf("reliability gain should decay with correlation: rho=%f r=%f prev=%f", rho, r, prev)
		}
		prev = r
	}
}

func TestEnsembleMatchesAnalyticModel(t *testing.T) {
	for _, rho := range []float64{0, 0.5, 1} {
		law := faultmodel.CorrelatedFailures{N: 3, P: 0.1, Rho: rho}
		ens, err := NewEnsemble(law, xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		const trials = 60000
		okCount := 0
		for i := 0; i < trials; i++ {
			if _, ok := ens.Round(100); ok {
				okCount++
			}
		}
		got := float64(okCount) / trials
		want := ReliabilityCorrelated(3, 0.1, rho)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rho=%f: simulated %f, analytic %f", rho, got, want)
		}
	}
}

func TestEnsembleInvalidLaw(t *testing.T) {
	if _, err := NewEnsemble(faultmodel.CorrelatedFailures{N: 0}, xrand.New(1)); err == nil {
		t.Error("want error for invalid law")
	}
}

func TestEnsembleCommonModeDefeatsVote(t *testing.T) {
	// With rho=1 and p=1 every round is a unanimous wrong answer: the
	// vote "succeeds" but delivers the wrong value.
	law := faultmodel.CorrelatedFailures{N: 3, P: 1, Rho: 1}
	ens, err := NewEnsemble(law, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	voted, ok := ens.Round(100)
	if ok {
		t.Error("common-mode wrong answer reported as correct")
	}
	if voted != 0 {
		// The adjudicator reaches consensus on the wrong value; Round
		// reports !ok and a zero voted value only when the vote errs.
		// Consensus on a wrong value returns that value with ok=false.
		if voted != 101 {
			t.Errorf("voted = %d, want the common wrong answer 101", voted)
		}
	}
}

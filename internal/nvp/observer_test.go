package nvp

import (
	"context"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
)

// TestSystemForwardsObserver checks that observation options flow through
// New to the underlying parallel-evaluation executor: the collector sees
// the request span and one execution per version.
func TestSystemForwardsObserver(t *testing.T) {
	c := obs.NewCollector()
	version := func(name string, out int) core.Variant[int, int] {
		return core.NewVariant(name, func(context.Context, int) (int, error) { return out, nil })
	}
	sys, err := New(
		[]core.Variant[int, int]{version("v1", 4), version("v2", 4), version("v3", 5)},
		core.EqualOf[int](),
		pattern.WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sys.Execute(context.Background(), 1); err != nil || got != 4 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Executor != "parallel-evaluation" {
		t.Fatalf("snapshot = %+v", snap)
	}
	s := snap[0]
	if s.Requests != 1 || len(s.Variants) != 3 {
		t.Errorf("stats = %+v", s)
	}
	var execs int64
	for _, v := range s.Variants {
		execs += v.Executions
	}
	if execs != 3 {
		t.Errorf("version executions = %d, want 3", execs)
	}
	// All versions returned, none errored: the disagreeing version is a
	// vote-level rejection, not a variant error.
	if s.Successes != 1 {
		t.Errorf("successes = %d, want 1 (vote delivered the majority)", s.Successes)
	}
}

// Package avail provides the classical dependability algebra the
// experiments reason with: steady-state availability from MTBF/MTTR,
// series/parallel composition, and k-of-n voting reliability. These are
// the standard structural formulas of the fault-tolerance literature the
// paper builds on; the Monte Carlo experiments cross-check against them.
package avail

import (
	"errors"
	"math"
	"time"
)

// ErrBadParameter reports an out-of-domain argument.
var ErrBadParameter = errors.New("avail: parameter out of domain")

// Availability returns the steady-state availability of a component with
// the given mean time between failures and mean time to repair:
// MTBF / (MTBF + MTTR).
func Availability(mtbf, mttr time.Duration) (float64, error) {
	if mtbf <= 0 || mttr < 0 {
		return 0, ErrBadParameter
	}
	return float64(mtbf) / float64(mtbf+mttr), nil
}

// Series returns the availability (or reliability) of components composed
// in series: all must be up, so the values multiply.
func Series(values ...float64) (float64, error) {
	out := 1.0
	for _, v := range values {
		if v < 0 || v > 1 {
			return 0, ErrBadParameter
		}
		out *= v
	}
	return out, nil
}

// Parallel returns the availability of components composed in parallel
// redundancy: the system is down only when all components are down.
func Parallel(values ...float64) (float64, error) {
	down := 1.0
	for _, v := range values {
		if v < 0 || v > 1 {
			return 0, ErrBadParameter
		}
		down *= 1 - v
	}
	return 1 - down, nil
}

// KOfN returns the probability that at least k of n independent
// components with per-component probability p are up — the structural
// reliability of a k-of-n voting system.
func KOfN(n, k int, p float64) (float64, error) {
	if n < 1 || k < 0 || k > n || p < 0 || p > 1 {
		return 0, ErrBadParameter
	}
	total := 0.0
	for i := k; i <= n; i++ {
		total += binom(n, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// Majority returns the reliability of an n-component majority-voting
// system (k = floor(n/2)+1), the structural model of N-version
// programming with per-version success probability p.
func Majority(n int, p float64) (float64, error) {
	return KOfN(n, n/2+1, p)
}

// DowntimePerYear converts an availability into expected downtime per
// (365-day) year.
func DowntimePerYear(availability float64) (time.Duration, error) {
	if availability < 0 || availability > 1 {
		return 0, ErrBadParameter
	}
	year := 365 * 24 * time.Hour
	return time.Duration((1 - availability) * float64(year)), nil
}

// binom returns the binomial coefficient C(n, k) as a float.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

package avail

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/softwarefaults/redundancy/internal/nvp"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAvailability(t *testing.T) {
	a, err := Availability(99*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, 0.99) {
		t.Errorf("availability = %f, want 0.99", a)
	}
	if _, err := Availability(0, time.Hour); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero MTBF: %v", err)
	}
	if _, err := Availability(time.Hour, -time.Second); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative MTTR: %v", err)
	}
	// Zero repair time means perfect availability.
	a, err = Availability(time.Hour, 0)
	if err != nil || a != 1 {
		t.Errorf("instant repair availability = (%f, %v)", a, err)
	}
}

func TestSeriesAndParallel(t *testing.T) {
	s, err := Series(0.9, 0.9)
	if err != nil || !almost(s, 0.81) {
		t.Errorf("series = (%f, %v)", s, err)
	}
	p, err := Parallel(0.9, 0.9)
	if err != nil || !almost(p, 0.99) {
		t.Errorf("parallel = (%f, %v)", p, err)
	}
	if s1, _ := Series(); s1 != 1 {
		t.Error("empty series should be 1")
	}
	if p0, _ := Parallel(); p0 != 0 {
		t.Error("empty parallel should be 0")
	}
	if _, err := Series(1.5); !errors.Is(err, ErrBadParameter) {
		t.Error("out-of-range series value accepted")
	}
	if _, err := Parallel(-0.1); !errors.Is(err, ErrBadParameter) {
		t.Error("out-of-range parallel value accepted")
	}
}

func TestKOfNKnownValues(t *testing.T) {
	// 2-of-3 at p=0.9: 3*0.81*0.1 + 0.729 = 0.972.
	r, err := KOfN(3, 2, 0.9)
	if err != nil || !almost(r, 0.972) {
		t.Errorf("KOfN(3,2,0.9) = (%f, %v), want 0.972", r, err)
	}
	// 1-of-n is parallel; n-of-n is series.
	r1, _ := KOfN(3, 1, 0.8)
	par, _ := Parallel(0.8, 0.8, 0.8)
	if !almost(r1, par) {
		t.Errorf("1-of-3 (%f) != parallel (%f)", r1, par)
	}
	rn, _ := KOfN(3, 3, 0.8)
	ser, _ := Series(0.8, 0.8, 0.8)
	if !almost(rn, ser) {
		t.Errorf("3-of-3 (%f) != series (%f)", rn, ser)
	}
	// 0-of-n is certain.
	r0, _ := KOfN(5, 0, 0.1)
	if !almost(r0, 1) {
		t.Errorf("0-of-5 = %f", r0)
	}
}

func TestKOfNValidation(t *testing.T) {
	cases := []struct {
		n, k int
		p    float64
	}{
		{0, 0, 0.5}, {3, -1, 0.5}, {3, 4, 0.5}, {3, 2, -0.1}, {3, 2, 1.1},
	}
	for _, c := range cases {
		if _, err := KOfN(c.n, c.k, c.p); !errors.Is(err, ErrBadParameter) {
			t.Errorf("KOfN(%d,%d,%f) accepted", c.n, c.k, c.p)
		}
	}
}

// TestMajorityAgreesWithNVPModel cross-checks the structural formula with
// the nvp package's analytic reliability model: Majority(n, 1-p) must
// equal ReliabilityIndependent(n, p).
func TestMajorityAgreesWithNVPModel(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7} {
		for _, p := range []float64{0.01, 0.1, 0.3, 0.5} {
			want := nvp.ReliabilityIndependent(n, p)
			got, err := Majority(n, 1-p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("Majority(%d, %f) = %f, nvp model %f", n, 1-p, got, want)
			}
		}
	}
}

func TestDowntimePerYear(t *testing.T) {
	d, err := DowntimePerYear(0.99)
	if err != nil {
		t.Fatal(err)
	}
	// 1% of a year ≈ 87.6 hours.
	want := time.Duration(0.01 * float64(365*24*time.Hour))
	if d < want-time.Minute || d > want+time.Minute {
		t.Errorf("downtime = %v, want ≈%v", d, want)
	}
	if _, err := DowntimePerYear(1.5); !errors.Is(err, ErrBadParameter) {
		t.Error("bad availability accepted")
	}
}

// Properties of the algebra.
func TestAlgebraProperties(t *testing.T) {
	clamp := func(x float64) float64 { return math.Abs(math.Mod(x, 1)) }
	// Parallel composition never decreases availability; series never
	// increases it.
	f := func(aRaw, bRaw float64) bool {
		a, b := clamp(aRaw), clamp(bRaw)
		p, err := Parallel(a, b)
		if err != nil {
			return false
		}
		s, err := Series(a, b)
		if err != nil {
			return false
		}
		return p >= math.Max(a, b)-1e-12 && s <= math.Min(a, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// KOfN is monotone in p and antitone in k.
	g := func(pRaw float64) bool {
		p := clamp(pRaw)
		lo, err := KOfN(5, 3, p*0.5)
		if err != nil {
			return false
		}
		hi, err := KOfN(5, 3, p)
		if err != nil {
			return false
		}
		k2, _ := KOfN(5, 2, p)
		k4, _ := KOfN(5, 4, p)
		return lo <= hi+1e-12 && k4 <= k2+1e-12
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {3, 4, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); !almost(got, c.want) {
			t.Errorf("binom(%d,%d) = %f, want %f", c.n, c.k, got, c.want)
		}
	}
}

package faultmodel

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// ErrMaxHang reports that a FailHang fault blocked for the injector's
// MaxHang guard duration and was released without the context being
// canceled. Seeing this error means the harness above the variant has no
// effective deadline — the exact condition the guard exists to surface.
var ErrMaxHang = errors.New("faultmodel: hang released by MaxHang guard")

// ErrCrashed marks a failure that models whole-process death: the
// component did not return an error through its API, it stopped existing
// mid-request. Recovery layers (internal/supervise) treat it as a signal
// to restart the component; plain retry logic treats it like any other
// error. Extract with errors.Is.
var ErrCrashed = errors.New("faultmodel: process crashed")

// FailureMode is how an activated fault manifests at the variant boundary.
type FailureMode int

const (
	// FailError makes the variant return an error (a detected failure,
	// e.g. a crash turned into an error by the runtime).
	FailError FailureMode = iota + 1
	// FailWrongValue makes the variant silently return a corrupted value
	// (an undetected erroneous result — the dangerous case for voting).
	FailWrongValue
	// FailHang makes the variant block until the context is canceled
	// (models deadlocks and infinite loops). A timeout upstream is
	// required — set one with pattern.WithVariantTimeout or
	// pattern.WithDeadline, and set Injector.MaxHang as a backstop so a
	// missing deadline turns into an ErrMaxHang failure instead of a
	// wedged goroutine.
	FailHang
	// FailPanic makes the variant panic (models assertion failures, nil
	// dereferences, index overruns — defects that abort the call stack
	// rather than return). Pattern executors contain the panic with
	// core.Guard and convert it into a variant error; an uncontained
	// FailPanic takes down its goroutine, which is exactly what the
	// supervision layer exists to absorb.
	FailPanic
	// FailCrash makes the variant fail with an error wrapping ErrCrashed
	// (models whole-process death as seen by a caller: the request is
	// lost and the component needs a restart, not a retry).
	FailCrash
	// FailLie makes the variant return a plausible-but-wrong answer — the
	// Byzantine failure mode of a *remote replica*, distinct from
	// FailWrongValue's local silent corruption. A lying replica completes
	// the protocol flawlessly (no error, no delay, heartbeats keep
	// acking); only comparing its answer against other replicas' answers
	// can expose it, which is exactly what the distributed quorum voter
	// exists to do. Adversary (adversary.go) is the strategy-driven
	// injector for this mode.
	FailLie
)

// String implements fmt.Stringer.
func (m FailureMode) String() string {
	switch m {
	case FailError:
		return "error"
	case FailWrongValue:
		return "wrong-value"
	case FailHang:
		return "hang"
	case FailPanic:
		return "panic"
	case FailCrash:
		return "crash"
	case FailLie:
		return "lie"
	default:
		return "unknown"
	}
}

// ActivatedError is returned by injected variants when a fault manifests
// in FailError mode. Callers can extract the fault with errors.As.
type ActivatedError struct {
	// Fault is the name of the activated fault.
	Fault string
	// Variant is the name of the variant that failed.
	Variant string
}

// Error implements error.
func (e *ActivatedError) Error() string {
	return fmt.Sprintf("fault %s activated in variant %s", e.Fault, e.Variant)
}

// Injector decorates a correct Variant with a set of latent faults. It is
// the standard way experiments obtain "faulty versions": start from a
// correct implementation, attach faults with known activation behaviour.
type Injector[I, O any] struct {
	// Base is the correct implementation.
	Base core.Variant[I, O]
	// Faults are the latent faults attached to this variant.
	Faults []Fault
	// Mode selects the failure manifestation.
	Mode FailureMode
	// Corrupt produces the wrong value for FailWrongValue mode. If nil,
	// the zero value of O is returned as the wrong value.
	Corrupt func(input I, correct O) O
	// Key derives the deterministic input key; required.
	Key func(I) uint64
	// Env is the environment the variant executes in; may be nil.
	Env *Env
	// Rand drives probabilistic activation; required for Heisenbugs and
	// aging faults.
	Rand *xrand.Rand
	// MaxHang bounds how long a FailHang fault may block when the context
	// carries no (effective) deadline: after MaxHang the hang releases
	// with an error wrapping ErrMaxHang instead of wedging the goroutine
	// forever. Zero preserves the historical behavior of blocking until
	// the context is canceled — safe only when every caller sets a
	// deadline.
	MaxHang time.Duration
}

var _ core.Variant[int, int] = (*Injector[int, int])(nil)

// Name implements core.Variant.
func (j *Injector[I, O]) Name() string { return j.Base.Name() }

// Execute implements core.Variant: it first checks fault activation, then
// delegates to the base implementation when no fault manifests.
func (j *Injector[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	inv := Invocation{InputKey: j.Key(input), Env: j.Env, Rand: j.Rand}
	for _, f := range j.Faults {
		if !f.Activated(inv) {
			continue
		}
		switch j.Mode {
		case FailWrongValue, FailLie:
			correct, err := j.Base.Execute(ctx, input)
			if err != nil {
				return zero, err
			}
			if j.Corrupt == nil {
				return zero, nil
			}
			return j.Corrupt(input, correct), nil
		case FailHang:
			if j.MaxHang > 0 {
				t := time.NewTimer(j.MaxHang)
				select {
				case <-ctx.Done():
					t.Stop()
					return zero, ctx.Err()
				case <-t.C:
					return zero, fmt.Errorf("fault %s in variant %s: %w",
						f.Name(), j.Base.Name(), ErrMaxHang)
				}
			}
			<-ctx.Done()
			return zero, ctx.Err()
		case FailPanic:
			panic(&ActivatedError{Fault: f.Name(), Variant: j.Base.Name()})
		case FailCrash:
			return zero, fmt.Errorf("fault %s in variant %s: %w",
				f.Name(), j.Base.Name(), ErrCrashed)
		default:
			return zero, &ActivatedError{Fault: f.Name(), Variant: j.Base.Name()}
		}
	}
	return j.Base.Execute(ctx, input)
}

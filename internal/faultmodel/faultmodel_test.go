package faultmodel

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func TestBohrbugDeterminism(t *testing.T) {
	b := Bohrbug{ID: 1, TriggerFraction: 0.3}
	for key := uint64(0); key < 100; key++ {
		inv := Invocation{InputKey: key}
		first := b.Activated(inv)
		for i := 0; i < 5; i++ {
			if b.Activated(inv) != first {
				t.Fatalf("Bohrbug non-deterministic on key %d", key)
			}
		}
	}
}

func TestBohrbugTriggerFraction(t *testing.T) {
	b := Bohrbug{ID: 7, TriggerFraction: 0.2}
	const n = 100000
	hits := 0
	for key := uint64(0); key < n; key++ {
		if b.Activated(Invocation{InputKey: key}) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.2) > 0.01 {
		t.Errorf("trigger rate %f, want ~0.2", rate)
	}
}

func TestBohrbugEdgeFractions(t *testing.T) {
	never := Bohrbug{ID: 1, TriggerFraction: 0}
	always := Bohrbug{ID: 1, TriggerFraction: 1}
	for key := uint64(0); key < 50; key++ {
		if never.Activated(Invocation{InputKey: key}) {
			t.Fatal("TriggerFraction 0 activated")
		}
		if !always.Activated(Invocation{InputKey: key}) {
			t.Fatal("TriggerFraction 1 did not activate")
		}
	}
}

func TestDistinctBohrbugsHaveDistinctRegions(t *testing.T) {
	a := Bohrbug{ID: 1, TriggerFraction: 0.5}
	b := Bohrbug{ID: 2, TriggerFraction: 0.5}
	same := 0
	const n = 10000
	for key := uint64(0); key < n; key++ {
		inv := Invocation{InputKey: key}
		if a.Activated(inv) == b.Activated(inv) {
			same++
		}
	}
	// Independent regions agree about half the time; identical regions
	// would agree always.
	if float64(same)/n > 0.6 {
		t.Errorf("bug regions look identical: agreement %f", float64(same)/n)
	}
}

func TestEnvBohrbugMaskedByPadding(t *testing.T) {
	b := EnvBohrbug{ID: 3, TriggerFraction: 1, MaskedByPadding: 16}
	plain := DefaultEnv()
	if !b.Activated(Invocation{InputKey: 1, Env: plain}) {
		t.Fatal("should activate without padding")
	}
	padded := DefaultEnv()
	padded.AllocPadding = 16
	if b.Activated(Invocation{InputKey: 1, Env: padded}) {
		t.Fatal("should be masked by sufficient padding")
	}
	thin := DefaultEnv()
	thin.AllocPadding = 8
	if !b.Activated(Invocation{InputKey: 1, Env: thin}) {
		t.Fatal("insufficient padding should not mask")
	}
}

func TestEnvBohrbugMaskedByShuffle(t *testing.T) {
	b := EnvBohrbug{ID: 4, TriggerFraction: 1, MaskedByShuffle: true}
	if !b.Activated(Invocation{InputKey: 1, Env: DefaultEnv()}) {
		t.Fatal("should activate under FIFO")
	}
	env := DefaultEnv()
	env.Order = ShuffledOrder
	if b.Activated(Invocation{InputKey: 1, Env: env}) {
		t.Fatal("should be masked by shuffled order")
	}
}

func TestEnvBohrbugMaskedByLoad(t *testing.T) {
	b := EnvBohrbug{ID: 5, TriggerFraction: 1, MaskedByLoadBelow: 0.5}
	busy := DefaultEnv()
	busy.Load = 0.8
	if !b.Activated(Invocation{InputKey: 1, Env: busy}) {
		t.Fatal("should activate under load")
	}
	idle := DefaultEnv()
	idle.Load = 0.1
	if b.Activated(Invocation{InputKey: 1, Env: idle}) {
		t.Fatal("should be masked when load shed below threshold")
	}
}

func TestEnvBohrbugRespectsTriggerRegion(t *testing.T) {
	b := EnvBohrbug{ID: 6, TriggerFraction: 0, MaskedByPadding: 16}
	if b.Activated(Invocation{InputKey: 1, Env: DefaultEnv()}) {
		t.Fatal("outside trigger region must never activate")
	}
}

func TestHeisenbugProbability(t *testing.T) {
	h := Heisenbug{ID: 1, Prob: 0.3}
	rng := xrand.New(1)
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		if h.Activated(Invocation{InputKey: 42, Rand: rng}) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("activation rate %f, want ~0.3", rate)
	}
}

func TestHeisenbugLoadSensitivity(t *testing.T) {
	h := Heisenbug{ID: 2, Prob: 0.05, LoadWeight: 0.5}
	rng := xrand.New(2)
	count := func(env *Env) int {
		hits := 0
		for i := 0; i < 20000; i++ {
			if h.Activated(Invocation{InputKey: 1, Env: env, Rand: rng}) {
				hits++
			}
		}
		return hits
	}
	idle := DefaultEnv()
	busy := DefaultEnv()
	busy.Load = 1
	if count(busy) <= count(idle) {
		t.Error("Heisenbug should activate more often under load")
	}
}

func TestHeisenbugNilRand(t *testing.T) {
	h := Heisenbug{ID: 3, Prob: 1}
	if h.Activated(Invocation{InputKey: 1}) {
		t.Error("nil Rand must not activate (fail safe)")
	}
}

func TestAgingHazardMonotone(t *testing.T) {
	a := AgingFault{ID: 1, HazardAtScale: 0.1, Scale: 100, Shape: 2}
	prev := -1.0
	for age := 0; age <= 500; age += 50 {
		h := a.Hazard(age)
		if h < prev {
			t.Fatalf("hazard decreased at age %d: %f < %f", age, h, prev)
		}
		if h < 0 || h > 1 {
			t.Fatalf("hazard out of range at age %d: %f", age, h)
		}
		prev = h
	}
	if a.Hazard(0) != 0 {
		t.Error("fresh process should have zero aging hazard")
	}
	if got := a.Hazard(100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Hazard(Scale) = %f, want 0.1", got)
	}
}

func TestAgingFaultActivation(t *testing.T) {
	a := AgingFault{ID: 2, HazardAtScale: 0.5, Scale: 10, Shape: 1}
	rng := xrand.New(3)
	old := DefaultEnv()
	old.Age = 10
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if a.Activated(Invocation{InputKey: 1, Env: old, Rand: rng}) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.5) > 0.02 {
		t.Errorf("aged activation rate %f, want ~0.5", rate)
	}
	young := DefaultEnv()
	if a.Activated(Invocation{InputKey: 1, Env: young, Rand: rng}) {
		t.Error("age-0 process must not trigger aging fault")
	}
}

func TestEnvTickAndRejuvenate(t *testing.T) {
	e := DefaultEnv()
	for i := 0; i < 10; i++ {
		e.Tick(0.05, 100)
	}
	if e.Age != 10 || e.LeakedBytes != 1000 {
		t.Errorf("after ticks: %+v", e)
	}
	if math.Abs(e.Fragmentation-0.5) > 1e-9 {
		t.Errorf("fragmentation = %f, want 0.5", e.Fragmentation)
	}
	for i := 0; i < 20; i++ {
		e.Tick(0.05, 0)
	}
	if e.Fragmentation > 1 {
		t.Errorf("fragmentation exceeded 1: %f", e.Fragmentation)
	}
	e.Rejuvenate()
	if e.Age != 0 || e.Fragmentation != 0 || e.LeakedBytes != 0 {
		t.Errorf("after rejuvenation: %+v", e)
	}
}

func TestEnvClone(t *testing.T) {
	e := DefaultEnv()
	e.Load = 0.7
	c := e.Clone()
	c.Load = 0.1
	if e.Load != 0.7 {
		t.Error("clone aliases original")
	}
}

func TestPerturbations(t *testing.T) {
	e := DefaultEnv()
	e.Load = 0.8
	PadAllocations(32)(e)
	ShuffleMessages()(e)
	RaisePriority(2)(e)
	ShedLoad(0.5)(e)
	if e.AllocPadding != 32 || e.Order != ShuffledOrder || e.Priority != 2 {
		t.Errorf("perturbed env: %+v", e)
	}
	if math.Abs(e.Load-0.4) > 1e-12 {
		t.Errorf("load = %f, want 0.4", e.Load)
	}
}

func TestCorrelatedFailuresMarginal(t *testing.T) {
	for _, rho := range []float64{0, 0.5, 1} {
		c := CorrelatedFailures{N: 3, P: 0.2, Rho: rho}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(uint64(rho*10) + 1)
		const n = 60000
		hits := 0
		for i := 0; i < n; i++ {
			fails, _ := c.Draw(rng)
			if fails[0] {
				hits++
			}
		}
		rate := float64(hits) / n
		if math.Abs(rate-0.2) > 0.01 {
			t.Errorf("rho=%f: marginal %f, want ~0.2", rho, rate)
		}
	}
}

func TestCorrelatedFailuresCorrelation(t *testing.T) {
	for _, rho := range []float64{0, 0.4, 0.8} {
		c := CorrelatedFailures{N: 2, P: 0.3, Rho: rho}
		rng := xrand.New(99)
		const n = 80000
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			fails, _ := c.Draw(rng)
			if fails[0] {
				xs[i] = 1
			}
			if fails[1] {
				ys[i] = 1
			}
		}
		got, err := stats.Correlation(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rho) > 0.03 {
			t.Errorf("rho=%f: measured correlation %f", rho, got)
		}
	}
}

func TestCorrelatedFailuresValidate(t *testing.T) {
	bad := []CorrelatedFailures{
		{N: 0, P: 0.5, Rho: 0},
		{N: 3, P: -0.1, Rho: 0},
		{N: 3, P: 1.1, Rho: 0},
		{N: 3, P: 0.5, Rho: -0.1},
		{N: 3, P: 0.5, Rho: 1.1},
	}
	for _, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadCorrelationConfig) {
			t.Errorf("%+v: want ErrBadCorrelationConfig, got %v", c, err)
		}
	}
}

func TestCorrelatedFailuresCommonMode(t *testing.T) {
	c := CorrelatedFailures{N: 5, P: 0.5, Rho: 1}
	rng := xrand.New(4)
	for i := 0; i < 100; i++ {
		fails, common := c.Draw(rng)
		if !common {
			t.Fatal("rho=1 must always be common mode")
		}
		for _, f := range fails[1:] {
			if f != fails[0] {
				t.Fatal("common-mode draw not identical across versions")
			}
		}
	}
}

func TestHash64Properties(t *testing.T) {
	f := func(a, b []byte) bool {
		ha, hb := Hash64(a), Hash64(b)
		if string(a) == string(b) {
			return ha == hb
		}
		return true // distinct inputs may collide, but determinism must hold
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Hash64([]byte("x")) == Hash64([]byte("y")) {
		t.Error("trivial collision")
	}
	if HashInt(1) == HashInt(2) {
		t.Error("HashInt trivial collision")
	}
	if HashString("a") != Hash64([]byte("a")) {
		t.Error("HashString inconsistent with Hash64")
	}
}

func TestInjectorErrorMode(t *testing.T) {
	base := core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
	inj := &Injector[int, int]{
		Base:   base,
		Faults: []Fault{Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:   FailError,
		Key:    HashInt,
	}
	if inj.Name() != "id" {
		t.Errorf("Name = %q", inj.Name())
	}
	_, err := inj.Execute(context.Background(), 5)
	var act *ActivatedError
	if !errors.As(err, &act) {
		t.Fatalf("want ActivatedError, got %v", err)
	}
	if act.Fault != "bohrbug-1" || act.Variant != "id" {
		t.Errorf("ActivatedError = %+v", act)
	}
}

func TestInjectorWrongValueMode(t *testing.T) {
	base := core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
	inj := &Injector[int, int]{
		Base:    base,
		Faults:  []Fault{Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:    FailWrongValue,
		Corrupt: func(_ int, correct int) int { return correct + 1000 },
		Key:     HashInt,
	}
	got, err := inj.Execute(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1005 {
		t.Errorf("corrupted value = %d, want 1005", got)
	}
}

func TestInjectorWrongValueNilCorrupt(t *testing.T) {
	base := core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
	inj := &Injector[int, int]{
		Base:   base,
		Faults: []Fault{Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:   FailWrongValue,
		Key:    HashInt,
	}
	got, err := inj.Execute(context.Background(), 5)
	if err != nil || got != 0 {
		t.Errorf("= (%d, %v), want zero value", got, err)
	}
}

func TestInjectorHangMode(t *testing.T) {
	base := core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
	inj := &Injector[int, int]{
		Base:   base,
		Faults: []Fault{Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:   FailHang,
		Key:    HashInt,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := inj.Execute(ctx, 5)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestInjectorCleanPath(t *testing.T) {
	base := core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x * 2, nil })
	inj := &Injector[int, int]{
		Base:   base,
		Faults: []Fault{Bohrbug{ID: 1, TriggerFraction: 0}},
		Mode:   FailError,
		Key:    HashInt,
	}
	got, err := inj.Execute(context.Background(), 21)
	if err != nil || got != 42 {
		t.Errorf("clean path = (%d, %v)", got, err)
	}
}

func TestFailureModeAndOrderStrings(t *testing.T) {
	if FailError.String() != "error" || FailWrongValue.String() != "wrong-value" ||
		FailHang.String() != "hang" || FailureMode(0).String() != "unknown" {
		t.Error("FailureMode.String incorrect")
	}
	if FIFOOrder.String() != "fifo" || ShuffledOrder.String() != "shuffled" ||
		MessageOrder(0).String() != "unknown" {
		t.Error("MessageOrder.String incorrect")
	}
}

func TestFaultClassReporting(t *testing.T) {
	if (Bohrbug{}).Class() != core.Bohrbugs {
		t.Error("Bohrbug class")
	}
	if (EnvBohrbug{}).Class() != core.Bohrbugs {
		t.Error("EnvBohrbug class")
	}
	if (Heisenbug{}).Class() != core.Heisenbugs {
		t.Error("Heisenbug class")
	}
	if (AgingFault{}).Class() != core.Heisenbugs {
		t.Error("AgingFault class")
	}
}

func TestFaultNamesAndErrors(t *testing.T) {
	if got := (Bohrbug{ID: 1}).Name(); got != "bohrbug-1" {
		t.Errorf("Bohrbug name = %q", got)
	}
	if got := (EnvBohrbug{ID: 4}).Name(); got != "env-bohrbug-4" {
		t.Errorf("EnvBohrbug name = %q", got)
	}
	if got := (Heisenbug{ID: 2}).Name(); got != "heisenbug-2" {
		t.Errorf("Heisenbug name = %q", got)
	}
	if got := (AgingFault{ID: 3}).Name(); got != "aging-3" {
		t.Errorf("AgingFault name = %q", got)
	}
	err := &ActivatedError{Fault: "bohrbug-1", Variant: "v1"}
	if err.Error() == "" {
		t.Error("empty ActivatedError message")
	}
}

func TestAgingHazardEdgeCases(t *testing.T) {
	if (AgingFault{Scale: 0}).Hazard(10) != 0 {
		t.Error("zero scale should yield zero hazard")
	}
	a := AgingFault{HazardAtScale: 2, Scale: 10, Shape: 1}
	if a.Hazard(100) != 1 {
		t.Error("hazard should clamp to 1")
	}
	withNegShape := AgingFault{HazardAtScale: -1, Scale: 10, Shape: 1}
	if withNegShape.Hazard(5) != 0 {
		t.Error("negative hazard should clamp to 0")
	}
	if (AgingFault{HazardAtScale: 1, Scale: 10, Shape: 2}).Activated(Invocation{}) {
		t.Error("nil Rand must not activate")
	}
}

package faultmodel

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

func TestInjectorPanicMode(t *testing.T) {
	base := core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
	inj := &Injector[int, int]{
		Base:   base,
		Faults: []Fault{Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:   FailPanic,
		Key:    HashInt,
	}
	// Bare execution panics — that is the manifestation.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("FailPanic did not panic")
			}
			act, ok := r.(*ActivatedError)
			if !ok || act.Variant != "id" {
				t.Errorf("panic value = %v", r)
			}
		}()
		_, _ = inj.Execute(context.Background(), 5)
	}()

	// Under core.Guard the panic becomes a contained variant error.
	guarded := core.Guard[int, int](inj)
	_, err := guarded.Execute(context.Background(), 5)
	if !errors.Is(err, core.ErrVariantPanicked) {
		t.Fatalf("guarded FailPanic = %v, want ErrVariantPanicked", err)
	}
}

func TestInjectorCrashMode(t *testing.T) {
	base := core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
	inj := &Injector[int, int]{
		Base:   base,
		Faults: []Fault{Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:   FailCrash,
		Key:    HashInt,
	}
	_, err := inj.Execute(context.Background(), 5)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("FailCrash = %v, want ErrCrashed", err)
	}
}

func TestFailureModeRecoveryStrings(t *testing.T) {
	if FailPanic.String() != "panic" || FailCrash.String() != "crash" {
		t.Errorf("FailPanic=%q FailCrash=%q", FailPanic, FailCrash)
	}
}

func TestChaosPanicAndCrashPhases(t *testing.T) {
	camp := &Campaign{
		Name: "recovery-test",
		Seed: 7,
		Phases: []ChaosPhase{
			{Name: "panics", Requests: 10, Panics: 1},
			{Name: "crashes", Requests: 10, Crashes: 1},
		},
	}
	if err := camp.Validate(); err != nil {
		t.Fatal(err)
	}
	base := core.NewVariant("v", func(_ context.Context, x int) (int, error) { return x, nil })
	ch := &Chaos[int, int]{Base: base, Campaign: camp}

	// Request 0 lands in the panic phase.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic phase did not panic")
			}
		}()
		_, _ = ch.Execute(WithRequestIndex(context.Background(), 0), 1)
	}()
	// Request 10 lands in the crash phase.
	_, err := ch.Execute(WithRequestIndex(context.Background(), 10), 1)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash phase = %v, want ErrCrashed", err)
	}
	// A guarded chaos variant contains the panic like any other.
	_, err = core.Guard[int, int](ch).Execute(WithRequestIndex(context.Background(), 1), 1)
	if !errors.Is(err, core.ErrVariantPanicked) {
		t.Fatalf("guarded chaos panic = %v, want ErrVariantPanicked", err)
	}
}

func TestPanicAtCrashAtMatchExecution(t *testing.T) {
	camp := &Campaign{
		Name: "mixed",
		Seed: 42,
		Phases: []ChaosPhase{
			{Name: "mixed", Requests: 400, Panics: 0.2, Crashes: 0.2},
		},
	}
	base := core.NewVariant("worker", func(_ context.Context, x int) (int, error) { return x, nil })
	ch := &Chaos[int, int]{Base: base, Campaign: camp}
	panics, crashes := 0, 0
	for req := uint64(0); req < 400; req++ {
		wantPanic := camp.PanicAt(req, "worker")
		wantCrash := camp.CrashAt(req, "worker")
		var panicked bool
		var err error
		func() {
			defer func() { panicked = recover() != nil }()
			_, err = ch.Execute(WithRequestIndex(context.Background(), req), 1)
		}()
		if panicked != wantPanic {
			t.Fatalf("req %d: panicked=%v, PanicAt=%v", req, panicked, wantPanic)
		}
		// The panic schedule is checked before the crash schedule, so a
		// request that panics never reports its crash roll.
		if !wantPanic && errors.Is(err, ErrCrashed) != wantCrash {
			t.Fatalf("req %d: crashed=%v, CrashAt=%v", req, errors.Is(err, ErrCrashed), wantCrash)
		}
		if panicked {
			panics++
		} else if err != nil {
			crashes++
		}
	}
	if panics == 0 || crashes == 0 {
		t.Fatalf("schedule produced %d panics, %d crashes; both mixes must be exercised", panics, crashes)
	}
	// Determinism: an independent campaign value rolls identically.
	again := &Campaign{Name: "mixed", Seed: 42, Phases: []ChaosPhase{
		{Name: "mixed", Requests: 400, Panics: 0.2, Crashes: 0.2},
	}}
	for req := uint64(0); req < 400; req++ {
		if camp.PanicAt(req, "worker") != again.PanicAt(req, "worker") ||
			camp.CrashAt(req, "worker") != again.CrashAt(req, "worker") {
			t.Fatalf("req %d: schedule not deterministic across instances", req)
		}
	}
	// Out-of-schedule requests never activate.
	if camp.PanicAt(9999, "worker") || camp.CrashAt(9999, "worker") {
		t.Error("requests past the schedule must not activate")
	}
}

func TestRecoveryCampaignValid(t *testing.T) {
	camp := RecoveryCampaign(1)
	if err := camp.Validate(); err != nil {
		t.Fatal(err)
	}
	sawPanic, sawCrash := false, false
	for req := uint64(0); req < uint64(camp.Total()); req++ {
		sawPanic = sawPanic || camp.PanicAt(req, "worker")
		sawCrash = sawCrash || camp.CrashAt(req, "worker")
	}
	if !sawPanic || !sawCrash {
		t.Errorf("builtin recovery schedule: sawPanic=%v sawCrash=%v, want both", sawPanic, sawCrash)
	}
	if camp.PanicAt(0, "worker") {
		t.Error("warmup phase must stay calm")
	}
}

// Package faultmodel provides the fault-injection substrate used by every
// experiment in the repository.
//
// The paper distinguishes development faults that manifest
// deterministically (Bohrbugs) from development faults with
// non-deterministic, typically environment-dependent manifestation
// (Heisenbugs), plus malicious interaction faults and aging-related
// failures. This package models all four classes as first-class values
// that can be attached to variants, components, and simulated processes.
// Faults activate as a function of a deterministic input key, an explicit
// execution-environment model, and an injected PRNG, so every experiment
// is exactly reproducible.
package faultmodel

import "github.com/softwarefaults/redundancy/internal/xrand"

// MessageOrder is the delivery order of inter-component messages in the
// environment model. Shuffling message order is one of the perturbations
// the RX system applies to survive concurrency bugs.
type MessageOrder int

const (
	// FIFOOrder delivers messages in submission order.
	FIFOOrder MessageOrder = iota + 1
	// ShuffledOrder delivers messages in a randomized order.
	ShuffledOrder
)

// String implements fmt.Stringer.
func (o MessageOrder) String() string {
	switch o {
	case FIFOOrder:
		return "fifo"
	case ShuffledOrder:
		return "shuffled"
	default:
		return "unknown"
	}
}

// Env models the execution environment of a simulated process. It carries
// exactly the dimensions the surveyed techniques manipulate:
//
//   - rejuvenation resets Age and Fragmentation;
//   - RX-style perturbation changes AllocPadding, Order, Priority and
//     sheds Load;
//   - process replicas run with different AddressBase partitions;
//   - Heisenbugs read Load and Fragmentation to decide activation.
type Env struct {
	// AllocPadding is the number of padding bytes added around each
	// allocation. Padding can mask small buffer overflows.
	AllocPadding int
	// Order is the message delivery order.
	Order MessageOrder
	// Priority is the scheduling priority of the process (higher runs
	// more predictably; low priority increases interleaving variety).
	Priority int
	// Load is the normalized request load in [0,1]. High load widens the
	// window for race conditions and resource exhaustion.
	Load float64
	// Fragmentation is the normalized memory fragmentation in [0,1]. It
	// grows with Age and is reset by rejuvenation or reboot.
	Fragmentation float64
	// Age counts requests served since the last (re)initialization of
	// the process; aging faults activate with hazard increasing in Age.
	Age int
	// AddressBase is the base of the simulated address-space partition,
	// used by process replicas: variants with disjoint bases force
	// absolute-address attacks to diverge.
	AddressBase uint64
	// LeakedBytes models unreclaimed resources accumulated with Age.
	LeakedBytes int
}

// DefaultEnv returns the baseline environment: FIFO delivery, no padding,
// normal priority, fresh process.
func DefaultEnv() *Env {
	return &Env{
		Order:    FIFOOrder,
		Priority: 0,
	}
}

// Clone returns an independent copy of the environment.
func (e *Env) Clone() *Env {
	clone := *e
	return &clone
}

// Tick advances process age by one served request, growing fragmentation
// and leaked resources. growth is the per-request fragmentation increment
// (a property of the workload's leakiness).
func (e *Env) Tick(growth float64, leakBytes int) {
	e.Age++
	e.Fragmentation += growth
	if e.Fragmentation > 1 {
		e.Fragmentation = 1
	}
	e.LeakedBytes += leakBytes
}

// Rejuvenate models a software rejuvenation of the process: the volatile
// state is cleaned, resetting the aging-related dimensions while leaving
// the configuration (padding, order, priority) intact.
func (e *Env) Rejuvenate() {
	e.Age = 0
	e.Fragmentation = 0
	e.LeakedBytes = 0
}

// Perturbation is one deliberate change of environment conditions, as
// applied by the RX mechanism before re-executing failing code.
type Perturbation func(*Env)

// PadAllocations returns a perturbation that adds n bytes of padding
// around allocations.
func PadAllocations(n int) Perturbation {
	return func(e *Env) { e.AllocPadding += n }
}

// ShuffleMessages returns a perturbation that randomizes message delivery
// order.
func ShuffleMessages() Perturbation {
	return func(e *Env) { e.Order = ShuffledOrder }
}

// RaisePriority returns a perturbation that raises process priority by n.
func RaisePriority(n int) Perturbation {
	return func(e *Env) { e.Priority += n }
}

// ShedLoad returns a perturbation that multiplies load by factor in [0,1].
func ShedLoad(factor float64) Perturbation {
	return func(e *Env) { e.Load *= factor }
}

// Invocation carries everything a fault needs to decide whether it
// activates on one execution: a deterministic key of the input, the
// current environment, and a PRNG for non-deterministic manifestation.
type Invocation struct {
	// InputKey is a deterministic 64-bit key of the input value.
	InputKey uint64
	// Env is the environment of the executing process; may be nil, in
	// which case faults treat it as DefaultEnv.
	Env *Env
	// Rand drives non-deterministic activation; must not be nil for
	// faults with probabilistic manifestation.
	Rand *xrand.Rand
}

// env returns the invocation's environment, defaulting to a fresh one.
func (inv Invocation) env() *Env {
	if inv.Env != nil {
		return inv.Env
	}
	return DefaultEnv()
}

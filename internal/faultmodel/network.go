package faultmodel

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the network half of the fault model: where campaign.go
// disturbs variant executions (wrong results, errors, hangs, panics),
// NetworkCampaign disturbs the transport between a client and its
// process replicas — partitions, packet loss, duplication, reordering,
// latency spikes, and connection resets. It wraps the dial function an
// internal/dist client or failure detector uses, so the injected faults
// exercise the real framing, pooling, hedging, and heartbeat paths.
//
// Phases are wall-clock windows (unlike ChaosPhase's request counts)
// because partitions are a property of elapsed time, not of traffic: a
// failure detector must see an endpoint stay silent across heartbeat
// intervals whether or not requests are flowing. Per-operation decisions
// (drop this write? duplicate it?) remain pure seeded hashes, so two
// runs of the same campaign inject the same faults at the same
// operation indexes.

// Sentinel errors of the network fault injector.
var (
	// ErrPartitioned reports a dial or I/O operation on an endpoint cut
	// off by the current campaign phase.
	ErrPartitioned = errors.New("faultmodel: endpoint partitioned")
	// ErrConnReset reports an injected connection reset.
	ErrConnReset = errors.New("faultmodel: connection reset by chaos")
)

// NetDial opens one connection to a named endpoint. It is an alias for
// the bare function signature (not a distinct named type) so values flow
// freely between here and internal/dist's DialFunc without conversions,
// while the fault model stays independent of the transport package.
type NetDial = func(ctx context.Context) (net.Conn, error)

// NetworkPhase is one wall-clock window of network weather. All
// probabilities are per write operation; Partition is absolute (every
// operation against a listed endpoint fails or stalls for the whole
// phase).
type NetworkPhase struct {
	// Name labels the phase in output.
	Name string `json:"name"`
	// Duration is how long the phase lasts.
	Duration Duration `json:"duration"`
	// Partition lists endpoint names cut off during this phase: dials
	// fail, writes vanish, reads block (until deadline) — silence, not
	// errors, which is what makes partitions hard and heartbeats useful.
	Partition []string `json:"partition,omitempty"`
	// Loss is the probability a written frame silently vanishes.
	Loss float64 `json:"loss,omitempty"`
	// Duplicate is the probability a written frame is delivered twice.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the probability a written frame is held back and
	// delivered after the following one.
	Reorder float64 `json:"reorder,omitempty"`
	// LatencySpike is the probability a write stalls for SpikeDelay
	// before delivery.
	LatencySpike float64 `json:"latency_spike,omitempty"`
	// SpikeDelay is the injected stall; zero with LatencySpike set means
	// 50ms.
	SpikeDelay Duration `json:"spike_delay,omitempty"`
	// Resets is the probability a write tears the connection down
	// instead of delivering.
	Resets float64 `json:"resets,omitempty"`
}

// partitions reports whether the phase cuts off endpoint.
func (p *NetworkPhase) partitions(endpoint string) bool {
	for _, name := range p.Partition {
		if name == endpoint {
			return true
		}
	}
	return false
}

// NetworkCampaign is a seeded, phased schedule of network faults. Wrap
// the dialers of the endpoints under test, Start the clock, and drive
// traffic; the campaign decides per phase and per operation what the
// network does to each frame.
type NetworkCampaign struct {
	// Name labels the campaign in output.
	Name string `json:"name"`
	// Seed makes every per-operation decision deterministic.
	Seed uint64 `json:"seed"`
	// Phases run in order; after the last one the network is clean.
	Phases []NetworkPhase `json:"phases"`

	// start is the wall-clock origin set by Start; the zero value means
	// the campaign has not begun and injects nothing.
	start atomic.Int64
	// ops numbers write operations campaign-wide for seeded decisions.
	ops atomic.Uint64
}

// Validate checks the campaign is well formed.
func (nc *NetworkCampaign) Validate() error {
	if len(nc.Phases) == 0 {
		return fmt.Errorf("faultmodel: network campaign %q has no phases", nc.Name)
	}
	for i := range nc.Phases {
		p := &nc.Phases[i]
		if p.Duration.D() <= 0 {
			return fmt.Errorf("faultmodel: network phase %d (%q) needs a positive duration", i, p.Name)
		}
		for _, prob := range []struct {
			name  string
			value float64
		}{
			{"loss", p.Loss}, {"duplicate", p.Duplicate}, {"reorder", p.Reorder},
			{"latency_spike", p.LatencySpike}, {"resets", p.Resets},
		} {
			if prob.value < 0 || prob.value > 1 {
				return fmt.Errorf("faultmodel: network phase %d (%q): %s %v out of [0,1]",
					i, p.Name, prob.name, prob.value)
			}
		}
	}
	return nil
}

// Total returns the campaign's scheduled duration.
func (nc *NetworkCampaign) Total() time.Duration {
	var total time.Duration
	for i := range nc.Phases {
		total += nc.Phases[i].Duration.D()
	}
	return total
}

// Start begins the campaign clock. Faults inject only between Start and
// the end of the last phase. Calling Start again restarts the schedule.
func (nc *NetworkCampaign) Start() {
	nc.start.Store(time.Now().UnixNano())
}

// Done reports whether the campaign has run past its last phase.
func (nc *NetworkCampaign) Done() bool {
	start := nc.start.Load()
	if start == 0 {
		return false
	}
	return time.Since(time.Unix(0, start)) >= nc.Total()
}

// PhaseNow returns the currently active phase and its index, or (-1,
// nil) when the campaign is not running (not started, or finished).
func (nc *NetworkCampaign) PhaseNow() (int, *NetworkPhase) {
	start := nc.start.Load()
	if start == 0 {
		return -1, nil
	}
	elapsed := time.Since(time.Unix(0, start))
	for i := range nc.Phases {
		d := nc.Phases[i].Duration.D()
		if elapsed < d {
			return i, &nc.Phases[i]
		}
		elapsed -= d
	}
	return -1, nil
}

// roll is the seeded per-operation decision, mirroring Campaign.roll: a
// pure hash of (seed, phase, kind, operation, endpoint), stable across
// runs and immune to goroutine scheduling.
func (nc *NetworkCampaign) roll(phase int, kind uint64, op uint64, endpoint string, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := nc.Seed
	h ^= mix(uint64(phase+1) * 0x9e3779b97f4a7c15)
	h ^= mix(kind * 0xbf58476d1ce4e5b9)
	h ^= mix(op*2 + 1)
	h ^= HashString(endpoint)
	return float64(mix(h))/float64(math.MaxUint64) < prob
}

// Disturbance kinds for the roll hash (distinct streams per fault type).
const (
	netKindLoss = iota + 100
	netKindDuplicate
	netKindReorder
	netKindSpike
	netKindReset
)

// Wrap decorates dial so connections to endpoint suffer the campaign's
// scheduled faults. Wrapping is cheap and safe before Start: a campaign
// that never starts injects nothing.
func (nc *NetworkCampaign) Wrap(endpoint string, dial NetDial) NetDial {
	return func(ctx context.Context) (net.Conn, error) {
		if _, p := nc.PhaseNow(); p != nil && p.partitions(endpoint) {
			// A partitioned dial fails like a SYN that never comes back:
			// after a moment, not instantly, so tight retry loops cannot
			// spin at full speed against a dead endpoint.
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("%w: %s", ErrPartitioned, endpoint)
		}
		conn, err := dial(ctx)
		if err != nil {
			return nil, err
		}
		return &faultyConn{Conn: conn, campaign: nc, endpoint: endpoint}, nil
	}
}

// faultyConn injects the campaign's per-operation faults into one
// connection. Writes are the injection point — the transport sends one
// frame per Write call, so loss, duplication, and reordering operate on
// whole frames; reads only model the partition (silence).
type faultyConn struct {
	net.Conn
	campaign *NetworkCampaign
	endpoint string

	mu sync.Mutex
	// held is a frame delayed by a reorder decision; it is delivered
	// after the next write (or dropped with the connection).
	held []byte
	// readDeadline shadows the underlying read deadline so a partitioned
	// read can honor it without touching the real connection.
	readDeadline time.Time
	reset        bool
}

// Write implements net.Conn, applying the current phase's fault rolls to
// the frame.
func (c *faultyConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, fmt.Errorf("write: %w", ErrConnReset)
	}
	phase, p := c.campaign.PhaseNow()
	if p == nil {
		return c.flush(b)
	}
	if p.partitions(c.endpoint) {
		// Swallow silently: the sender sees success, nothing arrives.
		return len(b), nil
	}
	op := c.campaign.ops.Add(1)
	if c.campaign.roll(phase, netKindReset, op, c.endpoint, p.Resets) {
		c.reset = true
		c.Conn.Close()
		return 0, fmt.Errorf("write: %w", ErrConnReset)
	}
	if c.campaign.roll(phase, netKindSpike, op, c.endpoint, p.LatencySpike) {
		delay := p.SpikeDelay.D()
		if delay <= 0 {
			delay = 50 * time.Millisecond
		}
		c.mu.Unlock()
		time.Sleep(delay)
		c.mu.Lock()
		if c.reset {
			return 0, fmt.Errorf("write: %w", ErrConnReset)
		}
	}
	if c.campaign.roll(phase, netKindLoss, op, c.endpoint, p.Loss) {
		return len(b), nil // lost in transit; the sender cannot tell
	}
	if c.campaign.roll(phase, netKindReorder, op, c.endpoint, p.Reorder) && c.held == nil {
		// Hold this frame back; it departs after the next one.
		c.held = append([]byte(nil), b...)
		return len(b), nil
	}
	if c.campaign.roll(phase, netKindDuplicate, op, c.endpoint, p.Duplicate) {
		if _, err := c.Conn.Write(b); err != nil {
			return 0, err
		}
	}
	return c.flush(b)
}

// flush writes b and then any frame held back by a reorder decision —
// the swap that delivers frames out of order.
func (c *faultyConn) flush(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	if err != nil {
		return n, err
	}
	if c.held != nil {
		held := c.held
		c.held = nil
		if _, err := c.Conn.Write(held); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Read implements net.Conn. A partition is silence: while it lasts, Read
// polls instead of reading, returning only on deadline (timeout) — never
// an early error a client could react to faster than a real partition
// would allow.
func (c *faultyConn) Read(b []byte) (int, error) {
	for {
		if _, p := c.campaign.PhaseNow(); p == nil || !p.partitions(c.endpoint) {
			return c.Conn.Read(b)
		}
		c.mu.Lock()
		deadline := c.readDeadline
		c.mu.Unlock()
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, fmt.Errorf("read: %w: deadline exceeded", ErrPartitioned)
		}
		time.Sleep(time.Millisecond)
	}
}

// SetDeadline implements net.Conn, shadowing the read deadline for
// partitioned reads.
func (c *faultyConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *faultyConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// ParseNetworkCampaign decodes and validates a JSON network campaign.
func ParseNetworkCampaign(data []byte) (*NetworkCampaign, error) {
	var nc NetworkCampaign
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&nc); err != nil {
		return nil, fmt.Errorf("faultmodel: bad network campaign spec: %w", err)
	}
	if err := nc.Validate(); err != nil {
		return nil, err
	}
	return &nc, nil
}

// DefaultNetworkCampaign is the builtin schedule: clean warmup, a lossy
// degraded stretch, a partition of the victim endpoint long enough for a
// default-tuned failure detector to convict it, a flaky stretch of
// resets and latency spikes, and a clean recovery tail.
func DefaultNetworkCampaign(seed uint64, victim string) *NetworkCampaign {
	return &NetworkCampaign{
		Name: "builtin-net",
		Seed: seed,
		Phases: []NetworkPhase{
			{Name: "warmup", Duration: Duration(300 * time.Millisecond)},
			{Name: "degraded", Duration: Duration(700 * time.Millisecond),
				Loss: 0.05, Duplicate: 0.02, Reorder: 0.02,
				LatencySpike: 0.10, SpikeDelay: Duration(20 * time.Millisecond)},
			{Name: "partition", Duration: Duration(1200 * time.Millisecond),
				Partition: []string{victim}},
			{Name: "flaky", Duration: Duration(700 * time.Millisecond),
				Resets: 0.05, LatencySpike: 0.15, SpikeDelay: Duration(20 * time.Millisecond)},
			{Name: "recovery", Duration: Duration(300 * time.Millisecond)},
		},
	}
}

package faultmodel

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
)

func twoPhaseCampaign() *Campaign {
	return &Campaign{
		Name: "t",
		Seed: 7,
		Phases: []ChaosPhase{
			{Name: "a", Requests: 3, ErrorBurst: 0.5},
			{Name: "b", Requests: 2, Hangs: 0.5},
		},
	}
}

func TestRollIsDeterministic(t *testing.T) {
	c := twoPhaseCampaign()
	for req := uint64(0); req < 50; req++ {
		first := c.roll(0, kindError, req, "v", 0.5, false)
		for i := 0; i < 5; i++ {
			if c.roll(0, kindError, req, "v", 0.5, false) != first {
				t.Fatalf("roll non-deterministic at request %d", req)
			}
		}
	}
	// Edge probabilities are exact.
	if c.roll(0, kindError, 1, "v", 0, false) {
		t.Fatal("probability 0 activated")
	}
	if !c.roll(0, kindError, 1, "v", 1, false) {
		t.Fatal("probability 1 did not activate")
	}
}

func TestRollCorrelatedIgnoresVariant(t *testing.T) {
	c := twoPhaseCampaign()
	sawDifference := false
	for req := uint64(0); req < 200; req++ {
		a := c.roll(0, kindError, req, "variant-a", 0.5, true)
		b := c.roll(0, kindError, req, "variant-b", 0.5, true)
		if a != b {
			t.Fatalf("correlated roll differed across variants at request %d", req)
		}
		if c.roll(0, kindError, req, "variant-a", 0.5, false) !=
			c.roll(0, kindError, req, "variant-b", 0.5, false) {
			sawDifference = true
		}
	}
	if !sawDifference {
		t.Error("independent rolls never differed across variants in 200 requests")
	}
}

func TestRollKindsAreIndependent(t *testing.T) {
	c := twoPhaseCampaign()
	same := 0
	const n = 1000
	for req := uint64(0); req < n; req++ {
		if c.roll(0, kindError, req, "v", 0.5, false) ==
			c.roll(0, kindLatency, req, "v", 0.5, false) {
			same++
		}
	}
	// Identical schedules would agree on every request; independent ones
	// agree about half the time.
	if same > 3*n/4 {
		t.Errorf("error and latency schedules agree on %d/%d requests", same, n)
	}
}

func TestPhaseAtMapsGlobalRequestIndex(t *testing.T) {
	c := twoPhaseCampaign()
	cases := []struct {
		req  uint64
		want int
	}{{0, 0}, {2, 0}, {3, 1}, {4, 1}, {5, -1}, {100, -1}}
	for _, tc := range cases {
		got, phase := c.PhaseAt(tc.req)
		if got != tc.want {
			t.Errorf("PhaseAt(%d) = %d, want %d", tc.req, got, tc.want)
		}
		if (phase == nil) != (tc.want == -1) {
			t.Errorf("PhaseAt(%d) phase nil = %v", tc.req, phase == nil)
		}
	}
	if got := c.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
}

func TestCampaignValidate(t *testing.T) {
	if err := (&Campaign{}).Validate(); err == nil {
		t.Error("campaign with no phases validated")
	}
	bad := &Campaign{Phases: []ChaosPhase{{Name: "p", Requests: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("phase with no requests validated")
	}
	badProb := &Campaign{Phases: []ChaosPhase{{Name: "p", Requests: 1, ErrorBurst: 1.5}}}
	if err := badProb.Validate(); err == nil {
		t.Error("out-of-range probability validated")
	}
	if err := twoPhaseCampaign().Validate(); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
}

func TestParseCampaign(t *testing.T) {
	spec := `{
		"name": "spec",
		"seed": 11,
		"max_hang": "250ms",
		"phases": [
			{"name": "burst", "requests": 10, "error_burst": 0.5},
			{"name": "spike", "requests": 5, "latency_spike": 1, "spike_delay": "2ms"}
		]
	}`
	c, err := ParseCampaign([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxHang.D() != 250*time.Millisecond {
		t.Errorf("MaxHang = %v, want 250ms", c.MaxHang.D())
	}
	if c.Phases[1].SpikeDelay.D() != 2*time.Millisecond {
		t.Errorf("SpikeDelay = %v, want 2ms", c.Phases[1].SpikeDelay.D())
	}

	if _, err := ParseCampaign([]byte(`{"phases":[{"name":"p","requests":1,"typo_field":1}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseCampaign([]byte(`{"phases":[{"name":"p","requests":1,"spike_delay":"nonsense"}]}`)); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	d := Duration(1500 * time.Millisecond)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip %s -> %v", b, back.D())
	}
	var numeric Duration
	if err := numeric.UnmarshalJSON([]byte("1000")); err != nil {
		t.Fatal(err)
	}
	if numeric.D() != 1000 {
		t.Errorf("numeric duration = %v, want 1000ns", numeric.D())
	}
}

func echoVariant(name string) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
		return x, nil
	})
}

func TestChaosTransparentOutsideCampaign(t *testing.T) {
	ch := &Chaos[int, int]{Base: echoVariant("v"), Campaign: twoPhaseCampaign()}
	// No request index in the context: the wrapper must be transparent
	// even with an aggressive campaign attached.
	if v, err := ch.Execute(context.Background(), 9); err != nil || v != 9 {
		t.Fatalf("Execute = (%d, %v), want (9, nil)", v, err)
	}
	none := &Chaos[int, int]{Base: echoVariant("v")}
	ctx := WithRequestIndex(context.Background(), 0)
	if v, err := none.Execute(ctx, 9); err != nil || v != 9 {
		t.Fatalf("nil-campaign Execute = (%d, %v), want (9, nil)", v, err)
	}
	if ch.Name() != "v" {
		t.Errorf("Name = %q, want v", ch.Name())
	}
}

func TestChaosErrorBurstAndVariantFilter(t *testing.T) {
	camp := &Campaign{
		Name: "t",
		Phases: []ChaosPhase{
			{Name: "burst", Requests: 10, ErrorBurst: 1, Variants: []string{"hit"}},
		},
	}
	hit := &Chaos[int, int]{Base: echoVariant("hit"), Campaign: camp}
	spared := &Chaos[int, int]{Base: echoVariant("spared"), Campaign: camp}
	for req := uint64(0); req < 10; req++ {
		ctx := WithRequestIndex(context.Background(), req)
		_, err := hit.Execute(ctx, 1)
		var ae *ActivatedError
		if !errors.As(err, &ae) {
			t.Fatalf("request %d: err = %v, want ActivatedError", req, err)
		}
		if ae.Fault != "chaos-burst" {
			t.Fatalf("fault = %q, want chaos-burst", ae.Fault)
		}
		if v, err := spared.Execute(ctx, 1); err != nil || v != 1 {
			t.Fatalf("filtered variant disturbed: (%d, %v)", v, err)
		}
	}
	// Past the end of the schedule the wrapper is transparent again.
	ctx := WithRequestIndex(context.Background(), 99)
	if v, err := hit.Execute(ctx, 1); err != nil || v != 1 {
		t.Fatalf("past-schedule Execute = (%d, %v), want (1, nil)", v, err)
	}
}

func TestChaosHangReleasedByMaxHang(t *testing.T) {
	camp := &Campaign{
		Name:    "t",
		MaxHang: Duration(20 * time.Millisecond),
		Phases:  []ChaosPhase{{Name: "hang", Requests: 5, Hangs: 1}},
	}
	ch := &Chaos[int, int]{Base: echoVariant("v"), Campaign: camp}
	ctx := WithRequestIndex(context.Background(), 0)
	start := time.Now()
	_, err := ch.Execute(ctx, 1)
	if !errors.Is(err, ErrMaxHang) {
		t.Fatalf("Execute = %v, want ErrMaxHang", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang released after %v, want ~MaxHang", elapsed)
	}

	// A context deadline shorter than MaxHang wins.
	camp.MaxHang = Duration(time.Hour)
	tctx, cancel := context.WithTimeout(WithRequestIndex(context.Background(), 0), 20*time.Millisecond)
	defer cancel()
	if _, err := ch.Execute(tctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Execute = %v, want DeadlineExceeded", err)
	}
}

func TestFailHangMaxHangGuard(t *testing.T) {
	inj := &Injector[int, int]{
		Base:    echoVariant("v"),
		Faults:  []Fault{Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:    FailHang,
		Key:     func(x int) uint64 { return uint64(x) },
		MaxHang: 20 * time.Millisecond,
	}
	// Regression: before the guard, this call (no context deadline)
	// wedged forever.
	done := make(chan error, 1)
	go func() {
		_, err := inj.Execute(context.Background(), 1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrMaxHang) {
			t.Fatalf("Execute = %v, want ErrMaxHang", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FailHang with MaxHang set still wedged the goroutine")
	}

	// A context deadline still takes precedence over the guard.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	inj.MaxHang = time.Hour
	if _, err := inj.Execute(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Execute = %v, want DeadlineExceeded", err)
	}
}

func TestRunCampaignTalliesAndReport(t *testing.T) {
	camp := &Campaign{
		Name: "tally",
		Seed: 3,
		Phases: []ChaosPhase{
			{Name: "calm", Requests: 10},
			{Name: "storm", Requests: 10, ErrorBurst: 1},
		},
	}
	exec := core.ExecutorFunc[int, int](func(ctx context.Context, x int) (int, error) {
		ch := &Chaos[int, int]{Base: echoVariant("v"), Campaign: camp}
		return ch.Execute(ctx, x)
	})
	rep, err := RunCampaign(context.Background(), camp, exec,
		func(req uint64) int { return int(req) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases[0].Succeeded != 10 || rep.Phases[0].Failed != 0 {
		t.Errorf("calm phase = %+v, want 10 successes", rep.Phases[0])
	}
	if rep.Phases[1].Failed != 10 || rep.Phases[1].Succeeded != 0 {
		t.Errorf("storm phase = %+v, want 10 failures", rep.Phases[1])
	}
	totals := rep.Totals()
	if totals.Requests != 20 || totals.Succeeded != 10 || totals.Failed != 10 {
		t.Errorf("totals = %+v", totals)
	}
	out := rep.String()
	for _, want := range []string{"tally", "calm", "storm", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if _, err := RunCampaign(context.Background(), &Campaign{}, exec,
		func(req uint64) int { return int(req) }, nil); err == nil {
		t.Error("RunCampaign accepted an invalid campaign")
	}
}

package faultmodel

// Adversary models a Byzantine replica: a variant that sometimes
// returns a plausible-but-wrong answer (FailLie) instead of failing
// detectably. The strategies come from the fault-injection literature
// the quorum layer is measured against: an always-lying replica, an
// intermittent liar that lies on a deterministic fraction of inputs,
// and colluding replicas that lie on the same inputs with the *same*
// wrong answer — the correlated failures of Brilliant et al. that
// break the independence assumption behind majority voting. All
// decisions are seeded hash rolls over the input key, so a campaign
// replays the exact same lies and the driver can compute ground truth
// (which requests were attacked) without trusting the replicas.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/softwarefaults/redundancy/internal/core"
)

// AdversaryStrategy selects when an Adversary lies.
type AdversaryStrategy string

const (
	// AdversaryAlways lies on every request.
	AdversaryAlways AdversaryStrategy = "always"
	// AdversaryIntermittent lies on a deterministic LieProb fraction of
	// inputs, chosen per replica (distinct intermittent liars attack
	// different inputs, so they do not accidentally collude).
	AdversaryIntermittent AdversaryStrategy = "intermittent"
	// AdversaryCollude lies on a deterministic LieProb fraction of
	// inputs chosen from the *shared* seed only — every colluding
	// replica attacks the same inputs with the same wrong answer, the
	// correlated-failure case that defeats n=2k+1 sizing as soon as the
	// cartel exceeds k.
	AdversaryCollude AdversaryStrategy = "collude"
)

// ParseAdversaryStrategy validates a strategy name.
func ParseAdversaryStrategy(s string) (AdversaryStrategy, error) {
	switch AdversaryStrategy(s) {
	case AdversaryAlways, AdversaryIntermittent, AdversaryCollude:
		return AdversaryStrategy(s), nil
	default:
		return "", fmt.Errorf("faultmodel: unknown adversary strategy %q (want always, intermittent, or collude)", s)
	}
}

// ParseAdversarySpec parses the "strategy:count" form of the faultsim
// -adversary flag (e.g. "collude:2"); a bare "strategy" means count 1.
func ParseAdversarySpec(spec string) (AdversaryStrategy, int, error) {
	name, countStr, found := strings.Cut(spec, ":")
	strategy, err := ParseAdversaryStrategy(name)
	if err != nil {
		return "", 0, err
	}
	count := 1
	if found {
		count, err = strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return "", 0, fmt.Errorf("faultmodel: bad adversary count %q in %q", countStr, spec)
		}
	}
	return strategy, count, nil
}

// defaultLieProb backstops intermittent/colluding adversaries whose
// LieProb is left zero.
const defaultLieProb = 0.3

// Adversary wraps a correct variant as a lying replica. Unlike
// Injector — whose faults activate on the *victim's* state (input
// equivalence class, environment, age) — an adversary is strategic: it
// executes the base correctly every time and then decides, from its
// strategy and seeds, whether to replace the correct answer with a lie.
type Adversary[I, O any] struct {
	// Base is the correct implementation.
	Base core.Variant[I, O]
	// Strategy selects when to lie.
	Strategy AdversaryStrategy
	// Seed is the campaign seed shared by the whole fleet. Colluding
	// adversaries roll from it alone, so every colluder attacks the
	// same inputs.
	Seed uint64
	// Replica distinguishes intermittent liars: their per-input rolls
	// mix in HashString(Replica), so two intermittent adversaries lie
	// on different input subsets. Ignored by collude (by design) and
	// always (which needs no roll). Defaults to Base.Name().
	Replica string
	// LieProb is the fraction of inputs attacked by intermittent and
	// colluding strategies (always lies regardless). Default 0.3.
	LieProb float64
	// Lie produces the wrong answer. It must be deterministic in its
	// arguments: colluders rely on that to agree with each other, and
	// campaigns rely on it for replay. If nil, the zero value of O is
	// the lie.
	Lie func(input I, correct O) O
	// Key derives the deterministic input key; required.
	Key func(I) uint64
}

var _ core.Variant[int, int] = (*Adversary[int, int])(nil)

// Name implements core.Variant.
func (a *Adversary[I, O]) Name() string { return a.Base.Name() }

// replica returns the per-replica salt for intermittent rolls.
func (a *Adversary[I, O]) replica() string {
	if a.Replica != "" {
		return a.Replica
	}
	return a.Base.Name()
}

// lieProb returns the configured or default lie probability.
func (a *Adversary[I, O]) lieProb() float64 {
	if a.LieProb > 0 {
		return a.LieProb
	}
	return defaultLieProb
}

// Lies reports whether this adversary attacks the given input — the
// ground truth a campaign driver records per request. Deterministic:
// the same (strategy, seed, replica, input) always decides the same
// way, at planning time or at execution time.
func (a *Adversary[I, O]) Lies(input I) bool {
	switch a.Strategy {
	case AdversaryAlways:
		return true
	case AdversaryIntermittent:
		roll := mix(a.Seed ^ a.Key(input) ^ HashString(a.replica()))
		return float64(roll>>11)/(1<<53) < a.lieProb()
	case AdversaryCollude:
		// No replica salt: every colluder sharing the seed attacks the
		// same inputs.
		roll := mix(a.Seed ^ a.Key(input))
		return float64(roll>>11)/(1<<53) < a.lieProb()
	default:
		return false
	}
}

// Execute implements core.Variant: the base runs correctly, then the
// answer is replaced with the lie on attacked inputs. Base failures
// pass through unmodified — an adversary's power is the wrong answer,
// not extra crashes.
func (a *Adversary[I, O]) Execute(ctx context.Context, input I) (O, error) {
	correct, err := a.Base.Execute(ctx, input)
	if err != nil || !a.Lies(input) {
		return correct, err
	}
	if a.Lie == nil {
		var zero O
		return zero, nil
	}
	return a.Lie(input, correct), nil
}

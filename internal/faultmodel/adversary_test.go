package faultmodel

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

func TestParseAdversarySpec(t *testing.T) {
	tests := []struct {
		spec     string
		strategy AdversaryStrategy
		count    int
		wantErr  bool
	}{
		{"always", AdversaryAlways, 1, false},
		{"intermittent", AdversaryIntermittent, 1, false},
		{"collude:2", AdversaryCollude, 2, false},
		{"always:3", AdversaryAlways, 3, false},
		{"bogus", "", 0, true},
		{"collude:0", "", 0, true},
		{"collude:-1", "", 0, true},
		{"collude:x", "", 0, true},
		{"", "", 0, true},
	}
	for _, tt := range tests {
		strategy, count, err := ParseAdversarySpec(tt.spec)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAdversarySpec(%q) err = %v, wantErr %v", tt.spec, err, tt.wantErr)
			continue
		}
		if err == nil && (strategy != tt.strategy || count != tt.count) {
			t.Errorf("ParseAdversarySpec(%q) = (%v, %d), want (%v, %d)",
				tt.spec, strategy, count, tt.strategy, tt.count)
		}
	}
}

// testAdversary builds an adversary over a correct doubling base.
func testAdversary(strategy AdversaryStrategy, seed uint64, replica string) *Adversary[int, int] {
	return &Adversary[int, int]{
		Base: core.NewVariant("double", func(_ context.Context, x int) (int, error) {
			return 2 * x, nil
		}),
		Strategy: strategy,
		Seed:     seed,
		Replica:  replica,
		Lie:      func(_, correct int) int { return correct + 2 },
		Key:      HashInt,
	}
}

func TestAdversaryAlwaysLies(t *testing.T) {
	adv := testAdversary(AdversaryAlways, 1, "r1")
	for i := 0; i < 50; i++ {
		if !adv.Lies(i) {
			t.Fatalf("always-strategy adversary told the truth on input %d", i)
		}
		got, err := adv.Execute(context.Background(), i)
		if err != nil || got != 2*i+2 {
			t.Fatalf("Execute(%d) = (%d, %v), want the lie %d", i, got, err, 2*i+2)
		}
	}
}

func TestAdversaryIntermittentIsDeterministicAndPartial(t *testing.T) {
	adv := testAdversary(AdversaryIntermittent, 7, "r1")
	lies := 0
	for i := 0; i < 1000; i++ {
		first := adv.Lies(i)
		if first != adv.Lies(i) {
			t.Fatalf("Lies(%d) is not deterministic", i)
		}
		if first {
			lies++
		}
	}
	// Default LieProb is 0.3; a seeded hash roll over 1000 inputs should
	// land well inside [0.2, 0.4].
	if lies < 200 || lies > 400 {
		t.Errorf("intermittent adversary lied on %d/1000 inputs, want ~300", lies)
	}
}

func TestIntermittentAdversariesDoNotAccidentallyCollude(t *testing.T) {
	// Two intermittent liars sharing a seed must attack *different* input
	// subsets — the per-replica salt keeps their lies independent, so a
	// quorum still outvotes them.
	a := testAdversary(AdversaryIntermittent, 7, "r1")
	b := testAdversary(AdversaryIntermittent, 7, "r2")
	both, either := 0, 0
	for i := 0; i < 1000; i++ {
		la, lb := a.Lies(i), b.Lies(i)
		if la || lb {
			either++
		}
		if la && lb {
			both++
		}
	}
	if either == 0 {
		t.Fatal("neither adversary ever lied")
	}
	// Independent 0.3 rolls overlap on ~9% of inputs; identical subsets
	// would overlap on 100% of either's attacks.
	if both*2 > either {
		t.Errorf("intermittent adversaries overlapped on %d of %d attacked inputs — colluding by accident", both, either)
	}
}

func TestColludingAdversariesAgree(t *testing.T) {
	// Same seed, different replica names: colluders must attack the same
	// inputs with the same wrong answer.
	a := testAdversary(AdversaryCollude, 7, "r1")
	b := testAdversary(AdversaryCollude, 7, "r2")
	attacks := 0
	for i := 0; i < 1000; i++ {
		if a.Lies(i) != b.Lies(i) {
			t.Fatalf("colluders disagree on whether to attack input %d", i)
		}
		if !a.Lies(i) {
			continue
		}
		attacks++
		va, errA := a.Execute(context.Background(), i)
		vb, errB := b.Execute(context.Background(), i)
		if errA != nil || errB != nil || va != vb {
			t.Fatalf("colluders' lies diverge on input %d: (%d, %v) vs (%d, %v)", i, va, errA, vb, errB)
		}
		if va == 2*i {
			t.Fatalf("colluder told the truth on attacked input %d", i)
		}
	}
	if attacks == 0 {
		t.Fatal("colluders never attacked")
	}
}

func TestAdversaryPassesThroughBaseFailures(t *testing.T) {
	base := errors.New("base failure")
	adv := &Adversary[int, int]{
		Base: core.NewVariant("broken", func(_ context.Context, _ int) (int, error) {
			return 0, base
		}),
		Strategy: AdversaryAlways,
		Key:      HashInt,
	}
	if _, err := adv.Execute(context.Background(), 1); !errors.Is(err, base) {
		t.Errorf("Execute err = %v, want the base failure (an adversary's power is the wrong answer, not extra crashes)", err)
	}
}

func TestAdversaryNilLieReturnsZero(t *testing.T) {
	adv := testAdversary(AdversaryAlways, 1, "r1")
	adv.Lie = nil
	got, err := adv.Execute(context.Background(), 5)
	if err != nil || got != 0 {
		t.Errorf("Execute = (%d, %v), want the zero-value lie", got, err)
	}
}

package faultmodel

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/resilience"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("250ms") in campaign spec files; bare JSON numbers are nanoseconds.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faultmodel: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// ChaosPhase is one segment of a campaign: a block of consecutive
// requests with a fixed mix of disturbances. Probabilities are fractions
// in [0, 1] of this phase's requests.
type ChaosPhase struct {
	// Name labels the phase in reports.
	Name string `json:"name"`
	// Requests is how many requests the phase spans.
	Requests int `json:"requests"`
	// Concurrency is how many requests the campaign runner keeps in
	// flight during this phase; values < 1 mean 1. Raise it to model
	// overload against a bulkhead.
	Concurrency int `json:"concurrency,omitempty"`
	// ErrorBurst is the fraction of requests on which a chaos-wrapped
	// variant fails with an injected error.
	ErrorBurst float64 `json:"error_burst,omitempty"`
	// LatencySpike is the fraction of requests delayed by SpikeDelay
	// before the variant executes.
	LatencySpike float64 `json:"latency_spike,omitempty"`
	// SpikeDelay is the added latency for LatencySpike activations.
	SpikeDelay Duration `json:"spike_delay,omitempty"`
	// Hangs is the fraction of requests on which the variant blocks until
	// its context is canceled (or the campaign's MaxHang backstop fires).
	Hangs float64 `json:"hangs,omitempty"`
	// Panics is the fraction of requests on which the variant panics
	// (FailPanic manifestation). Pattern executors contain the panic;
	// unguarded call sites crash their goroutine — which is the point
	// when the campaign targets a supervised component.
	Panics float64 `json:"panics,omitempty"`
	// Crashes is the fraction of requests failed with an error wrapping
	// ErrCrashed (FailCrash manifestation): the component "died" and
	// needs a restart, not a retry.
	Crashes float64 `json:"crashes,omitempty"`
	// Correlated makes activation decisions ignore the variant identity,
	// so all chaos-wrapped variants of one request fail together — the
	// common-mode failure that defeats simple redundancy.
	Correlated bool `json:"correlated,omitempty"`
	// Variants restricts which variant names the phase disturbs; empty
	// means all chaos-wrapped variants.
	Variants []string `json:"variants,omitempty"`
}

func (p *ChaosPhase) applies(variant string) bool {
	if len(p.Variants) == 0 {
		return true
	}
	for _, v := range p.Variants {
		if v == variant {
			return true
		}
	}
	return false
}

// Campaign is a deterministic chaos schedule: an ordered list of phases
// driven by a seed. Activation decisions are pure functions of
// (Seed, phase, request index, disturbance kind, variant), so a campaign
// replays identically regardless of goroutine interleaving — the same
// reproducibility discipline as the rest of the fault model.
type Campaign struct {
	// Name labels the campaign in reports.
	Name string `json:"name"`
	// Seed drives every activation decision.
	Seed uint64 `json:"seed"`
	// MaxHang backstops hang disturbances: a hang with no effective
	// context deadline releases (with an error wrapping ErrMaxHang) after
	// this long instead of wedging a goroutine. Zero means 30s.
	MaxHang Duration `json:"max_hang,omitempty"`
	// Phases run in order.
	Phases []ChaosPhase `json:"phases"`
}

// defaultMaxHang bounds hangs whose campaign does not set MaxHang.
const defaultMaxHang = 30 * time.Second

func (c *Campaign) maxHang() time.Duration {
	if d := c.MaxHang.D(); d > 0 {
		return d
	}
	return defaultMaxHang
}

// Total returns the campaign's total request count.
func (c *Campaign) Total() int {
	n := 0
	for i := range c.Phases {
		n += c.Phases[i].Requests
	}
	return n
}

// Validate checks the campaign for structural errors.
func (c *Campaign) Validate() error {
	if len(c.Phases) == 0 {
		return errors.New("faultmodel: campaign has no phases")
	}
	for i := range c.Phases {
		p := &c.Phases[i]
		if p.Requests <= 0 {
			return fmt.Errorf("faultmodel: phase %d (%s) has no requests", i, p.Name)
		}
		for _, frac := range []float64{p.ErrorBurst, p.LatencySpike, p.Hangs, p.Panics, p.Crashes} {
			if frac < 0 || frac > 1 {
				return fmt.Errorf("faultmodel: phase %d (%s) has probability %v outside [0,1]", i, p.Name, frac)
			}
		}
	}
	return nil
}

// PhaseAt maps a global request index to its phase; it returns (-1, nil)
// past the end of the schedule.
func (c *Campaign) PhaseAt(req uint64) (int, *ChaosPhase) {
	rem := req
	for i := range c.Phases {
		n := uint64(c.Phases[i].Requests)
		if rem < n {
			return i, &c.Phases[i]
		}
		rem -= n
	}
	return -1, nil
}

// Disturbance kinds, mixed into the activation hash so the three
// schedules of one phase are independent.
const (
	kindError   = 0x65
	kindLatency = 0x6c
	kindHang    = 0x68
	kindPanic   = 0x70
	kindCrash   = 0x63
)

// roll is the deterministic activation decision for one disturbance on
// one request: a pure hash of (seed, phase, kind, request, variant) —
// no RNG stream whose order concurrency could perturb. Correlated phases
// drop the variant term, failing every variant of a request together.
func (c *Campaign) roll(phase int, kind uint64, req uint64, variant string, prob float64, correlated bool) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := c.Seed
	h ^= mix(uint64(phase+1) * 0x9e3779b97f4a7c15)
	h ^= mix(kind * 0xbf58476d1ce4e5b9)
	h ^= mix(req*2 + 1)
	if !correlated {
		h ^= HashString(variant)
	}
	return float64(mix(h))/float64(math.MaxUint64) < prob
}

// campaignKey carries the global request index through the context.
type campaignKey struct{}

// WithRequestIndex tags a context with the campaign-global request
// index; Chaos variants read it to decide activation. RunCampaign tags
// every request it issues.
func WithRequestIndex(ctx context.Context, req uint64) context.Context {
	return context.WithValue(ctx, campaignKey{}, req)
}

// RequestIndexFrom extracts the campaign request index, if any.
func RequestIndexFrom(ctx context.Context) (uint64, bool) {
	v, ok := ctx.Value(campaignKey{}).(uint64)
	return v, ok
}

// Chaos decorates a variant with a campaign's disturbances. Outside a
// campaign request (no request index in the context) it is transparent.
// Disturbance order per activation: latency spike, then hang, then error
// burst — a request can be both delayed and failed.
type Chaos[I, O any] struct {
	// Base is the undisturbed variant.
	Base core.Variant[I, O]
	// Campaign is the schedule; nil means transparent.
	Campaign *Campaign
}

var _ core.Variant[int, int] = (*Chaos[int, int])(nil)

// Name implements core.Variant.
func (c *Chaos[I, O]) Name() string { return c.Base.Name() }

// Execute implements core.Variant.
func (c *Chaos[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	if c.Campaign == nil {
		return c.Base.Execute(ctx, input)
	}
	req, ok := RequestIndexFrom(ctx)
	if !ok {
		return c.Base.Execute(ctx, input)
	}
	pi, phase := c.Campaign.PhaseAt(req)
	if phase == nil || !phase.applies(c.Base.Name()) {
		return c.Base.Execute(ctx, input)
	}
	name := c.Base.Name()
	if c.Campaign.roll(pi, kindLatency, req, name, phase.LatencySpike, phase.Correlated) {
		if d := phase.SpikeDelay.D(); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return zero, ctx.Err()
			case <-t.C:
			}
		}
	}
	if c.Campaign.roll(pi, kindHang, req, name, phase.Hangs, phase.Correlated) {
		t := time.NewTimer(c.Campaign.maxHang())
		select {
		case <-ctx.Done():
			t.Stop()
			return zero, ctx.Err()
		case <-t.C:
			return zero, fmt.Errorf("chaos hang in phase %s, variant %s: %w",
				phase.Name, name, ErrMaxHang)
		}
	}
	if c.Campaign.roll(pi, kindPanic, req, name, phase.Panics, phase.Correlated) {
		panic(&ActivatedError{Fault: "chaos-panic-" + phase.Name, Variant: name})
	}
	if c.Campaign.roll(pi, kindCrash, req, name, phase.Crashes, phase.Correlated) {
		return zero, fmt.Errorf("chaos crash in phase %s, variant %s: %w",
			phase.Name, name, ErrCrashed)
	}
	if c.Campaign.roll(pi, kindError, req, name, phase.ErrorBurst, phase.Correlated) {
		return zero, &ActivatedError{Fault: "chaos-" + phase.Name, Variant: name}
	}
	return c.Base.Execute(ctx, input)
}

// PanicAt reports whether the campaign panics the named variant on the
// given request. Recovery experiments (sim E23) use it to kill a
// supervised worker at a schedule-determined instant without threading a
// Chaos wrapper through the worker's own code path.
func (c *Campaign) PanicAt(req uint64, variant string) bool {
	pi, phase := c.PhaseAt(req)
	if phase == nil || !phase.applies(variant) {
		return false
	}
	return c.roll(pi, kindPanic, req, variant, phase.Panics, phase.Correlated)
}

// CrashAt reports whether the campaign crash-fails the named variant on
// the given request (an error wrapping ErrCrashed).
func (c *Campaign) CrashAt(req uint64, variant string) bool {
	pi, phase := c.PhaseAt(req)
	if phase == nil || !phase.applies(variant) {
		return false
	}
	return c.roll(pi, kindCrash, req, variant, phase.Crashes, phase.Correlated)
}

// DisturbedAt reports which disturbance kinds the campaign activates for
// the named variant on request req, in a fixed order (latency, hang,
// panic, crash, error); empty when the request is undisturbed. Because
// activation decisions are pure functions of the schedule, this is the
// ground truth an experiment harness scores detection quality against —
// whether a disturbance was *scheduled*, independent of whether the
// executor ever ran the variant.
func (c *Campaign) DisturbedAt(req uint64, variant string) []string {
	pi, phase := c.PhaseAt(req)
	if phase == nil || !phase.applies(variant) {
		return nil
	}
	var out []string
	for _, d := range []struct {
		label string
		kind  uint64
		prob  float64
	}{
		{"latency", kindLatency, phase.LatencySpike},
		{"hang", kindHang, phase.Hangs},
		{"panic", kindPanic, phase.Panics},
		{"crash", kindCrash, phase.Crashes},
		{"error", kindError, phase.ErrorBurst},
	} {
		if c.roll(pi, d.kind, req, variant, d.prob, phase.Correlated) {
			out = append(out, d.label)
		}
	}
	return out
}

// ChaosVariants wraps every variant in vs with the campaign.
func ChaosVariants[I, O any](c *Campaign, vs []core.Variant[I, O]) []core.Variant[I, O] {
	out := make([]core.Variant[I, O], len(vs))
	for i, v := range vs {
		out[i] = &Chaos[I, O]{Base: v, Campaign: c}
	}
	return out
}

// PhaseReport is one phase's outcome tally.
type PhaseReport struct {
	Name      string `json:"name"`
	Requests  int    `json:"requests"`
	Succeeded int    `json:"succeeded"`
	// Shed counts requests rejected by admission control
	// (resilience.ErrShedded).
	Shed int `json:"shed,omitempty"`
	// BreakerFast counts failures caused by an open breaker
	// (resilience.ErrBreakerOpen) — rejected without executing.
	BreakerFast int `json:"breaker_fast,omitempty"`
	// Degraded counts failures marked resilience.ErrDegraded: a ladder
	// was configured but could not serve.
	Degraded int `json:"degraded,omitempty"`
	// Failed counts all other failures.
	Failed  int           `json:"failed,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// CampaignReport is the outcome of one campaign run. When RunCampaign is
// given a collector, Observed carries the final observation snapshot, so
// the report includes the shed/degraded-serve/breaker-open counters next
// to the per-phase outcome tallies.
type CampaignReport struct {
	Name     string                 `json:"name"`
	Seed     uint64                 `json:"seed"`
	Phases   []PhaseReport          `json:"phases"`
	Observed []obs.ExecutorSnapshot `json:"observed,omitempty"`
}

// Totals sums the per-phase tallies.
func (r *CampaignReport) Totals() PhaseReport {
	t := PhaseReport{Name: "total"}
	for _, p := range r.Phases {
		t.Requests += p.Requests
		t.Succeeded += p.Succeeded
		t.Shed += p.Shed
		t.BreakerFast += p.BreakerFast
		t.Degraded += p.Degraded
		t.Failed += p.Failed
		t.Elapsed += p.Elapsed
	}
	return t
}

// String renders a human-readable report.
func (r *CampaignReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign %q (seed %d)\n", r.Name, r.Seed)
	fmt.Fprintf(&b, "%-14s %8s %8s %6s %8s %9s %7s %10s\n",
		"phase", "requests", "ok", "shed", "breaker", "degraded", "failed", "elapsed")
	rows := append(append([]PhaseReport{}, r.Phases...), r.Totals())
	for _, p := range rows {
		fmt.Fprintf(&b, "%-14s %8d %8d %6d %8d %9d %7d %10s\n",
			p.Name, p.Requests, p.Succeeded, p.Shed, p.BreakerFast, p.Degraded, p.Failed,
			p.Elapsed.Round(time.Microsecond))
	}
	for _, e := range r.Observed {
		fmt.Fprintf(&b, "obs[%s]: requests=%d masked=%d failed=%d shed=%d degraded_serves=%d breaker_opens=%d\n",
			e.Executor, e.Requests, e.FailuresMasked, e.Failures, e.Shed, e.DegradedServes, e.BreakerOpens)
	}
	return b.String()
}

// classify buckets one request outcome into the phase tally.
func (p *PhaseReport) classify(err error) {
	switch {
	case err == nil:
		p.Succeeded++
	case errors.Is(err, resilience.ErrShedded):
		p.Shed++
	case errors.Is(err, resilience.ErrDegraded):
		p.Degraded++
	case errors.Is(err, resilience.ErrBreakerOpen):
		p.BreakerFast++
	default:
		p.Failed++
	}
}

// RunCampaign drives the executor through the whole schedule, phase by
// phase, with each phase's configured concurrency, and tallies outcomes.
// input derives the request payload from the global request index.
// collector, if non-nil, contributes its final snapshot to the report.
// The injected disturbances are deterministic in the campaign seed; the
// outcome tallies of overload phases depend on real scheduling, which is
// the point of running them.
func RunCampaign[I, O any](ctx context.Context, c *Campaign, exec core.Executor[I, O], input func(req uint64) I, collector *obs.Collector) (*CampaignReport, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rep := &CampaignReport{Name: c.Name, Seed: c.Seed}
	base := uint64(0)
	for i := range c.Phases {
		phase := &c.Phases[i]
		pr := PhaseReport{Name: phase.Name, Requests: phase.Requests}
		conc := phase.Concurrency
		if conc < 1 {
			conc = 1
		}
		var (
			mu  sync.Mutex
			wg  sync.WaitGroup
			sem = make(chan struct{}, conc)
		)
		start := time.Now()
		for r := 0; r < phase.Requests; r++ {
			req := base + uint64(r)
			wg.Add(1)
			sem <- struct{}{}
			go func(req uint64) {
				defer wg.Done()
				defer func() { <-sem }()
				_, err := exec.Execute(WithRequestIndex(ctx, req), input(req))
				mu.Lock()
				pr.classify(err)
				mu.Unlock()
			}(req)
		}
		wg.Wait()
		pr.Elapsed = time.Since(start)
		rep.Phases = append(rep.Phases, pr)
		base += uint64(phase.Requests)
	}
	if collector != nil {
		rep.Observed = collector.Snapshot()
	}
	return rep, nil
}

// ParseCampaign decodes a campaign spec (JSON; durations as Go duration
// strings) and validates it.
func ParseCampaign(data []byte) (*Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("faultmodel: bad campaign spec: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// DefaultCampaign is the built-in schedule used by `faultsim -chaos`
// without a spec file: a calm warmup, an error burst, a hang phase, an
// overload phase, and a correlated burst, sized to finish in well under a
// second against the simulator's executors.
func DefaultCampaign(seed uint64) *Campaign {
	return &Campaign{
		Name:    "builtin",
		Seed:    seed,
		MaxHang: Duration(2 * time.Second),
		Phases: []ChaosPhase{
			{Name: "warmup", Requests: 200},
			{Name: "error-burst", Requests: 300, ErrorBurst: 0.6},
			{Name: "hangs", Requests: 100, Hangs: 0.3},
			{Name: "overload", Requests: 300, Concurrency: 64, LatencySpike: 0.5, SpikeDelay: Duration(2 * time.Millisecond)},
			{Name: "correlated", Requests: 200, ErrorBurst: 0.5, Correlated: true},
		},
	}
}

// RecoveryCampaign is the built-in schedule for crash-recovery
// experiments (`faultsim -crash`, sim E23): calm traffic interleaved
// with panic and crash phases, so a supervised WAL-backed worker is
// killed repeatedly mid-workload and its restart and data-loss behavior
// can be measured.
func RecoveryCampaign(seed uint64) *Campaign {
	return &Campaign{
		Name:    "recovery",
		Seed:    seed,
		MaxHang: Duration(2 * time.Second),
		Phases: []ChaosPhase{
			{Name: "warmup", Requests: 150},
			{Name: "panics", Requests: 250, Panics: 0.05},
			{Name: "calm", Requests: 100},
			{Name: "crashes", Requests: 250, Crashes: 0.05},
			{Name: "mixed", Requests: 250, Panics: 0.03, Crashes: 0.03},
		},
	}
}

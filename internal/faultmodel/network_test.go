package faultmodel

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// pipeDialer returns a NetDial producing client halves of net.Pipe and a
// channel delivering the server halves.
func pipeDialer() (NetDial, <-chan net.Conn) {
	serverSide := make(chan net.Conn, 16)
	dial := func(ctx context.Context) (net.Conn, error) {
		client, server := net.Pipe()
		serverSide <- server
		return client, nil
	}
	return dial, serverSide
}

// onePhase builds a started campaign with a single long phase.
func onePhase(t *testing.T, seed uint64, phase NetworkPhase) *NetworkCampaign {
	t.Helper()
	if phase.Duration == 0 {
		phase.Duration = Duration(time.Hour)
	}
	nc := &NetworkCampaign{Name: "test", Seed: seed, Phases: []NetworkPhase{phase}}
	if err := nc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	nc.Start()
	return nc
}

func TestNetworkCampaignValidate(t *testing.T) {
	bad := []*NetworkCampaign{
		{Name: "empty"},
		{Name: "zero-duration", Phases: []NetworkPhase{{Name: "p"}}},
		{Name: "bad-prob", Phases: []NetworkPhase{{Name: "p", Duration: Duration(time.Second), Loss: 1.5}}},
	}
	for _, nc := range bad {
		if err := nc.Validate(); err == nil {
			t.Errorf("campaign %q validated, want error", nc.Name)
		}
	}
	good := DefaultNetworkCampaign(7, "r1")
	if err := good.Validate(); err != nil {
		t.Errorf("default campaign invalid: %v", err)
	}
	if good.Total() <= 0 {
		t.Error("default campaign has no duration")
	}
}

func TestNetworkCampaignPhaseClock(t *testing.T) {
	nc := &NetworkCampaign{Name: "clock", Phases: []NetworkPhase{
		{Name: "only", Duration: Duration(50 * time.Millisecond)},
	}}
	if i, p := nc.PhaseNow(); i != -1 || p != nil {
		t.Fatalf("phase before Start: (%d, %v), want (-1, nil)", i, p)
	}
	if nc.Done() {
		t.Fatal("Done before Start")
	}
	nc.Start()
	if i, p := nc.PhaseNow(); i != 0 || p == nil || p.Name != "only" {
		t.Fatalf("phase after Start: (%d, %v)", i, p)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !nc.Done() {
		if time.Now().After(deadline) {
			t.Fatal("campaign never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if i, p := nc.PhaseNow(); i != -1 || p != nil {
		t.Fatalf("phase after the end: (%d, %v), want (-1, nil)", i, p)
	}
}

func TestPartitionedDialFails(t *testing.T) {
	dial, _ := pipeDialer()
	nc := onePhase(t, 1, NetworkPhase{Name: "cut", Partition: []string{"victim"}})
	faulty := nc.Wrap("victim", dial)
	if _, err := faulty(context.Background()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition: %v, want ErrPartitioned", err)
	}
	// A different endpoint on the same network is unaffected.
	other := nc.Wrap("bystander", dial)
	conn, err := other(context.Background())
	if err != nil {
		t.Fatalf("bystander dial: %v", err)
	}
	conn.Close()
}

func TestPartitionSwallowsWritesAndStallsReads(t *testing.T) {
	dial, serverSide := pipeDialer()
	// Connect during a clean phase, then the partition begins.
	nc := &NetworkCampaign{Name: "late-cut", Phases: []NetworkPhase{
		{Name: "clean", Duration: Duration(80 * time.Millisecond)},
		{Name: "cut", Duration: Duration(time.Hour), Partition: []string{"victim"}},
	}}
	nc.Start()
	conn, err := nc.Wrap("victim", dial)(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	server := <-serverSide
	defer server.Close()
	time.Sleep(100 * time.Millisecond) // enter the partition phase

	// Writes report success but nothing reaches the server.
	if n, err := conn.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("partitioned write: (%d, %v), want silent success", n, err)
	}
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("server received %d bytes through a partition", n)
	}

	// Reads stall until the deadline, then fail as a timeout-like error.
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	if _, err := conn.Read(buf); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned read: %v, want ErrPartitioned", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("partitioned read returned after %v, want it to stall to the deadline", elapsed)
	}
}

func TestLossSwallowsSomeWrites(t *testing.T) {
	dial, serverSide := pipeDialer()
	nc := onePhase(t, 42, NetworkPhase{Name: "lossy", Loss: 0.5})
	conn, err := nc.Wrap("ep", dial)(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	server := <-serverSide
	received := make(chan byte, 64)
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := server.Read(buf); err != nil {
				close(received)
				return
			}
			received <- buf[0]
		}
	}()
	const writes = 40
	for i := 0; i < writes; i++ {
		if _, err := conn.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	server.Close()
	got := 0
	for range received {
		got++
	}
	if got == 0 || got == writes {
		t.Fatalf("50%% loss delivered %d/%d writes, want strictly between", got, writes)
	}
}

func TestDuplicateAndReorderDeliverBytes(t *testing.T) {
	// Duplication: more bytes arrive than were written.
	dial, serverSide := pipeDialer()
	nc := onePhase(t, 9, NetworkPhase{Name: "dup", Duplicate: 1})
	conn, err := nc.Wrap("ep", dial)(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	server := <-serverSide
	go func() {
		conn.Write([]byte("A"))
		conn.Write([]byte("B"))
	}()
	buf := make([]byte, 8)
	total := ""
	server.SetReadDeadline(time.Now().Add(time.Second))
	for len(total) < 4 {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q so far)", err, total)
		}
		total += string(buf[:n])
	}
	if total != "AABB" {
		t.Fatalf("duplication delivered %q, want AABB", total)
	}
	conn.Close()
	server.Close()

	// Reordering: a held frame departs after its successor.
	dial2, serverSide2 := pipeDialer()
	nc2 := onePhase(t, 3, NetworkPhase{Name: "swap", Reorder: 1})
	conn2, err := nc2.Wrap("ep", dial2)(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn2.Close()
	server2 := <-serverSide2
	defer server2.Close()
	go func() {
		conn2.Write([]byte("1")) // held back
		conn2.Write([]byte("2")) // reorder=1 wants to hold this too, but one slot: flushes 2 then 1
	}()
	total = ""
	server2.SetReadDeadline(time.Now().Add(time.Second))
	for len(total) < 2 {
		n, err := server2.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q so far)", err, total)
		}
		total += string(buf[:n])
	}
	if total != "21" {
		t.Fatalf("reordering delivered %q, want 21", total)
	}
}

func TestResetTearsConnectionDown(t *testing.T) {
	dial, serverSide := pipeDialer()
	nc := onePhase(t, 5, NetworkPhase{Name: "resets", Resets: 1})
	conn, err := nc.Wrap("ep", dial)(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	server := <-serverSide
	defer server.Close()
	if _, err := conn.Write([]byte("doomed")); !errors.Is(err, ErrConnReset) {
		t.Fatalf("write under resets=1: %v, want ErrConnReset", err)
	}
	// The connection is dead for good, not just for one write.
	if _, err := conn.Write([]byte("still doomed")); !errors.Is(err, ErrConnReset) {
		t.Fatalf("write after reset: %v, want ErrConnReset", err)
	}
}

func TestLatencySpikeDelaysWrite(t *testing.T) {
	dial, serverSide := pipeDialer()
	nc := onePhase(t, 8, NetworkPhase{
		Name: "spiky", LatencySpike: 1, SpikeDelay: Duration(60 * time.Millisecond),
	})
	conn, err := nc.Wrap("ep", dial)(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	server := <-serverSide
	defer server.Close()
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := conn.Write([]byte("slow")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("spiked write took %v, want >= ~60ms", elapsed)
	}
}

func TestWrapIsInertBeforeStartAndAfterEnd(t *testing.T) {
	dial, serverSide := pipeDialer()
	nc := &NetworkCampaign{Name: "inert", Phases: []NetworkPhase{
		{Name: "cut", Duration: Duration(30 * time.Millisecond), Partition: []string{"ep"}, Loss: 1},
	}}
	// Before Start: clean.
	conn, err := nc.Wrap("ep", dial)(context.Background())
	if err != nil {
		t.Fatalf("dial before Start: %v", err)
	}
	server := <-serverSide
	go func() {
		buf := make([]byte, 8)
		server.Read(buf)
		server.Close()
	}()
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatalf("write before Start: %v", err)
	}
	conn.Close()

	// After the campaign ends: clean again.
	nc.Start()
	deadline := time.Now().Add(2 * time.Second)
	for !nc.Done() {
		if time.Now().After(deadline) {
			t.Fatal("campaign never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	conn2, err := nc.Wrap("ep", dial)(context.Background())
	if err != nil {
		t.Fatalf("dial after end: %v", err)
	}
	defer conn2.Close()
	server2 := <-serverSide
	defer server2.Close()
	go func() {
		buf := make([]byte, 8)
		server2.Read(buf)
	}()
	if _, err := conn2.Write([]byte("ok")); err != nil {
		t.Fatalf("write after end: %v", err)
	}
}

func TestParseNetworkCampaign(t *testing.T) {
	spec := `{
		"name": "from-json",
		"seed": 11,
		"phases": [
			{"name": "calm", "duration": "100ms"},
			{"name": "rough", "duration": "200ms", "loss": 0.1, "partition": ["r2"]}
		]
	}`
	nc, err := ParseNetworkCampaign([]byte(spec))
	if err != nil {
		t.Fatalf("ParseNetworkCampaign: %v", err)
	}
	if nc.Name != "from-json" || len(nc.Phases) != 2 || nc.Phases[1].Loss != 0.1 {
		t.Fatalf("parsed campaign mismatch: %+v", nc)
	}
	if nc.Total() != 300*time.Millisecond {
		t.Fatalf("Total: %v, want 300ms", nc.Total())
	}
	if _, err := ParseNetworkCampaign([]byte(`{"name":"x","phases":[{"bogus":1}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseNetworkCampaign([]byte(`{"name":"x","phases":[]}`)); err == nil ||
		!strings.Contains(err.Error(), "no phases") {
		t.Fatalf("empty phases: %v, want 'no phases' error", err)
	}
}

func TestNetworkRollIsDeterministic(t *testing.T) {
	a := &NetworkCampaign{Seed: 123}
	b := &NetworkCampaign{Seed: 123}
	c := &NetworkCampaign{Seed: 456}
	same, diff := 0, 0
	for op := uint64(0); op < 200; op++ {
		ra := a.roll(1, netKindLoss, op, "ep", 0.5)
		if rb := b.roll(1, netKindLoss, op, "ep", 0.5); ra != rb {
			t.Fatalf("same seed diverged at op %d", op)
		}
		if rc := c.roll(1, netKindLoss, op, "ep", 0.5); ra == rc {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical decision streams")
	}
}

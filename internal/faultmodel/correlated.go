package faultmodel

import (
	"errors"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

// CorrelatedFailures draws joint failure outcomes for the N versions of an
// N-version system. Each version fails with marginal probability P; the
// pairwise correlation between any two versions' failure indicators is
// exactly Rho.
//
// The generator uses a common-shock mixture: with probability Rho all
// versions share a single Bernoulli(P) draw (a common-mode failure of the
// kind Brilliant, Knight and Leveson observed experimentally); with
// probability 1-Rho the versions draw independently. Both mixture
// components have marginal P, and the mixture's pairwise correlation is
// Rho by construction.
type CorrelatedFailures struct {
	// N is the number of versions.
	N int
	// P is the marginal per-version failure probability.
	P float64
	// Rho is the pairwise failure correlation in [0,1].
	Rho float64
}

// ErrBadCorrelationConfig reports an invalid CorrelatedFailures setup.
var ErrBadCorrelationConfig = errors.New("faultmodel: invalid correlated-failure configuration")

// Validate checks the configuration.
func (c CorrelatedFailures) Validate() error {
	if c.N <= 0 || c.P < 0 || c.P > 1 || c.Rho < 0 || c.Rho > 1 {
		return ErrBadCorrelationConfig
	}
	return nil
}

// Draw returns one joint outcome: fails[i] reports whether version i fails
// on this invocation, and common reports whether the outcome came from the
// common-mode branch (in which case all failing versions produce the
// *same* wrong answer, the case that defeats majority voting).
func (c CorrelatedFailures) Draw(rng *xrand.Rand) (fails []bool, common bool) {
	fails = make([]bool, c.N)
	if rng.Bool(c.Rho) {
		shared := rng.Bool(c.P)
		for i := range fails {
			fails[i] = shared
		}
		return fails, true
	}
	for i := range fails {
		fails[i] = rng.Bool(c.P)
	}
	return fails, false
}

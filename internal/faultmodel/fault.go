package faultmodel

import (
	"fmt"
	"math"

	"github.com/softwarefaults/redundancy/internal/core"
)

// Fault is a latent software fault. Activated reports whether the fault
// manifests as an error on the given invocation. Implementations must be
// deterministic given (InputKey, Env, Rand stream position).
type Fault interface {
	// Name identifies the fault in experiment reports.
	Name() string
	// Class is the fault's position in the paper's fault dimension.
	Class() core.FaultClass
	// Activated reports whether the fault manifests on this invocation.
	Activated(inv Invocation) bool
}

// Bohrbug is a development fault that manifests deterministically: it
// activates if and only if the input key falls in the fault's trigger
// region. Re-executing the same input always fails again, which is why
// plain checkpoint-recovery cannot mask Bohrbugs.
type Bohrbug struct {
	// ID makes distinct Bohrbugs trigger on distinct input regions.
	ID uint64
	// TriggerFraction is the fraction of the input space that triggers
	// the fault, in [0,1].
	TriggerFraction float64
}

var _ Fault = Bohrbug{}

// Name implements Fault.
func (b Bohrbug) Name() string { return fmt.Sprintf("bohrbug-%d", b.ID) }

// Class implements Fault.
func (b Bohrbug) Class() core.FaultClass { return core.Bohrbugs }

// Activated implements Fault: deterministic in the input key only.
func (b Bohrbug) Activated(inv Invocation) bool {
	if b.TriggerFraction <= 0 {
		return false
	}
	if b.TriggerFraction >= 1 {
		return true
	}
	h := mix(inv.InputKey ^ (b.ID * 0x9e3779b97f4a7c15))
	return float64(h)/float64(math.MaxUint64) < b.TriggerFraction
}

// EnvBohrbug is a deterministic fault whose manifestation additionally
// depends on environment conditions: it always fails on its trigger
// inputs *under the triggering environment*, but a suitable perturbation
// (e.g. allocation padding masking a small overflow) prevents it. The RX
// system targets exactly this class, which plain re-execution cannot
// survive.
type EnvBohrbug struct {
	// ID distinguishes trigger regions.
	ID uint64
	// TriggerFraction is the triggering fraction of the input space.
	TriggerFraction float64
	// MaskedByPadding is the minimum AllocPadding that prevents the
	// failure (0 means padding does not help).
	MaskedByPadding int
	// MaskedByShuffle reports whether shuffled message order prevents
	// the failure (deadlock-style bugs).
	MaskedByShuffle bool
	// MaskedByLoadBelow prevents the failure when Env.Load is strictly
	// below this threshold (resource-exhaustion bugs). Zero disables.
	MaskedByLoadBelow float64
}

var _ Fault = EnvBohrbug{}

// Name implements Fault.
func (b EnvBohrbug) Name() string { return fmt.Sprintf("env-bohrbug-%d", b.ID) }

// Class implements Fault.
func (b EnvBohrbug) Class() core.FaultClass { return core.Bohrbugs }

// Activated implements Fault.
func (b EnvBohrbug) Activated(inv Invocation) bool {
	if !(Bohrbug{ID: b.ID, TriggerFraction: b.TriggerFraction}).Activated(inv) {
		return false
	}
	env := inv.env()
	if b.MaskedByPadding > 0 && env.AllocPadding >= b.MaskedByPadding {
		return false
	}
	if b.MaskedByShuffle && env.Order == ShuffledOrder {
		return false
	}
	if b.MaskedByLoadBelow > 0 && env.Load < b.MaskedByLoadBelow {
		return false
	}
	return true
}

// Heisenbug is a development fault with non-deterministic manifestation.
// Its base activation probability grows with load and memory
// fragmentation, matching the common observation that races and
// resource-exhaustion bugs appear under stress. Re-executing the same
// input gives an independent draw, which is why checkpoint-recovery and
// reboots work against Heisenbugs.
type Heisenbug struct {
	// ID identifies the bug in reports.
	ID uint64
	// Prob is the base activation probability in a fresh, idle process.
	Prob float64
	// LoadWeight scales how much Env.Load adds to the probability.
	LoadWeight float64
	// FragWeight scales how much Env.Fragmentation adds.
	FragWeight float64
}

var _ Fault = Heisenbug{}

// Name implements Fault.
func (h Heisenbug) Name() string { return fmt.Sprintf("heisenbug-%d", h.ID) }

// Class implements Fault.
func (h Heisenbug) Class() core.FaultClass { return core.Heisenbugs }

// Activated implements Fault.
func (h Heisenbug) Activated(inv Invocation) bool {
	env := inv.env()
	p := h.Prob + h.LoadWeight*env.Load + h.FragWeight*env.Fragmentation
	if inv.Rand == nil {
		return false
	}
	return inv.Rand.Bool(p)
}

// AgingFault models software aging: the activation probability follows a
// discrete Weibull-like hazard that increases with process age, so a
// young (recently rejuvenated) process almost never fails while an old
// one fails often. Rejuvenation resets Env.Age and hence the hazard.
type AgingFault struct {
	// ID identifies the fault in reports.
	ID uint64
	// HazardAtScale is the activation probability when Age == Scale.
	HazardAtScale float64
	// Scale is the characteristic age (in requests).
	Scale float64
	// Shape > 1 makes the hazard increase with age.
	Shape float64
}

var _ Fault = AgingFault{}

// Name implements Fault.
func (a AgingFault) Name() string { return fmt.Sprintf("aging-%d", a.ID) }

// Class implements Fault. Aging failures manifest non-deterministically,
// so they sit in the Heisenbug class, as in Grottke and Trivedi's
// "Fighting Bugs" taxonomy the paper cites.
func (a AgingFault) Class() core.FaultClass { return core.Heisenbugs }

// Hazard returns the activation probability at the given age.
func (a AgingFault) Hazard(age int) float64 {
	if a.Scale <= 0 {
		return 0
	}
	p := a.HazardAtScale * math.Pow(float64(age)/a.Scale, a.Shape)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// Activated implements Fault.
func (a AgingFault) Activated(inv Invocation) bool {
	if inv.Rand == nil {
		return false
	}
	return inv.Rand.Bool(a.Hazard(inv.env().Age))
}

// mix is a 64-bit finalizer (SplitMix64's) used to hash input keys into
// uniform trigger coordinates.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 produces a deterministic 64-bit key from raw bytes (FNV-1a
// followed by a finalizer). Use it to derive Invocation.InputKey from
// arbitrary inputs.
func Hash64(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return mix(h)
}

// HashInt returns a deterministic key for an integer input.
func HashInt(v int) uint64 {
	return mix(uint64(v) * 0x9e3779b97f4a7c15)
}

// HashString returns a deterministic key for a string input.
func HashString(s string) uint64 {
	return Hash64([]byte(s))
}

package faultmodel

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
)

func TestParseFailSlowSpec(t *testing.T) {
	tests := []struct {
		spec    string
		profile SlowProfile
		factor  float64
		wantErr bool
	}{
		{"constant", SlowConstant, 20, false},
		{"constant:8", SlowConstant, 8, false},
		{"progressive:50", SlowProgressive, 50, false},
		{"bursts:2.5", SlowBursts, 2.5, false},
		{"bogus", "", 0, true},
		{"constant:1", "", 0, true},
		{"constant:0.5", "", 0, true},
		{"constant:x", "", 0, true},
		{"", "", 0, true},
	}
	for _, tt := range tests {
		profile, factor, err := ParseFailSlowSpec(tt.spec)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseFailSlowSpec(%q) err = %v, wantErr %v", tt.spec, err, tt.wantErr)
			continue
		}
		if err == nil && (profile != tt.profile || factor != tt.factor) {
			t.Errorf("ParseFailSlowSpec(%q) = (%v, %g), want (%v, %g)",
				tt.spec, profile, factor, tt.profile, tt.factor)
		}
	}
}

// slowBase returns a variant that records its call count and answers
// correctly and instantly — any measured latency is the wrapper's.
func slowBase(calls *atomic.Int64) core.Variant[int, int] {
	return core.NewVariant("gray", func(ctx context.Context, input int) (int, error) {
		calls.Add(1)
		return 2 * input, nil
	})
}

func TestFailSlowAnswersStayCorrect(t *testing.T) {
	var calls atomic.Int64
	slow := &FailSlow[int, int]{
		Base:        slowBase(&calls),
		Profile:     SlowConstant,
		Factor:      5,
		BaseLatency: time.Millisecond,
		Seed:        42,
	}
	start := time.Now()
	got, err := slow.Execute(context.Background(), 21)
	elapsed := time.Since(start)
	if err != nil || got != 42 {
		t.Fatalf("Execute = (%d, %v), want (42, nil): fail-slow must not corrupt answers", got, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("base executed %d times, want 1", calls.Load())
	}
	// Factor 5 over a 1ms base adds a 4ms stall before the base runs.
	if elapsed < 4*time.Millisecond {
		t.Fatalf("constant limp stalled only %v, want ≥ 4ms", elapsed)
	}
}

func TestFailSlowGateAndRejuvenate(t *testing.T) {
	var calls atomic.Int64
	var gateOpen atomic.Bool
	slow := &FailSlow[int, int]{
		Base:        slowBase(&calls),
		Profile:     SlowConstant,
		Factor:      20,
		BaseLatency: time.Millisecond,
		Gate:        gateOpen.Load,
	}
	if slow.Limping() {
		t.Fatal("closed gate: Limping() = true, want false")
	}
	start := time.Now()
	if _, err := slow.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("closed gate stalled %v, want fast path", elapsed)
	}

	gateOpen.Store(true)
	if !slow.Limping() {
		t.Fatal("open gate: Limping() = false, want true")
	}
	// Rejuvenation cures the limp even while the gate stays open.
	slow.Rejuvenate()
	if slow.Limping() {
		t.Fatal("after Rejuvenate: Limping() = true, want false")
	}
	start = time.Now()
	if _, err := slow.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("cured replica stalled %v, want fast path", elapsed)
	}
}

func TestFailSlowProgressiveRamp(t *testing.T) {
	slow := &FailSlow[int, int]{
		Profile:   SlowProgressive,
		Factor:    21,
		RampCalls: 10,
	}
	// Call 0 is 1/10 of the way up the ramp; call 9 and beyond are at
	// the full factor.
	first := slow.multiplier(0)
	if first <= 1 || first >= 21 {
		t.Fatalf("ramp start multiplier = %g, want strictly between 1 and 21", first)
	}
	mid := slow.multiplier(4)
	if mid <= first {
		t.Fatalf("ramp not monotone: multiplier(4) = %g ≤ multiplier(0) = %g", mid, first)
	}
	if got := slow.multiplier(9); got != 21 {
		t.Fatalf("ramp top multiplier = %g, want 21", got)
	}
	if got := slow.multiplier(500); got != 21 {
		t.Fatalf("past ramp multiplier = %g, want 21", got)
	}
}

func TestFailSlowBurstsSeededAndMixed(t *testing.T) {
	mk := func(seed uint64, replica string) *FailSlow[int, int] {
		return &FailSlow[int, int]{
			Profile:   SlowBursts,
			Factor:    10,
			Seed:      seed,
			Replica:   replica,
			BurstProb: 0.5,
		}
	}
	a, b := mk(7, "r1"), mk(7, "r1")
	slowCalls, fastCalls := 0, 0
	for i := int64(0); i < 200; i++ {
		ma, mb := a.multiplier(i), b.multiplier(i)
		if ma != mb {
			t.Fatalf("same seed+replica disagree at call %d: %g vs %g", i, ma, mb)
		}
		if ma > 1 {
			slowCalls++
		} else {
			fastCalls++
		}
	}
	if slowCalls == 0 || fastCalls == 0 {
		t.Fatalf("bursts not intermittent: %d slow, %d fast of 200", slowCalls, fastCalls)
	}
	// A different replica salt attacks a different schedule.
	c := mk(7, "r2")
	diverged := false
	for i := int64(0); i < 200 && !diverged; i++ {
		diverged = a.multiplier(i) != c.multiplier(i)
	}
	if !diverged {
		t.Fatal("distinct replicas share a burst schedule; salt is not mixed in")
	}
}

func TestFailSlowStallHonorsContext(t *testing.T) {
	var calls atomic.Int64
	slow := &FailSlow[int, int]{
		Base:        slowBase(&calls),
		Profile:     SlowConstant,
		Factor:      1000,
		BaseLatency: 10 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := slow.Execute(ctx, 1)
	if err == nil {
		t.Fatal("canceled stall returned nil error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled stall pinned for %v; sleep ignores the context", elapsed)
	}
	if calls.Load() != 0 {
		t.Fatal("base executed after cancellation")
	}
}

package faultmodel

// FailSlow models the gray replica: a variant that heartbeats on time
// and answers every call correctly, yet serves it many times slower
// than its peers. This is the timing-failure class of De Florio's
// application-level fault-tolerance taxonomy — invisible to the
// heartbeat detector (pings do not execute the variant), invisible to
// the voter (answers are right), and only observable in the latency
// profile of real requests. The profiles mirror how fail-slow faults
// present in production studies: a constant limp (degraded disk, lost
// CPU cap), progressive degradation (leak-driven slowdown that worsens
// call by call), and intermittent bursts (periodic contention). All
// burst decisions are seeded hash rolls so campaigns replay the exact
// same limp schedule and drivers have ground truth without trusting
// latency measurements.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
)

// SlowProfile selects how a FailSlow replica's latency degrades.
type SlowProfile string

const (
	// SlowConstant limps at the full Factor on every active call.
	SlowConstant SlowProfile = "constant"
	// SlowProgressive ramps linearly from 1× to Factor over RampCalls
	// active calls — the leak-driven slowdown that starts subtle.
	SlowProgressive SlowProfile = "progressive"
	// SlowBursts limps at the full Factor on a seeded BurstProb
	// fraction of active calls and serves the rest at normal speed —
	// intermittent contention that defeats naive threshold alarms.
	SlowBursts SlowProfile = "bursts"
)

// ParseSlowProfile validates a profile name.
func ParseSlowProfile(s string) (SlowProfile, error) {
	switch SlowProfile(s) {
	case SlowConstant, SlowProgressive, SlowBursts:
		return SlowProfile(s), nil
	default:
		return "", fmt.Errorf("faultmodel: unknown slow profile %q (want constant, progressive, or bursts)", s)
	}
}

// defaultSlowFactor backstops FailSlow values whose Factor is left
// zero: 20× is squarely in the gray band — far above noise, far below
// a timeout.
const defaultSlowFactor = 20.0

// ParseFailSlowSpec parses the "profile:factor" form of the faultsim
// gray-fault flag (e.g. "constant:20", "bursts:50"); a bare "profile"
// means the default factor.
func ParseFailSlowSpec(spec string) (SlowProfile, float64, error) {
	name, factorStr, found := strings.Cut(spec, ":")
	profile, err := ParseSlowProfile(name)
	if err != nil {
		return "", 0, err
	}
	factor := defaultSlowFactor
	if found {
		factor, err = strconv.ParseFloat(factorStr, 64)
		if err != nil || factor <= 1 {
			return "", 0, fmt.Errorf("faultmodel: bad slow factor %q in %q (want a multiplier > 1)", factorStr, spec)
		}
	}
	return profile, factor, nil
}

// FailSlow wraps a correct variant as a gray replica. Unlike Injector
// (wrong answers, crashes) and Adversary (strategic lies), a fail-slow
// replica is behaviorally perfect — it only stretches time. The wrapper
// sleeps (Factor−1)×BaseLatency before delegating, so a base that takes
// BaseLatency to serve presents a total service time of
// Factor×BaseLatency while the answer stays correct.
type FailSlow[I, O any] struct {
	// Base is the correct implementation.
	Base core.Variant[I, O]
	// Profile selects the degradation shape. Default SlowConstant.
	Profile SlowProfile
	// Factor is the peak latency multiplier. Default 20.
	Factor float64
	// BaseLatency is the healthy service time the multiplier scales.
	// Required for the fault to have any effect.
	BaseLatency time.Duration
	// Seed drives burst rolls; shared with the campaign so the limp
	// schedule replays exactly.
	Seed uint64
	// Replica salts burst rolls so two bursty limpers stall on
	// different calls. Defaults to Base.Name().
	Replica string
	// RampCalls is how many active calls SlowProgressive takes to reach
	// the full Factor. Default 50.
	RampCalls int
	// BurstProb is the fraction of active calls SlowBursts limps on.
	// Default 0.5.
	BurstProb float64
	// Gate, when non-nil, bounds the fault: the limp is active exactly
	// while Gate returns true. Drivers key it to a fleet-wide request
	// counter so a replica that ejection has starved of traffic still
	// recovers on schedule. When nil the fault is always active.
	Gate func() bool

	// calls counts Execute invocations (active or not) — the per-call
	// index burst rolls and the progressive ramp key off.
	calls atomic.Int64
	// rampFrom remembers the call index at which the current limp
	// episode began, so the progressive ramp restarts after a cure.
	rampFrom atomic.Int64
	// cured is set by Rejuvenate: a micro-reboot repairs the degraded
	// environment and the replica serves at full speed again.
	cured atomic.Bool
}

var _ core.Variant[int, int] = (*FailSlow[int, int])(nil)

// Name implements core.Variant.
func (f *FailSlow[I, O]) Name() string { return f.Base.Name() }

// replica returns the per-replica salt for burst rolls.
func (f *FailSlow[I, O]) replica() string {
	if f.Replica != "" {
		return f.Replica
	}
	return f.Base.Name()
}

func (f *FailSlow[I, O]) factor() float64 {
	if f.Factor > 1 {
		return f.Factor
	}
	return defaultSlowFactor
}

func (f *FailSlow[I, O]) rampCalls() int64 {
	if f.RampCalls > 0 {
		return int64(f.RampCalls)
	}
	return 50
}

func (f *FailSlow[I, O]) burstProb() float64 {
	if f.BurstProb > 0 {
		return f.BurstProb
	}
	return 0.5
}

// active reports whether the limp is switched on right now (gate open
// and not yet cured), independent of the per-call profile decision.
func (f *FailSlow[I, O]) active() bool {
	if f.cured.Load() {
		return false
	}
	if f.Gate != nil {
		return f.Gate()
	}
	return true
}

// multiplier returns the latency multiplier for the given call index —
// ≥ 1, where 1 means "serve at normal speed".
func (f *FailSlow[I, O]) multiplier(idx int64) float64 {
	if !f.active() {
		return 1
	}
	switch f.Profile {
	case SlowProgressive:
		from := f.rampFrom.Load()
		progress := float64(idx-from+1) / float64(f.rampCalls())
		if progress > 1 {
			progress = 1
		}
		if progress < 0 {
			progress = 0
		}
		return 1 + (f.factor()-1)*progress
	case SlowBursts:
		roll := mix(f.Seed ^ HashInt(int(idx)) ^ HashString(f.replica()))
		if float64(roll>>11)/(1<<53) < f.burstProb() {
			return f.factor()
		}
		return 1
	default: // SlowConstant
		return f.factor()
	}
}

// Limping reports whether the replica is currently degraded — the
// ground truth a campaign driver scores ejection verdicts against.
// For SlowBursts this is true whenever the burst window is open, even
// between bursts: the replica is faulty, the fault is just
// intermittent.
func (f *FailSlow[I, O]) Limping() bool { return f.active() }

// Rejuvenate cures the limp, modeling a micro-reboot that replaces the
// degraded environment (the rejuvenation actuator the control plane
// already has). The cure is permanent for this wrapper instance.
func (f *FailSlow[I, O]) Rejuvenate() { f.cured.Store(true) }

// Execute implements core.Variant: sleep out the limp, then serve
// correctly. The sleep honors context cancellation so a hedged or
// abandoned request does not pin the goroutine for the full stall.
func (f *FailSlow[I, O]) Execute(ctx context.Context, input I) (O, error) {
	idx := f.calls.Add(1) - 1
	if !f.active() {
		// Track episode starts: the first active call after an idle
		// stretch re-anchors the progressive ramp.
		f.rampFrom.Store(idx + 1)
		return f.Base.Execute(ctx, input)
	}
	if m := f.multiplier(idx); m > 1 && f.BaseLatency > 0 {
		stall := time.Duration(float64(f.BaseLatency) * (m - 1))
		timer := time.NewTimer(stall)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			var zero O
			return zero, ctx.Err()
		}
	}
	return f.Base.Execute(ctx, input)
}

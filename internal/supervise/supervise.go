// Package supervise implements an Erlang-style supervision tree over
// restartable components: children are started in order, monitored for
// failure (returned errors and captured panics alike), restarted
// according to a per-tree strategy, and — when restarts exceed the
// configured intensity — escalated to the parent supervisor.
//
// In the paper's terms this is environment-redundancy applied to whole
// processes: a micro-rebootable component whose failure-triggering
// conditions are environmental (Heisenbugs, aging) is given a fresh
// environment by restarting it, and the supervision tree bounds how much
// restarting is attempted before the failure is declared permanent and
// propagated. Children that need state to survive the restart bind a
// durable checkpoint store (internal/checkpoint), so a restart loses no
// acknowledged writes.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// Strategy selects which siblings restart when a child fails.
type Strategy int

const (
	// OneForOne restarts only the failed child.
	OneForOne Strategy = iota
	// RestForOne restarts the failed child and every child started after
	// it (children that may depend on the failed one).
	RestForOne
	// AllForOne restarts every child when any one fails.
	AllForOne
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case OneForOne:
		return "one_for_one"
	case RestForOne:
		return "rest_for_one"
	case AllForOne:
		return "all_for_one"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// RestartPolicy selects when a child is restarted.
type RestartPolicy int

const (
	// Permanent children are restarted whenever they terminate, even
	// normally (servers that should always be up).
	Permanent RestartPolicy = iota
	// Transient children are restarted only on abnormal termination — an
	// error or a panic. A nil return is a normal exit.
	Transient
	// Temporary children are never restarted.
	Temporary
)

// Intensity is the restart-intensity window: more than MaxRestarts
// restarts within Window escalates the failure to the parent.
type Intensity struct {
	MaxRestarts int
	Window      time.Duration
}

// DefaultIntensity allows 3 restarts in 5 seconds, Erlang's default.
var DefaultIntensity = Intensity{MaxRestarts: 3, Window: 5 * time.Second}

// ChildSpec describes one supervised component.
//
// A child's lifecycle is split in two so recovery time is measurable:
// Init brings the component to readiness (replay a WAL, open sockets)
// and its completion ends the downtime clock; Run performs the
// component's work until the context is canceled or the component
// fails. Either may be nil.
type ChildSpec struct {
	// Name identifies the child within its supervisor. Required, unique.
	Name string
	// Init restores the child to readiness. Its successful return marks
	// the end of a restart's downtime (the MTTR sample). An Init error
	// counts as a child failure.
	Init func(ctx context.Context) error
	// Run is the child's body, executed in its own goroutine. Returning
	// nil is a normal exit; an error or a panic is a failure. Run must
	// return promptly once ctx is canceled.
	Run func(ctx context.Context) error
	// Restart selects when the child is restarted (default Permanent).
	Restart RestartPolicy
}

// ErrEscalated is returned by Serve when restart intensity was exceeded
// and the whole supervisor gave up (escalating to its parent, if any).
var ErrEscalated = errors.New("supervise: restart intensity exceeded")

// ErrPanicked wraps the value of a panic captured in a child.
var ErrPanicked = errors.New("supervise: child panicked")

// Options configures a supervisor.
type Options struct {
	// Name labels the supervisor in observation events; empty means
	// "supervisor".
	Name string
	// Strategy selects which siblings restart on a failure.
	Strategy Strategy
	// Intensity bounds restarts; the zero value uses DefaultIntensity.
	Intensity Intensity
	// Backoff delays each restart (a fixed pause before re-Init); zero
	// restarts immediately.
	Backoff time.Duration
	// Observer receives ProcessRestarted and EscalationRaised events;
	// nil observes nothing.
	Observer obs.Observer
}

func (o Options) name() string {
	if o.Name == "" {
		return "supervisor"
	}
	return o.Name
}

func (o Options) intensity() Intensity {
	if o.Intensity.MaxRestarts == 0 && o.Intensity.Window == 0 {
		return DefaultIntensity
	}
	return o.Intensity
}

// exit is a child termination report delivered to the monitor loop.
// gen identifies the child incarnation that produced it: exits from an
// incarnation the supervisor already stopped or replaced are stale and
// ignored, so a deliberate stop is never misread as a fresh failure.
type exit struct {
	child int
	gen   uint64
	err   error // nil for a normal return
}

// addReq is a dynamic child-start request delivered to the monitor
// loop: the spec to adopt plus a reply channel for the start outcome.
type addReq struct {
	spec  ChildSpec
	reply chan error
}

// child is the runtime state of one supervised component.
type child struct {
	spec     ChildSpec
	gen      uint64
	cancel   context.CancelFunc
	done     chan struct{} // closed when the child goroutine returns
	running  bool
	restarts int
}

// Supervisor runs a set of children under a restart strategy. Create
// one with New, add children with Add, then Serve. Serve may be called
// again after it returns (the nesting adapter AsChild relies on this);
// it may not be called concurrently with itself.
type Supervisor struct {
	opts  Options
	specs []ChildSpec

	mu       sync.Mutex
	kids     []*child
	exits    chan exit
	restartQ chan string // programmatic restart requests, by child name
	addQ     chan addReq // dynamic child-start requests
	serving  bool
}

// New creates an empty supervisor.
func New(opts Options) *Supervisor {
	return &Supervisor{opts: opts}
}

// Add appends a child spec. All children must be added before Serve.
func (s *Supervisor) Add(spec ChildSpec) error {
	if spec.Name == "" {
		return errors.New("supervise: child needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serving {
		return errors.New("supervise: cannot add children while serving")
	}
	for _, c := range s.specs {
		if c.Name == spec.Name {
			return fmt.Errorf("supervise: duplicate child %q", spec.Name)
		}
	}
	s.specs = append(s.specs, spec)
	return nil
}

// Restart asks the serving supervisor to restart the named child as if
// it had failed (applying the strategy, counting against intensity).
// Higher layers use it to turn a health signal into a supervised
// micro-reboot. It is safe to call concurrently with Serve.
func (s *Supervisor) Restart(name string) error {
	s.mu.Lock()
	known := false
	for _, c := range s.specs {
		if c.Name == name {
			known = true
		}
	}
	q := s.restartQ
	serving := s.serving
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("supervise: unknown child %q", name)
	}
	if !serving || q == nil {
		return errors.New("supervise: not serving")
	}
	select {
	case q <- name:
		return nil
	default:
		return errors.New("supervise: restart queue full")
	}
}

// StartChild adds a child to a *serving* supervisor and starts it
// immediately — the dynamic sibling of Add, which only accepts specs
// before Serve. The request is routed through the monitor loop (like
// Restart), so the child list is only ever grown on the supervising
// goroutine; the call blocks until the child's Init has completed (or
// failed) and returns the start outcome. The autonomic control plane
// uses it to spawn replacement replicas into a running fleet.
func (s *Supervisor) StartChild(spec ChildSpec) error {
	if spec.Name == "" {
		return errors.New("supervise: child needs a name")
	}
	req := addReq{spec: spec, reply: make(chan error, 1)}
	s.mu.Lock()
	if !s.serving || s.addQ == nil {
		s.mu.Unlock()
		return errors.New("supervise: not serving")
	}
	select {
	case s.addQ <- req:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		return errors.New("supervise: start queue full")
	}
	return <-req.reply
}

// adopt grows the child list with a dynamic spec and starts it. Runs on
// the supervising goroutine only (via the addQ case of Serve's loop).
func (s *Supervisor) adopt(ctx context.Context, spec ChildSpec) error {
	if s.indexOf(spec.Name) >= 0 {
		return fmt.Errorf("supervise: duplicate child %q", spec.Name)
	}
	s.mu.Lock()
	s.specs = append(s.specs, spec)
	s.kids = append(s.kids, &child{spec: spec})
	idx := len(s.kids) - 1
	s.mu.Unlock()
	if err := s.start(ctx, idx, nil); err != nil {
		s.reportInitFailure(idx, err)
		return err
	}
	return nil
}

// Serve starts the children in order and supervises them until ctx is
// canceled (normal shutdown, returns nil), every child has terminated
// and none is restartable (returns nil), or restart intensity is
// exceeded (stops all children in reverse start order, returns
// ErrEscalated wrapped around the final failure). Serve owns the
// calling goroutine.
func (s *Supervisor) Serve(ctx context.Context) (err error) {
	s.mu.Lock()
	if s.serving {
		s.mu.Unlock()
		return errors.New("supervise: already serving")
	}
	if len(s.specs) == 0 {
		s.mu.Unlock()
		return errors.New("supervise: no children")
	}
	s.serving = true
	s.kids = make([]*child, len(s.specs))
	for i, spec := range s.specs {
		s.kids[i] = &child{spec: spec}
	}
	// Fresh channels per incarnation: a supervisor restarted by its
	// parent must not see its previous life's exits. The exits buffer
	// holds one report per child plus slack for init-failure feedback.
	s.exits = make(chan exit, 2*len(s.specs)+16)
	s.restartQ = make(chan string, len(s.specs)+4)
	s.addQ = make(chan addReq, 4)
	exits, restartQ, addQ := s.exits, s.restartQ, s.addQ
	s.mu.Unlock()
	defer func() {
		// Fail pending StartChild callers instead of leaving them blocked:
		// the queue is drained under the same mutex StartChild enqueues
		// under, so a request is either handled by the loop or refused here.
		s.mu.Lock()
		s.serving = false
		for {
			select {
			case req := <-addQ:
				req.reply <- errors.New("supervise: not serving")
				continue
			default:
			}
			break
		}
		s.addQ = nil
		s.mu.Unlock()
	}()

	// Initial start, in order. A failure during initial start enters the
	// ordinary restart path.
	for i := range s.kids {
		if serr := s.start(ctx, i, nil); serr != nil {
			s.reportInitFailure(i, serr)
		}
	}

	var restartTimes []time.Time
	intensity := s.opts.intensity()

	for {
		select {
		case <-ctx.Done():
			s.stopAll()
			return nil
		case name := <-restartQ:
			idx := s.indexOf(name)
			if idx < 0 {
				continue
			}
			if err := s.handleFailure(ctx, idx, errors.New("supervise: restart requested"), &restartTimes, intensity); err != nil {
				return err
			}
		case req := <-addQ:
			req.reply <- s.adopt(ctx, req.spec)
		case e := <-exits:
			s.mu.Lock()
			c := s.kids[e.child]
			stale := e.gen != c.gen
			if !stale {
				c.running = false
			}
			s.mu.Unlock()
			if stale {
				continue
			}
			if !restartable(c.spec.Restart, e.err) {
				if s.allIdle() {
					return nil
				}
				continue
			}
			if err := s.handleFailure(ctx, e.child, e.err, &restartTimes, intensity); err != nil {
				return err
			}
		}
	}
}

func (s *Supervisor) indexOf(name string) int {
	for i, spec := range s.specs {
		if spec.Name == name {
			return i
		}
	}
	return -1
}

// restartable reports whether a child with the given policy restarts
// after terminating with err.
func restartable(p RestartPolicy, err error) bool {
	switch p {
	case Temporary:
		return false
	case Transient:
		return err != nil
	default: // Permanent
		return true
	}
}

// reportInitFailure feeds an Init failure back to the monitor loop as a
// current-generation exit. The send is non-blocking; the buffer is
// sized so a drop can only happen in a restart storm already headed for
// escalation.
func (s *Supervisor) reportInitFailure(idx int, err error) {
	s.mu.Lock()
	gen := s.kids[idx].gen
	exits := s.exits
	s.mu.Unlock()
	select {
	case exits <- exit{child: idx, gen: gen, err: err}:
	default:
	}
}

// handleFailure applies the strategy to a failed child, tracking
// intensity and escalating when it is exceeded.
func (s *Supervisor) handleFailure(ctx context.Context, idx int, cause error, restartTimes *[]time.Time, intensity Intensity) error {
	if ctx.Err() != nil {
		s.stopAll()
		return nil
	}
	failedAt := time.Now()

	// Intensity window: drop restarts that slid out of the window, then
	// check whether one more would exceed the budget.
	*restartTimes = append(*restartTimes, failedAt)
	cutoff := failedAt.Add(-intensity.Window)
	kept := (*restartTimes)[:0]
	for _, t := range *restartTimes {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	*restartTimes = kept
	if len(*restartTimes) > intensity.MaxRestarts {
		s.stopAll()
		if o := s.opts.Observer; o != nil {
			obs.EmitEscalationRaised(o, s.opts.name(), s.kids[idx].spec.Name)
		}
		return fmt.Errorf("%w: child %q failed %d times in %v: %w",
			ErrEscalated, s.kids[idx].spec.Name, len(*restartTimes), intensity.Window, cause)
	}

	// Strategy: compute the set of children to bounce, in start order.
	var bounce []int
	switch s.opts.Strategy {
	case AllForOne:
		for i := range s.kids {
			bounce = append(bounce, i)
		}
	case RestForOne:
		for i := idx; i < len(s.kids); i++ {
			bounce = append(bounce, i)
		}
	default: // OneForOne
		bounce = []int{idx}
	}

	// Stop the affected siblings in reverse start order (the failed
	// child is already down; stop is a no-op for it).
	for i := len(bounce) - 1; i >= 0; i-- {
		s.stop(bounce[i])
	}
	if s.opts.Backoff > 0 {
		timer := time.NewTimer(s.opts.Backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			s.stopAll()
			return nil
		case <-timer.C:
		}
	}
	// Restart in start order. The failed child's downtime sample runs
	// from its failure to its Init completing.
	for _, i := range bounce {
		downFor := &failedAt
		if i != idx {
			downFor = nil
		}
		if err := s.start(ctx, i, downFor); err != nil {
			s.reportInitFailure(i, err)
		}
	}
	return nil
}

// start Inits child idx and launches its Run goroutine under a fresh
// generation. failedAt, when non-nil, is the failure instant for the
// MTTR sample.
func (s *Supervisor) start(ctx context.Context, idx int, failedAt *time.Time) error {
	c := s.kids[idx]
	s.mu.Lock()
	c.gen++
	gen := c.gen
	exits := s.exits
	s.mu.Unlock()
	if c.spec.Init != nil {
		if err := safeCall(ctx, c.spec.Init); err != nil {
			return fmt.Errorf("supervise: init of %q: %w", c.spec.Name, err)
		}
	}
	if failedAt != nil {
		s.mu.Lock()
		c.restarts++
		restarts := c.restarts
		s.mu.Unlock()
		if o := s.opts.Observer; o != nil {
			obs.EmitProcessRestarted(o, s.opts.name(), c.spec.Name, restarts, time.Since(*failedAt))
		}
	}
	// The run context is detached from the supervisor's: shutdown must
	// reach children one at a time, in reverse start order, through
	// stop() — not all at once when the root context is canceled.
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	done := make(chan struct{})
	s.mu.Lock()
	c.cancel = cancel
	c.done = done
	c.running = true
	s.mu.Unlock()
	go func() {
		defer close(done)
		var err error
		if c.spec.Run != nil {
			err = safeCall(runCtx, c.spec.Run)
		}
		// A cancellation-driven return after the supervisor asked the
		// child to stop is a normal exit, not a failure. The check must
		// precede our own cancel below, which would mask the signal.
		askedToStop := runCtx.Err() != nil
		cancel()
		if err != nil && askedToStop && errors.Is(err, context.Canceled) {
			err = nil
		}
		select {
		case exits <- exit{child: idx, gen: gen, err: err}:
		case <-ctx.Done():
		}
	}()
	return nil
}

// safeCall invokes fn, converting a panic into ErrPanicked.
func safeCall(ctx context.Context, fn func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrPanicked, r, debug.Stack())
		}
	}()
	return fn(ctx)
}

// stop cancels one child, waits for its goroutine to return, and bumps
// its generation so the exit it emitted while stopping reads as stale.
func (s *Supervisor) stop(idx int) {
	s.mu.Lock()
	c := s.kids[idx]
	running, cancel, done := c.running, c.cancel, c.done
	c.running = false
	c.gen++
	s.mu.Unlock()
	if !running || cancel == nil {
		return
	}
	cancel()
	<-done
}

// stopAll stops every child in reverse start order (ordered shutdown:
// later children may depend on earlier ones).
func (s *Supervisor) stopAll() {
	for i := len(s.kids) - 1; i >= 0; i-- {
		s.stop(i)
	}
}

// allIdle reports whether no child goroutine is running.
func (s *Supervisor) allIdle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.kids {
		if c.running {
			return false
		}
	}
	return true
}

// Restarts reports how many times the named child has been restarted.
func (s *Supervisor) Restarts(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.kids {
		if c.spec.Name == name {
			return c.restarts
		}
	}
	return 0
}

// AsChild adapts a supervisor into a ChildSpec so trees nest: the inner
// supervisor serves as a child of the outer one, and an escalation of
// the inner tree surfaces as an ordinary child failure of the outer —
// which then applies its own strategy and intensity.
func (s *Supervisor) AsChild(name string) ChildSpec {
	return ChildSpec{
		Name: name,
		Run:  s.Serve,
	}
}

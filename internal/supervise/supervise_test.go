package supervise

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// leakCheck fails the test if goroutines grew across it (a stuck child
// or monitor would show up here).
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
	})
}

// blockUntilCanceled is a well-behaved child body.
func blockUntilCanceled(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// serveAsync runs Serve in a goroutine and returns a result channel.
func serveAsync(ctx context.Context, s *Supervisor) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- s.Serve(ctx) }()
	return ch
}

func waitServeDone(t *testing.T, ch <-chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
		return nil
	}
}

func TestOneForOneRestartsOnlyFailedChild(t *testing.T) {
	leakCheck(t)
	var aStarts, bStarts atomic.Int32
	var fail atomic.Bool
	fail.Store(true)
	s := New(Options{Strategy: OneForOne, Intensity: Intensity{MaxRestarts: 5, Window: time.Minute}})
	if err := s.Add(ChildSpec{
		Name: "a",
		Init: func(context.Context) error { aStarts.Add(1); return nil },
		Run:  blockUntilCanceled,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(ChildSpec{
		Name: "b",
		Init: func(context.Context) error { bStarts.Add(1); return nil },
		Run: func(ctx context.Context) error {
			if fail.CompareAndSwap(true, false) {
				return errors.New("one-shot failure")
			}
			return blockUntilCanceled(ctx)
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, s)
	waitFor(t, func() bool { return s.Restarts("b") == 1 })
	cancel()
	if err := waitServeDone(t, ch); err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if got := aStarts.Load(); got != 1 {
		t.Errorf("a started %d times, want 1 (one_for_one must not bounce siblings)", got)
	}
	if got := bStarts.Load(); got != 2 {
		t.Errorf("b started %d times, want 2", got)
	}
}

func TestRestForOneBouncesLaterSiblings(t *testing.T) {
	leakCheck(t)
	starts := make(map[string]*atomic.Int32)
	for _, n := range []string{"a", "b", "c"} {
		starts[n] = &atomic.Int32{}
	}
	var fail atomic.Bool
	fail.Store(true)
	s := New(Options{Strategy: RestForOne, Intensity: Intensity{MaxRestarts: 5, Window: time.Minute}})
	mk := func(name string, failing bool) ChildSpec {
		return ChildSpec{
			Name: name,
			Init: func(context.Context) error { starts[name].Add(1); return nil },
			Run: func(ctx context.Context) error {
				if failing && fail.CompareAndSwap(true, false) {
					return errors.New("boom")
				}
				return blockUntilCanceled(ctx)
			},
		}
	}
	for _, c := range []ChildSpec{mk("a", false), mk("b", true), mk("c", false)} {
		if err := s.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, s)
	waitFor(t, func() bool { return starts["c"].Load() == 2 })
	cancel()
	if err := waitServeDone(t, ch); err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if starts["a"].Load() != 1 {
		t.Errorf("a started %d times, want 1 (earlier sibling must stay up)", starts["a"].Load())
	}
	if starts["b"].Load() != 2 || starts["c"].Load() != 2 {
		t.Errorf("b=%d c=%d starts, want 2 and 2", starts["b"].Load(), starts["c"].Load())
	}
}

func TestAllForOneBouncesEveryone(t *testing.T) {
	leakCheck(t)
	var aStarts atomic.Int32
	var fail atomic.Bool
	fail.Store(true)
	s := New(Options{Strategy: AllForOne, Intensity: Intensity{MaxRestarts: 5, Window: time.Minute}})
	if err := s.Add(ChildSpec{
		Name: "a",
		Init: func(context.Context) error { aStarts.Add(1); return nil },
		Run:  blockUntilCanceled,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(ChildSpec{
		Name: "b",
		Run: func(ctx context.Context) error {
			if fail.CompareAndSwap(true, false) {
				return errors.New("boom")
			}
			return blockUntilCanceled(ctx)
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, s)
	waitFor(t, func() bool { return aStarts.Load() == 2 })
	cancel()
	if err := waitServeDone(t, ch); err != nil {
		t.Fatalf("Serve = %v", err)
	}
}

func TestPanicIsCapturedAndRestarted(t *testing.T) {
	leakCheck(t)
	var runs atomic.Int32
	s := New(Options{Intensity: Intensity{MaxRestarts: 5, Window: time.Minute}})
	if err := s.Add(ChildSpec{
		Name: "panicky",
		Run: func(ctx context.Context) error {
			if runs.Add(1) == 1 {
				panic("kaboom")
			}
			return blockUntilCanceled(ctx)
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, s)
	waitFor(t, func() bool { return s.Restarts("panicky") == 1 })
	cancel()
	if err := waitServeDone(t, ch); err != nil {
		t.Fatalf("a panicking child must be restarted, not crash Serve: %v", err)
	}
}

func TestIntensityEscalates(t *testing.T) {
	leakCheck(t)
	c := obs.NewCollector()
	s := New(Options{
		Name:      "sup",
		Intensity: Intensity{MaxRestarts: 2, Window: time.Minute},
		Observer:  c,
	})
	if err := s.Add(ChildSpec{
		Name: "hopeless",
		Run:  func(context.Context) error { return errors.New("always fails") },
	}); err != nil {
		t.Fatal(err)
	}
	err := s.Serve(context.Background())
	if !errors.Is(err, ErrEscalated) {
		t.Fatalf("Serve = %v, want ErrEscalated", err)
	}
	var snap obs.ExecutorSnapshot
	for _, e := range c.Snapshot() {
		if e.Executor == "sup" {
			snap = e
		}
	}
	if snap.Escalations != 1 {
		t.Errorf("Escalations = %d, want 1", snap.Escalations)
	}
	if snap.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2 (budget before escalation)", snap.Restarts)
	}
	if snap.MTTR.Count != 2 {
		t.Errorf("MTTR samples = %d, want 2", snap.MTTR.Count)
	}
}

func TestTransientChildNormalExitNotRestarted(t *testing.T) {
	leakCheck(t)
	var runs atomic.Int32
	s := New(Options{})
	if err := s.Add(ChildSpec{
		Name:    "batch",
		Restart: Transient,
		Run:     func(context.Context) error { runs.Add(1); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(context.Background()); err != nil {
		t.Fatalf("Serve = %v; all children idle should end supervision", err)
	}
	if runs.Load() != 1 {
		t.Errorf("runs = %d, want 1", runs.Load())
	}
}

func TestTemporaryChildFailureNotRestarted(t *testing.T) {
	leakCheck(t)
	var runs atomic.Int32
	s := New(Options{})
	if err := s.Add(ChildSpec{
		Name:    "oneshot",
		Restart: Temporary,
		Run:     func(context.Context) error { runs.Add(1); return errors.New("dies once") },
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(context.Background()); err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if runs.Load() != 1 {
		t.Errorf("runs = %d, want 1 (temporary children never restart)", runs.Load())
	}
}

func TestOrderedShutdownReverseStartOrder(t *testing.T) {
	leakCheck(t)
	var mu sync.Mutex
	var stops []string
	mk := func(name string) ChildSpec {
		return ChildSpec{
			Name: name,
			Run: func(ctx context.Context) error {
				<-ctx.Done()
				mu.Lock()
				stops = append(stops, name)
				mu.Unlock()
				return ctx.Err()
			},
		}
	}
	s := New(Options{})
	for _, n := range []string{"first", "second", "third"} {
		if err := s.Add(mk(n)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, s)
	waitFor(t, func() bool { return !s.allIdle() })
	time.Sleep(20 * time.Millisecond) // let all three children block
	cancel()
	if err := waitServeDone(t, ch); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stops) != 3 || stops[0] != "third" || stops[2] != "first" {
		t.Errorf("stop order = %v, want [third second first]", stops)
	}
}

func TestProgrammaticRestart(t *testing.T) {
	leakCheck(t)
	var inits atomic.Int32
	s := New(Options{Intensity: Intensity{MaxRestarts: 5, Window: time.Minute}})
	if err := s.Add(ChildSpec{
		Name: "worker",
		Init: func(context.Context) error { inits.Add(1); return nil },
		Run:  blockUntilCanceled,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, s)
	waitFor(t, func() bool { return inits.Load() == 1 })
	if err := s.Restart("worker"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Restarts("worker") == 1 })
	if err := s.Restart("nobody"); err == nil {
		t.Error("Restart of unknown child should fail")
	}
	cancel()
	if err := waitServeDone(t, ch); err != nil {
		t.Fatal(err)
	}
	if inits.Load() != 2 {
		t.Errorf("inits = %d, want 2", inits.Load())
	}
}

func TestInitFailureCountsTowardEscalation(t *testing.T) {
	leakCheck(t)
	s := New(Options{Intensity: Intensity{MaxRestarts: 1, Window: time.Minute}})
	if err := s.Add(ChildSpec{
		Name: "wontinit",
		Init: func(context.Context) error { return errors.New("cannot init") },
		Run:  blockUntilCanceled,
	}); err != nil {
		t.Fatal(err)
	}
	err := s.Serve(context.Background())
	if !errors.Is(err, ErrEscalated) {
		t.Fatalf("Serve = %v, want ErrEscalated", err)
	}
}

func TestNestedSupervisorEscalationIsChildFailure(t *testing.T) {
	leakCheck(t)
	inner := New(Options{Name: "inner", Intensity: Intensity{MaxRestarts: 1, Window: time.Minute}})
	if err := inner.Add(ChildSpec{
		Name: "hopeless",
		Run:  func(context.Context) error { return errors.New("always fails") },
	}); err != nil {
		t.Fatal(err)
	}
	outer := New(Options{Name: "outer", Intensity: Intensity{MaxRestarts: 2, Window: time.Minute}})
	if err := outer.Add(inner.AsChild("inner-tree")); err != nil {
		t.Fatal(err)
	}
	// The inner tree escalates repeatedly; the outer tree restarts it
	// until its own intensity is exceeded, then escalates itself.
	err := outer.Serve(context.Background())
	if !errors.Is(err, ErrEscalated) {
		t.Fatalf("outer Serve = %v, want ErrEscalated", err)
	}
	if outer.Restarts("inner-tree") != 2 {
		t.Errorf("inner tree restarted %d times by outer, want 2", outer.Restarts("inner-tree"))
	}
}

func TestAddValidation(t *testing.T) {
	s := New(Options{})
	if err := s.Add(ChildSpec{}); err == nil {
		t.Error("nameless child should be rejected")
	}
	if err := s.Add(ChildSpec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(ChildSpec{Name: "x"}); err == nil {
		t.Error("duplicate child should be rejected")
	}
	if err := New(Options{}).Serve(context.Background()); err == nil {
		t.Error("empty supervisor should refuse to serve")
	}
}

func TestRestartWindowSlides(t *testing.T) {
	leakCheck(t)
	// With a very short window, repeated failures spaced wider than the
	// window must never escalate.
	var runs atomic.Int32
	s := New(Options{Intensity: Intensity{MaxRestarts: 1, Window: 10 * time.Millisecond}})
	if err := s.Add(ChildSpec{
		Name: "slow-failer",
		Run: func(ctx context.Context) error {
			if runs.Add(1) >= 4 {
				return blockUntilCanceled(ctx)
			}
			time.Sleep(25 * time.Millisecond) // wider than the window
			return errors.New("spaced failure")
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, s)
	waitFor(t, func() bool { return runs.Load() >= 4 })
	cancel()
	if err := waitServeDone(t, ch); err != nil {
		t.Fatalf("Serve = %v; spaced failures must not escalate", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestStrategyAndPolicyStrings(t *testing.T) {
	for want, s := range map[string]Strategy{
		"one_for_one":  OneForOne,
		"rest_for_one": RestForOne,
		"all_for_one":  AllForOne,
	} {
		if s.String() != want {
			t.Errorf("String() = %q, want %q", s.String(), want)
		}
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should still format")
	}
}

func TestServeTwiceSequentially(t *testing.T) {
	leakCheck(t)
	var runs atomic.Int32
	s := New(Options{})
	if err := s.Add(ChildSpec{
		Name:    "job",
		Restart: Transient,
		Run:     func(context.Context) error { runs.Add(1); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Serve(context.Background()); err != nil {
			t.Fatalf("Serve #%d = %v", i+1, err)
		}
	}
	if runs.Load() != 2 {
		t.Errorf("runs = %d, want 2 (Serve must be re-callable)", runs.Load())
	}
}

func ExampleSupervisor() {
	s := New(Options{Name: "example"})
	_ = s.Add(ChildSpec{
		Name:    "greeter",
		Restart: Transient,
		Run: func(context.Context) error {
			fmt.Println("hello from a supervised child")
			return nil
		},
	})
	_ = s.Serve(context.Background())
	// Output: hello from a supervised child
}

package selfcheck

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

func impl(name string, v int, fail bool) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
		if fail {
			return 0, errors.New(name + " crashed")
		}
		return v, nil
	})
}

func acceptAll(_ int, _ int) error { return nil }

func mustWithTest(t *testing.T, v core.Variant[int, int], test core.AcceptanceTest[int, int]) Component[int, int] {
	t.Helper()
	c, err := WithTest(v, test)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTestedComponentPassesAndFails(t *testing.T) {
	good := mustWithTest(t, impl("good", 42, false), func(_ int, out int) error {
		if out != 42 {
			return core.ErrNotAccepted
		}
		return nil
	})
	if got, err := good.Run(context.Background(), 0); err != nil || got != 42 {
		t.Errorf("= (%d, %v)", got, err)
	}

	bad := mustWithTest(t, impl("bad", 13, false), func(_ int, out int) error {
		if out != 42 {
			return core.ErrNotAccepted
		}
		return nil
	})
	if _, err := bad.Run(context.Background(), 0); !errors.Is(err, core.ErrNotAccepted) {
		t.Errorf("err = %v, want ErrNotAccepted", err)
	}
}

func TestTestedComponentPropagatesCrash(t *testing.T) {
	c := mustWithTest(t, impl("crash", 0, true), acceptAll)
	if _, err := c.Run(context.Background(), 0); err == nil {
		t.Error("want error from crashing implementation")
	}
}

func TestPairAgreement(t *testing.T) {
	c, err := Pair(impl("a", 7, false), impl("b", 7, false), core.EqualOf[int]())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "a+b" {
		t.Errorf("Name = %q", c.Name())
	}
	got, err := c.Run(context.Background(), 0)
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v)", got, err)
	}
}

func TestPairDivergenceDetected(t *testing.T) {
	c, err := Pair(impl("a", 7, false), impl("b", 8, false), core.EqualOf[int]())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), 0); !errors.Is(err, core.ErrDivergence) {
		t.Errorf("err = %v, want ErrDivergence", err)
	}
}

func TestPairHalfCrashDetected(t *testing.T) {
	c, err := Pair(impl("a", 7, true), impl("b", 7, false), core.EqualOf[int]())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), 0); err == nil {
		t.Error("want error when one half crashes")
	}
}

func TestComponentConstructorValidation(t *testing.T) {
	if _, err := WithTest[int, int](nil, acceptAll); err == nil {
		t.Error("nil impl: want error")
	}
	if _, err := WithTest(impl("a", 1, false), nil); err == nil {
		t.Error("nil test: want error")
	}
	if _, err := Pair[int, int](nil, impl("b", 1, false), core.EqualOf[int]()); err == nil {
		t.Error("nil half: want error")
	}
	if _, err := Pair(impl("a", 1, false), impl("b", 1, false), nil); err == nil {
		t.Error("nil eq: want error")
	}
}

func TestSystemActingResultPreferred(t *testing.T) {
	sys, err := NewSystem([]Component[int, int]{
		mustWithTest(t, impl("acting", 1, false), acceptAll),
		mustWithTest(t, impl("spare", 2, false), acceptAll),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Execute(context.Background(), 0)
	if err != nil || got != 1 {
		t.Errorf("= (%d, %v), want acting result 1", got, err)
	}
	if sys.Acting() != "acting" {
		t.Errorf("Acting = %q", sys.Acting())
	}
}

func TestSystemHotSparePromotion(t *testing.T) {
	var m core.Metrics
	sys, err := NewSystem([]Component[int, int]{
		mustWithTest(t, impl("acting", 0, true), acceptAll),
		mustWithTest(t, impl("spare1", 2, false), acceptAll),
		mustWithTest(t, impl("spare2", 3, false), acceptAll),
	}, WithMetrics[int, int](&m))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Execute(context.Background(), 0)
	if err != nil || got != 2 {
		t.Errorf("= (%d, %v), want promoted spare1 result", got, err)
	}
	if sys.Acting() != "spare1" {
		t.Errorf("Acting after promotion = %q, want spare1", sys.Acting())
	}
	d := sys.Discarded()
	if len(d) != 1 || d[0] != "acting" {
		t.Errorf("Discarded = %v", d)
	}
	s := m.Snapshot()
	if s.FailuresDetected != 1 || s.FailuresMasked != 1 || s.Failures != 0 {
		t.Errorf("metrics = %+v", s)
	}
}

func TestSystemDiscardedComponentNoLongerRuns(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	counting := func(name string, fail bool) Component[int, int] {
		c, err := WithTest(core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
			mu.Lock()
			calls[name]++
			mu.Unlock()
			if fail {
				return 0, errors.New("x")
			}
			return 1, nil
		}), acceptAll)
		if err != nil {
			panic(err)
		}
		return c
	}
	sys, err := NewSystem([]Component[int, int]{
		counting("flaky", true),
		counting("steady", false),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sys.Execute(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
	}
	if calls["flaky"] != 1 {
		t.Errorf("discarded component executed %d times, want 1", calls["flaky"])
	}
	if calls["steady"] != 3 {
		t.Errorf("steady executed %d times, want 3", calls["steady"])
	}
}

func TestSystemRedundancyExhaustion(t *testing.T) {
	var m core.Metrics
	sys, err := NewSystem([]Component[int, int]{
		mustWithTest(t, impl("a", 0, true), acceptAll),
	}, WithMetrics[int, int](&m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(context.Background(), 0); !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := sys.Execute(context.Background(), 0); !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("exhausted system: err = %v", err)
	}
	if sys.Acting() != "" {
		t.Errorf("Acting = %q, want empty", sys.Acting())
	}
	if s := m.Snapshot(); s.Failures != 2 {
		t.Errorf("failures = %d", s.Failures)
	}
}

func TestSystemMixedComponentKinds(t *testing.T) {
	pair, err := Pair(impl("p1", 9, false), impl("p2", 9, false), core.EqualOf[int]())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem([]Component[int, int]{
		mustWithTest(t, impl("tested", 0, true), acceptAll),
		pair,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Execute(context.Background(), 0)
	if err != nil || got != 9 {
		t.Errorf("= (%d, %v), want pair result 9", got, err)
	}
}

func TestNewSystemEmpty(t *testing.T) {
	if _, err := NewSystem[int, int](nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
}

// Package selfcheck implements self-checking programming (Laprie et al.):
// each functionality is delivered by self-checking components that are
// executed in parallel. A self-checking component is either an
// implementation with a built-in acceptance test (an explicit
// adjudicator) or a pair of independently designed implementations with a
// final comparison (an implicit adjudicator). At runtime one component is
// "acting" while the others are "hot spares"; when the acting component
// fails its own check, it is discarded and the highest-priority healthy
// spare is promoted, with no rollback needed because the spares computed
// the result in parallel.
//
// Taxonomy position (paper Table 2): deliberate intention, code
// redundancy, reactive explicit-or-implicit adjudicator, development
// faults. Architectural pattern: parallel selection (Figure 1b).
package selfcheck

import (
	"context"
	"fmt"
	"sync"

	"github.com/softwarefaults/redundancy/internal/core"
)

// Component is a self-checking component: it computes a result and judges
// its own correctness.
type Component[I, O any] interface {
	// Name identifies the component.
	Name() string
	// Run computes the result and applies the component's built-in
	// check. A non-nil error means the component detected its own
	// failure.
	Run(ctx context.Context, input I) (O, error)
}

// testedComponent is an implementation guarded by a built-in acceptance
// test (explicit adjudicator).
type testedComponent[I, O any] struct {
	impl core.Variant[I, O]
	test core.AcceptanceTest[I, O]
}

var _ Component[int, int] = (*testedComponent[int, int])(nil)

// WithTest builds a self-checking component from an implementation and a
// built-in acceptance test.
func WithTest[I, O any](impl core.Variant[I, O], test core.AcceptanceTest[I, O]) (Component[I, O], error) {
	if impl == nil {
		return nil, core.ErrNoVariants
	}
	if test == nil {
		return nil, fmt.Errorf("selfcheck: nil acceptance test")
	}
	return &testedComponent[I, O]{impl: impl, test: test}, nil
}

func (c *testedComponent[I, O]) Name() string { return c.impl.Name() }

func (c *testedComponent[I, O]) Run(ctx context.Context, input I) (O, error) {
	var zero O
	out, err := c.impl.Execute(ctx, input)
	if err != nil {
		return zero, err
	}
	if err := c.test(input, out); err != nil {
		return zero, fmt.Errorf("built-in test of %s: %w", c.impl.Name(), err)
	}
	return out, nil
}

// pairComponent is a pair of independently designed implementations with
// a final comparison (implicit adjudicator).
type pairComponent[I, O any] struct {
	a, b core.Variant[I, O]
	eq   core.Equal[O]
}

var _ Component[int, int] = (*pairComponent[int, int])(nil)

// Pair builds a self-checking component from two independently designed
// implementations whose results are compared with eq.
func Pair[I, O any](a, b core.Variant[I, O], eq core.Equal[O]) (Component[I, O], error) {
	if a == nil || b == nil {
		return nil, core.ErrNoVariants
	}
	if eq == nil {
		return nil, fmt.Errorf("selfcheck: nil equality")
	}
	return &pairComponent[I, O]{a: a, b: b, eq: eq}, nil
}

func (c *pairComponent[I, O]) Name() string {
	return c.a.Name() + "+" + c.b.Name()
}

func (c *pairComponent[I, O]) Run(ctx context.Context, input I) (O, error) {
	var zero O
	var (
		wg         sync.WaitGroup
		outA, outB O
		errA, errB error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		outA, errA = c.a.Execute(ctx, input)
	}()
	go func() {
		defer wg.Done()
		outB, errB = c.b.Execute(ctx, input)
	}()
	wg.Wait()
	if errA != nil {
		return zero, fmt.Errorf("half %s: %w", c.a.Name(), errA)
	}
	if errB != nil {
		return zero, fmt.Errorf("half %s: %w", c.b.Name(), errB)
	}
	if !c.eq(outA, outB) {
		return zero, fmt.Errorf("pair %s: %w", c.Name(), core.ErrDivergence)
	}
	return outA, nil
}

// System executes self-checking components in parallel with hot-spare
// promotion: the first configured healthy component is the acting one;
// components whose self-check fails are discarded permanently, consuming
// the initial redundancy, as the paper notes for deliberate code
// redundancy.
type System[I, O any] struct {
	metrics *core.Metrics

	mu         sync.Mutex
	components []Component[I, O]
	discarded  map[string]bool
}

var _ core.Executor[int, int] = (*System[int, int])(nil)

// Option configures a System.
type Option[I, O any] func(*System[I, O])

// WithMetrics attaches a metrics collector.
func WithMetrics[I, O any](m *core.Metrics) Option[I, O] {
	return func(s *System[I, O]) { s.metrics = m }
}

// NewSystem builds a self-checking system; the first component acts, the
// rest are hot spares in promotion order.
func NewSystem[I, O any](components []Component[I, O], opts ...Option[I, O]) (*System[I, O], error) {
	if len(components) == 0 {
		return nil, core.ErrNoVariants
	}
	cs := make([]Component[I, O], len(components))
	copy(cs, components)
	s := &System[I, O]{
		components: cs,
		discarded:  make(map[string]bool),
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Acting returns the name of the current acting component, or "" if all
// components have been discarded.
func (s *System[I, O]) Acting() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.components {
		if !s.discarded[c.Name()] {
			return c.Name()
		}
	}
	return ""
}

// Discarded returns the names of discarded components in configuration
// order.
func (s *System[I, O]) Discarded() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for _, c := range s.components {
		if s.discarded[c.Name()] {
			names = append(names, c.Name())
		}
	}
	return names
}

// Execute implements core.Executor: all healthy components run in
// parallel; the acting component's result is delivered if its self-check
// passes, otherwise the component is discarded and the next healthy
// spare's result is delivered, and so on.
func (s *System[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O

	s.mu.Lock()
	var live []Component[I, O]
	for _, c := range s.components {
		if !s.discarded[c.Name()] {
			live = append(live, c)
		}
	}
	s.mu.Unlock()

	if s.metrics != nil {
		s.metrics.RecordRequest()
		s.metrics.RecordVariantExecutions(len(live))
	}
	if len(live) == 0 {
		if s.metrics != nil {
			s.metrics.RecordFailure()
		}
		return zero, fmt.Errorf("all self-checking components discarded: %w", core.ErrAllVariantsFailed)
	}

	type outcome struct {
		value O
		err   error
	}
	outcomes := make([]outcome, len(live))
	var wg sync.WaitGroup
	for i, c := range live {
		wg.Add(1)
		go func(i int, c Component[I, O]) {
			defer wg.Done()
			v, err := c.Run(ctx, input)
			outcomes[i] = outcome{value: v, err: err}
		}(i, c)
	}
	wg.Wait()

	delivered := false
	var value O
	failures := 0
	for i, c := range live {
		if outcomes[i].err != nil {
			failures++
			s.discard(c.Name())
			continue
		}
		if !delivered {
			delivered = true
			value = outcomes[i].value
		}
	}

	if s.metrics != nil {
		if failures > 0 {
			s.metrics.RecordFailureDetected()
		}
		switch {
		case !delivered:
			s.metrics.RecordFailure()
		case failures > 0:
			s.metrics.RecordFailureMasked()
		}
	}
	if !delivered {
		return zero, core.ErrAllVariantsFailed
	}
	return value, nil
}

func (s *System[I, O]) discard(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.discarded[name] = true
}

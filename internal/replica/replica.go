// Package replica implements process replicas / N-variant systems for
// security (Cox, Evans et al.; refined by Bruschi et al.): the same
// program executes in N automatically generated variants with disjoint
// address-space partitions and variant-specific instruction tags. All
// variants receive the same input and a monitor compares their behavior.
//
// Benign requests use relative addresses and properly re-tagged program
// code, so all variants behave identically. An attack, by contrast, must
// embed concrete artifacts in its payload:
//
//   - a memory attack referencing an absolute address is valid in at most
//     one variant's partition and traps in the others;
//   - injected code carries at most one variant's instruction tag and
//     traps in all variants whose tag differs.
//
// Either way the variants diverge, and the monitor detects the attack
// without any secret: the framework is "secretless" because safety rests
// on the impossibility of a single payload satisfying all variants at
// once.
//
// Taxonomy position (paper Table 2): deliberate intention, environment
// redundancy (with code redundancy for tagging), reactive implicit
// adjudicator, malicious faults.
package replica

import (
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
)

// Sentinel errors reported by replicas and the monitor.
var (
	// ErrSegfault reports an access outside the replica's partition.
	ErrSegfault = errors.New("replica: segmentation fault")
	// ErrIllegalInstruction reports executing code whose tag does not
	// match the replica's tag.
	ErrIllegalInstruction = errors.New("replica: illegal instruction (tag mismatch)")
	// ErrAttackDetected reports behavioral divergence among replicas.
	ErrAttackDetected = errors.New("replica: attack detected (replica divergence)")
)

// OpKind is the kind of operation a request performs.
type OpKind int

const (
	// OpRead reads one word of memory.
	OpRead OpKind = iota + 1
	// OpWrite writes one word of memory.
	OpWrite
	// OpExec executes a code sequence.
	OpExec
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpExec:
		return "exec"
	default:
		return "unknown"
	}
}

// Instruction is one unit of executable code. Legitimate program code is
// re-tagged per variant by the loader; injected code carries whatever
// fixed tag the attacker guessed.
type Instruction struct {
	// Tag is the variant tag stamped on the instruction. The zero tag
	// never matches a variant.
	Tag byte
	// Op is the mnemonic (uninterpreted by the simulation).
	Op string
}

// Request is one input delivered identically to all replicas.
type Request struct {
	// Op selects the operation.
	Op OpKind
	// Addr is the target address of OpRead/OpWrite. When Absolute is
	// false it is an offset within the replica's partition (the benign
	// case); when true it is an absolute address (the exploit case).
	Addr uint64
	// Absolute marks Addr as an absolute address.
	Absolute bool
	// Value is the word written by OpWrite.
	Value uint64
	// Code is the sequence executed by OpExec. When Trusted is true the
	// loader re-tags each instruction for the executing variant
	// (legitimate program code); untrusted code keeps its embedded tags
	// (injected payloads).
	Code []Instruction
	// Trusted marks Code as legitimate, re-taggable program code.
	Trusted bool
}

// Process is one replica: a simulated process with its own address-space
// partition and instruction tag.
type Process struct {
	name string
	base uint64
	size uint64
	tag  byte
	mem  map[uint64]uint64
}

// NewProcess creates a replica with partition [base, base+size) and the
// given instruction tag.
func NewProcess(name string, base, size uint64, tag byte) (*Process, error) {
	if size == 0 {
		return nil, errors.New("replica: zero partition size")
	}
	if tag == 0 {
		return nil, errors.New("replica: zero tag is reserved")
	}
	return &Process{
		name: name,
		base: base,
		size: size,
		tag:  tag,
		mem:  make(map[uint64]uint64),
	}, nil
}

// Name returns the replica's name.
func (p *Process) Name() string { return p.name }

// Base returns the partition base address.
func (p *Process) Base() uint64 { return p.base }

// Tag returns the replica's instruction tag.
func (p *Process) Tag() byte { return p.tag }

// resolve maps a request address into the replica's partition, trapping
// on out-of-partition accesses.
func (p *Process) resolve(addr uint64, absolute bool) (uint64, error) {
	if absolute {
		if addr < p.base || addr >= p.base+p.size {
			return 0, fmt.Errorf("absolute address %#x outside partition [%#x, %#x): %w",
				addr, p.base, p.base+p.size, ErrSegfault)
		}
		return addr, nil
	}
	if addr >= p.size {
		return 0, fmt.Errorf("offset %#x beyond partition size %#x: %w", addr, p.size, ErrSegfault)
	}
	return p.base + addr, nil
}

// Handle executes one request and returns the replica's observable
// response (the read/written value, or the number of executed
// instructions for OpExec).
func (p *Process) Handle(req Request) (uint64, error) {
	switch req.Op {
	case OpRead:
		a, err := p.resolve(req.Addr, req.Absolute)
		if err != nil {
			return 0, err
		}
		return p.mem[a], nil
	case OpWrite:
		a, err := p.resolve(req.Addr, req.Absolute)
		if err != nil {
			return 0, err
		}
		p.mem[a] = req.Value
		return req.Value, nil
	case OpExec:
		for i, instr := range req.Code {
			tag := instr.Tag
			if req.Trusted {
				// The loader re-tags legitimate code per variant.
				tag = p.tag
			}
			if tag != p.tag {
				return 0, fmt.Errorf("instruction %d (%s) tagged %#x, variant requires %#x: %w",
					i, instr.Op, instr.Tag, p.tag, ErrIllegalInstruction)
			}
		}
		return uint64(len(req.Code)), nil
	default:
		return 0, fmt.Errorf("replica: unknown op %d", req.Op)
	}
}

// System is the monitor plus N replicas with disjoint partitions and
// distinct tags.
type System struct {
	procs   []*Process
	metrics *core.Metrics
}

// NewSystem creates n replicas, each with a partition of the given size.
// Partitions are disjoint by construction (replica i occupies
// [(i+1)<<32, (i+1)<<32 + size)) and tags are 1..n.
func NewSystem(n int, size uint64) (*System, error) {
	if n < 2 {
		return nil, errors.New("replica: need at least 2 variants for detection")
	}
	if n > 255 {
		return nil, errors.New("replica: at most 255 variants (one byte of tag space)")
	}
	procs := make([]*Process, n)
	for i := range procs {
		p, err := NewProcess(fmt.Sprintf("variant-%d", i+1), uint64(i+1)<<32, size, byte(i+1))
		if err != nil {
			return nil, err
		}
		procs[i] = p
	}
	return &System{procs: procs}, nil
}

// SetMetrics attaches a metrics collector.
func (s *System) SetMetrics(m *core.Metrics) { s.metrics = m }

// N returns the number of replicas.
func (s *System) N() int { return len(s.procs) }

// Process returns replica i (for constructing targeted attack payloads in
// experiments).
func (s *System) Process(i int) *Process { return s.procs[i] }

// Execute delivers the request to every replica and compares behavior.
// If all replicas agree (same value, or same error class) the common
// outcome is returned; any divergence is reported as ErrAttackDetected.
func (s *System) Execute(req Request) (uint64, error) {
	if s.metrics != nil {
		s.metrics.RecordRequest()
		s.metrics.RecordVariantExecutions(len(s.procs))
	}
	values := make([]uint64, len(s.procs))
	errs := make([]error, len(s.procs))
	for i, p := range s.procs {
		values[i], errs[i] = p.Handle(req)
	}

	diverged := false
	for i := 1; i < len(s.procs); i++ {
		if (errs[i] == nil) != (errs[0] == nil) {
			diverged = true
			break
		}
		if errs[i] == nil && values[i] != values[0] {
			diverged = true
			break
		}
		if errs[i] != nil && !sameErrClass(errs[i], errs[0]) {
			diverged = true
			break
		}
	}
	if diverged {
		if s.metrics != nil {
			s.metrics.RecordFailureDetected()
			s.metrics.RecordFailure()
		}
		return 0, fmt.Errorf("replica responses diverged: %w", ErrAttackDetected)
	}
	if errs[0] != nil {
		// A unanimous trap is still suspicious for untrusted code (the
		// attacker guessed no valid tag at all), but it cannot be a
		// successful attack; report it as the common error.
		if s.metrics != nil {
			s.metrics.RecordFailureDetected()
			s.metrics.RecordFailure()
		}
		return 0, errs[0]
	}
	return values[0], nil
}

// sameErrClass groups errors by sentinel so that unanimous traps of the
// same kind do not count as divergence.
func sameErrClass(a, b error) bool {
	switch {
	case errors.Is(a, ErrSegfault):
		return errors.Is(b, ErrSegfault)
	case errors.Is(a, ErrIllegalInstruction):
		return errors.Is(b, ErrIllegalInstruction)
	default:
		return errors.Is(b, a) || errors.Is(a, b) || a.Error() == b.Error()
	}
}

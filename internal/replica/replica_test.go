package replica

import (
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

func newSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(n, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBenignReadWrite(t *testing.T) {
	s := newSystem(t, 3)
	v, err := s.Execute(Request{Op: OpWrite, Addr: 0x100, Value: 42})
	if err != nil || v != 42 {
		t.Fatalf("write = (%d, %v)", v, err)
	}
	v, err = s.Execute(Request{Op: OpRead, Addr: 0x100})
	if err != nil || v != 42 {
		t.Errorf("read = (%d, %v), want (42, nil)", v, err)
	}
}

func TestBenignTrustedCodeExecutes(t *testing.T) {
	s := newSystem(t, 3)
	code := []Instruction{{Op: "mov"}, {Op: "add"}, {Op: "ret"}}
	v, err := s.Execute(Request{Op: OpExec, Code: code, Trusted: true})
	if err != nil || v != 3 {
		t.Errorf("exec = (%d, %v), want (3, nil)", v, err)
	}
}

func TestAbsoluteAddressAttackDetected(t *testing.T) {
	var m core.Metrics
	s := newSystem(t, 3)
	s.SetMetrics(&m)
	// Attacker hardcodes an address inside variant-1's partition.
	target := s.Process(0).Base() + 0x10
	_, err := s.Execute(Request{Op: OpWrite, Addr: target, Absolute: true, Value: 0xbad})
	if !errors.Is(err, ErrAttackDetected) {
		t.Errorf("err = %v, want ErrAttackDetected", err)
	}
	if snap := m.Snapshot(); snap.FailuresDetected != 1 {
		t.Errorf("metrics = %+v", snap)
	}
}

func TestAbsoluteAddressOutsideAllPartitionsIsUnanimousTrap(t *testing.T) {
	s := newSystem(t, 3)
	// An address in no variant's partition traps everywhere: a plain
	// fault, not divergence.
	_, err := s.Execute(Request{Op: OpRead, Addr: 0x10, Absolute: true})
	if !errors.Is(err, ErrSegfault) {
		t.Errorf("err = %v, want unanimous ErrSegfault", err)
	}
	if errors.Is(err, ErrAttackDetected) {
		t.Error("unanimous trap must not be classified as divergence")
	}
}

func TestCodeInjectionDetected(t *testing.T) {
	s := newSystem(t, 3)
	// The attacker can stamp the payload with at most one variant's tag.
	payload := []Instruction{{Tag: s.Process(1).Tag(), Op: "shellcode"}}
	_, err := s.Execute(Request{Op: OpExec, Code: payload})
	if !errors.Is(err, ErrAttackDetected) {
		t.Errorf("err = %v, want ErrAttackDetected", err)
	}
}

func TestUntaggedInjectionTrapsEverywhere(t *testing.T) {
	s := newSystem(t, 3)
	payload := []Instruction{{Op: "shellcode"}} // zero tag matches nobody
	_, err := s.Execute(Request{Op: OpExec, Code: payload})
	if !errors.Is(err, ErrIllegalInstruction) {
		t.Errorf("err = %v, want unanimous ErrIllegalInstruction", err)
	}
	if errors.Is(err, ErrAttackDetected) {
		t.Error("unanimous trap must not be classified as divergence")
	}
}

func TestRelativeOverflowTrapsUniformly(t *testing.T) {
	s := newSystem(t, 2)
	_, err := s.Execute(Request{Op: OpRead, Addr: 1 << 20}) // beyond size
	if !errors.Is(err, ErrSegfault) {
		t.Errorf("err = %v, want ErrSegfault", err)
	}
	if errors.Is(err, ErrAttackDetected) {
		t.Error("uniform out-of-bounds should not look like an attack")
	}
}

func TestBenignWorkloadNoFalsePositives(t *testing.T) {
	s := newSystem(t, 5)
	for i := uint64(0); i < 500; i++ {
		if _, err := s.Execute(Request{Op: OpWrite, Addr: i % 1000, Value: i}); err != nil {
			t.Fatalf("benign write %d flagged: %v", i, err)
		}
		if _, err := s.Execute(Request{Op: OpRead, Addr: i % 1000}); err != nil {
			t.Fatalf("benign read %d flagged: %v", i, err)
		}
	}
	if _, err := s.Execute(Request{
		Op: OpExec, Trusted: true,
		Code: []Instruction{{Op: "a"}, {Op: "b"}},
	}); err != nil {
		t.Fatalf("benign exec flagged: %v", err)
	}
}

func TestAttacksAgainstEveryVariantDetected(t *testing.T) {
	s := newSystem(t, 4)
	for i := 0; i < s.N(); i++ {
		addr := s.Process(i).Base() + 4
		if _, err := s.Execute(Request{Op: OpWrite, Addr: addr, Absolute: true, Value: 1}); !errors.Is(err, ErrAttackDetected) {
			t.Errorf("attack targeting variant %d: err = %v", i, err)
		}
		payload := []Instruction{{Tag: s.Process(i).Tag(), Op: "inject"}}
		if _, err := s.Execute(Request{Op: OpExec, Code: payload}); !errors.Is(err, ErrAttackDetected) {
			t.Errorf("injection tagged for variant %d: err = %v", i, err)
		}
	}
}

func TestProcessConstructorValidation(t *testing.T) {
	if _, err := NewProcess("p", 0, 0, 1); err == nil {
		t.Error("zero size")
	}
	if _, err := NewProcess("p", 0, 10, 0); err == nil {
		t.Error("zero tag")
	}
}

func TestSystemConstructorValidation(t *testing.T) {
	if _, err := NewSystem(1, 100); err == nil {
		t.Error("n < 2")
	}
	if _, err := NewSystem(300, 100); err == nil {
		t.Error("n > 255")
	}
}

func TestUnknownOp(t *testing.T) {
	p, err := NewProcess("p", 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Handle(Request{Op: OpKind(99)}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" ||
		OpExec.String() != "exec" || OpKind(0).String() != "unknown" {
		t.Error("OpKind.String incorrect")
	}
}

func TestPartitionsDisjoint(t *testing.T) {
	s := newSystem(t, 5)
	for i := 0; i < s.N(); i++ {
		for j := i + 1; j < s.N(); j++ {
			bi, bj := s.Process(i).Base(), s.Process(j).Base()
			if bi == bj {
				t.Errorf("variants %d and %d share base %#x", i, j, bi)
			}
		}
	}
}

func TestProcessName(t *testing.T) {
	p, err := NewProcess("replica-x", 0, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "replica-x" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestSameErrClassGrouping(t *testing.T) {
	if sameErrClass(ErrSegfault, ErrIllegalInstruction) {
		t.Error("segfault and illegal instruction must differ")
	}
	if !sameErrClass(ErrSegfault, ErrSegfault) {
		t.Error("same sentinel must match")
	}
	if !sameErrClass(ErrIllegalInstruction, ErrIllegalInstruction) {
		t.Error("illegal-instruction pair must match")
	}
	if sameErrClass(ErrIllegalInstruction, ErrSegfault) {
		t.Error("ordering must not matter for sentinel mismatch")
	}
	// Non-sentinel errors group by identity or message.
	other1 := errors.New("weird")
	other2 := errors.New("weird")
	if !sameErrClass(other1, other2) {
		t.Error("identical messages should group")
	}
	if sameErrClass(errors.New("x"), errors.New("y")) {
		t.Error("distinct messages should differ")
	}
}

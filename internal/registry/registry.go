// Package registry implements exception handling and rule engines: the
// registry-based recovery approaches of Baresi et al. and Pernici et al.,
// which enhance composite processes with a developer-filled registry of
// failure-matching rules, each carrying an ordered list of recovery
// actions to execute at runtime. Exception handling is the degenerate
// case of a registry with error-class rules.
//
// Taxonomy position (paper Table 2): deliberate intention, code
// redundancy (the recovery actions are redundant code provided at design
// time), reactive explicit adjudicator (failures are detected by
// observing violations of predetermined conditions), development faults.
package registry

import (
	"context"
	"errors"
	"fmt"
)

// Registry errors.
var (
	// ErrNoMatchingRule reports an incident no rule matches.
	ErrNoMatchingRule = errors.New("registry: no matching rule")
	// ErrActionsExhausted reports that every action of the matching rule
	// failed.
	ErrActionsExhausted = errors.New("registry: all recovery actions failed")
)

// Incident describes one detected failure.
type Incident struct {
	// Component is the failing component's name.
	Component string
	// Err is the observed failure.
	Err error
	// Attempt counts how many times this incident has been handled.
	Attempt int
	// Labels carries application-specific context for matchers.
	Labels map[string]string
}

// Matcher decides whether a rule applies to an incident.
type Matcher func(*Incident) bool

// MatchComponent matches incidents from the named component.
func MatchComponent(name string) Matcher {
	return func(inc *Incident) bool { return inc.Component == name }
}

// MatchErrorIs matches incidents whose error wraps target.
func MatchErrorIs(target error) Matcher {
	return func(inc *Incident) bool { return errors.Is(inc.Err, target) }
}

// MatchLabel matches incidents carrying the given label value.
func MatchLabel(key, value string) Matcher {
	return func(inc *Incident) bool { return inc.Labels[key] == value }
}

// MatchAll combines matchers conjunctively.
func MatchAll(ms ...Matcher) Matcher {
	return func(inc *Incident) bool {
		for _, m := range ms {
			if !m(inc) {
				return false
			}
		}
		return true
	}
}

// MatchAny combines matchers disjunctively.
func MatchAny(ms ...Matcher) Matcher {
	return func(inc *Incident) bool {
		for _, m := range ms {
			if m(inc) {
				return true
			}
		}
		return false
	}
}

// Action is one recovery action (retry, rebind, reboot, compensate, ...).
type Action struct {
	// Name identifies the action in reports.
	Name string
	// Run performs the recovery; a nil return means the incident is
	// resolved.
	Run func(ctx context.Context, inc *Incident) error
}

// Rule pairs a failure matcher with an ordered list of recovery actions.
type Rule struct {
	// Name identifies the rule.
	Name string
	// Match selects the incidents this rule handles.
	Match Matcher
	// Actions are tried in order until one succeeds.
	Actions []Action
}

// Outcome reports how an incident was handled.
type Outcome struct {
	// Rule is the name of the rule that matched.
	Rule string
	// Action is the name of the action that resolved the incident.
	Action string
	// ActionsTried is the number of actions executed.
	ActionsTried int
}

// Engine is the rule registry. Rules are evaluated in registration order;
// the first matching rule handles the incident.
type Engine struct {
	rules []Rule

	// Handled counts resolved incidents.
	Handled int
	// Unresolved counts incidents no rule or action could resolve.
	Unresolved int
}

// NewEngine creates an engine with the given rules.
func NewEngine(rules ...Rule) (*Engine, error) {
	for i, r := range rules {
		if r.Match == nil {
			return nil, fmt.Errorf("registry: rule %d (%s) has nil matcher", i, r.Name)
		}
		if len(r.Actions) == 0 {
			return nil, fmt.Errorf("registry: rule %d (%s) has no actions", i, r.Name)
		}
		for j, a := range r.Actions {
			if a.Run == nil {
				return nil, fmt.Errorf("registry: rule %s action %d (%s) has nil Run", r.Name, j, a.Name)
			}
		}
	}
	rs := make([]Rule, len(rules))
	copy(rs, rules)
	return &Engine{rules: rs}, nil
}

// AddRule appends a rule at the lowest priority.
func (e *Engine) AddRule(r Rule) error {
	if r.Match == nil || len(r.Actions) == 0 {
		return errors.New("registry: rule needs a matcher and at least one action")
	}
	e.rules = append(e.rules, r)
	return nil
}

// Handle resolves an incident: the first matching rule's actions run in
// order until one succeeds.
func (e *Engine) Handle(ctx context.Context, inc *Incident) (Outcome, error) {
	if inc == nil {
		return Outcome{}, errors.New("registry: nil incident")
	}
	inc.Attempt++
	for _, r := range e.rules {
		if !r.Match(inc) {
			continue
		}
		var lastErr error
		for i, a := range r.Actions {
			if err := ctx.Err(); err != nil {
				return Outcome{Rule: r.Name, ActionsTried: i}, err
			}
			if err := a.Run(ctx, inc); err != nil {
				lastErr = fmt.Errorf("action %s: %w", a.Name, err)
				continue
			}
			e.Handled++
			return Outcome{Rule: r.Name, Action: a.Name, ActionsTried: i + 1}, nil
		}
		e.Unresolved++
		return Outcome{Rule: r.Name, ActionsTried: len(r.Actions)},
			fmt.Errorf("%w: %w", ErrActionsExhausted, lastErr)
	}
	e.Unresolved++
	return Outcome{}, fmt.Errorf("component %s, error %v: %w", inc.Component, inc.Err, ErrNoMatchingRule)
}

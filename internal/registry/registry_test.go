package registry

import (
	"context"
	"errors"
	"testing"
)

var (
	errTimeout = errors.New("timeout")
	errCrash   = errors.New("crash")
)

func okAction(name string, log *[]string) Action {
	return Action{Name: name, Run: func(_ context.Context, _ *Incident) error {
		*log = append(*log, name)
		return nil
	}}
}

func failAction(name string, log *[]string) Action {
	return Action{Name: name, Run: func(_ context.Context, _ *Incident) error {
		*log = append(*log, name)
		return errors.New(name + " failed")
	}}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	var log []string
	e, err := NewEngine(
		Rule{Name: "timeouts", Match: MatchErrorIs(errTimeout), Actions: []Action{okAction("retry", &log)}},
		Rule{Name: "crashes", Match: MatchErrorIs(errCrash), Actions: []Action{okAction("reboot", &log)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Handle(context.Background(), &Incident{Component: "svc", Err: errCrash})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rule != "crashes" || out.Action != "reboot" || out.ActionsTried != 1 {
		t.Errorf("outcome = %+v", out)
	}
	if e.Handled != 1 {
		t.Errorf("Handled = %d", e.Handled)
	}
}

func TestActionsTriedInOrder(t *testing.T) {
	var log []string
	e, err := NewEngine(Rule{
		Name:  "r",
		Match: MatchComponent("svc"),
		Actions: []Action{
			failAction("retry", &log),
			failAction("rebind", &log),
			okAction("reboot", &log),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Handle(context.Background(), &Incident{Component: "svc", Err: errCrash})
	if err != nil {
		t.Fatal(err)
	}
	if out.Action != "reboot" || out.ActionsTried != 3 {
		t.Errorf("outcome = %+v", out)
	}
	want := []string{"retry", "rebind", "reboot"}
	for i, w := range want {
		if log[i] != w {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestActionsExhausted(t *testing.T) {
	var log []string
	e, err := NewEngine(Rule{
		Name:    "r",
		Match:   MatchComponent("svc"),
		Actions: []Action{failAction("a", &log), failAction("b", &log)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Handle(context.Background(), &Incident{Component: "svc"})
	if !errors.Is(err, ErrActionsExhausted) {
		t.Errorf("err = %v", err)
	}
	if e.Unresolved != 1 {
		t.Errorf("Unresolved = %d", e.Unresolved)
	}
}

func TestNoMatchingRule(t *testing.T) {
	e, err := NewEngine(Rule{
		Name:    "r",
		Match:   MatchComponent("other"),
		Actions: []Action{{Name: "a", Run: func(context.Context, *Incident) error { return nil }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Handle(context.Background(), &Incident{Component: "svc"})
	if !errors.Is(err, ErrNoMatchingRule) {
		t.Errorf("err = %v", err)
	}
}

func TestMatchers(t *testing.T) {
	inc := &Incident{
		Component: "db",
		Err:       errTimeout,
		Labels:    map[string]string{"tier": "backend"},
	}
	if !MatchComponent("db")(inc) || MatchComponent("web")(inc) {
		t.Error("MatchComponent")
	}
	if !MatchErrorIs(errTimeout)(inc) || MatchErrorIs(errCrash)(inc) {
		t.Error("MatchErrorIs")
	}
	if !MatchLabel("tier", "backend")(inc) || MatchLabel("tier", "front")(inc) {
		t.Error("MatchLabel")
	}
	if !MatchAll(MatchComponent("db"), MatchErrorIs(errTimeout))(inc) {
		t.Error("MatchAll positive")
	}
	if MatchAll(MatchComponent("db"), MatchErrorIs(errCrash))(inc) {
		t.Error("MatchAll negative")
	}
	if !MatchAny(MatchComponent("web"), MatchErrorIs(errTimeout))(inc) {
		t.Error("MatchAny positive")
	}
	if MatchAny(MatchComponent("web"), MatchErrorIs(errCrash))(inc) {
		t.Error("MatchAny negative")
	}
}

func TestIncidentAttemptIncrements(t *testing.T) {
	e, _ := NewEngine(Rule{
		Name:  "r",
		Match: func(*Incident) bool { return true },
		Actions: []Action{{Name: "a", Run: func(_ context.Context, inc *Incident) error {
			if inc.Attempt < 2 {
				return errors.New("not yet")
			}
			return nil
		}}},
	})
	inc := &Incident{Component: "svc"}
	if _, err := e.Handle(context.Background(), inc); err == nil {
		t.Fatal("first attempt should fail")
	}
	if _, err := e.Handle(context.Background(), inc); err != nil {
		t.Fatalf("second attempt: %v", err)
	}
	if inc.Attempt != 2 {
		t.Errorf("Attempt = %d", inc.Attempt)
	}
}

func TestEngineValidation(t *testing.T) {
	ok := Action{Name: "a", Run: func(context.Context, *Incident) error { return nil }}
	if _, err := NewEngine(Rule{Name: "r", Actions: []Action{ok}}); err == nil {
		t.Error("nil matcher accepted")
	}
	if _, err := NewEngine(Rule{Name: "r", Match: func(*Incident) bool { return true }}); err == nil {
		t.Error("no actions accepted")
	}
	if _, err := NewEngine(Rule{
		Name:    "r",
		Match:   func(*Incident) bool { return true },
		Actions: []Action{{Name: "bad"}},
	}); err == nil {
		t.Error("nil Run accepted")
	}
	e, _ := NewEngine()
	if _, err := e.Handle(context.Background(), nil); err == nil {
		t.Error("nil incident accepted")
	}
	if err := e.AddRule(Rule{}); err == nil {
		t.Error("AddRule accepted invalid rule")
	}
	if err := e.AddRule(Rule{Match: func(*Incident) bool { return true }, Actions: []Action{ok}}); err != nil {
		t.Errorf("AddRule rejected valid rule: %v", err)
	}
}

func TestContextCancellationDuringActions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e, _ := NewEngine(Rule{
		Name:  "r",
		Match: func(*Incident) bool { return true },
		Actions: []Action{
			{Name: "first", Run: func(context.Context, *Incident) error {
				cancel()
				return errors.New("failed")
			}},
			{Name: "second", Run: func(context.Context, *Incident) error {
				t.Error("second action ran after cancellation")
				return nil
			}},
		},
	})
	_, err := e.Handle(ctx, &Incident{Component: "svc"})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

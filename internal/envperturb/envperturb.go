// Package envperturb implements RX-style environment perturbation (Qin,
// Tucek, Zhou, Sundaresan: "Rx: treating bugs as allergies"): after a
// failure, the program is rolled back to a consistent state and
// re-executed under deliberately changed environment conditions — added
// allocation padding, shuffled message delivery, changed scheduling
// priority, shed request load. The perturbations can prevent failures
// such as buffer overflows, deadlocks and other concurrency problems, and
// can avoid interaction faults exploited by malicious requests.
//
// The same executor with an empty perturbation ladder is plain
// checkpoint-recovery: rollback and re-execute, relying on spontaneous
// environment changes only. The contrast between the two is the paper's
// point that checkpoint-recovery handles Heisenbugs while RX additionally
// handles environment-dependent deterministic bugs.
//
// Taxonomy position (paper Table 2): environment perturbation is
// deliberate environment redundancy with a reactive explicit adjudicator
// addressing development faults; checkpoint-recovery is opportunistic
// environment redundancy with a reactive explicit adjudicator addressing
// Heisenbugs.
package envperturb

import (
	"context"
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
)

// EnvProgram is a program whose execution depends on explicit environment
// conditions.
type EnvProgram[I, O any] func(ctx context.Context, env *faultmodel.Env, input I) (O, error)

// Rung is one step of the perturbation ladder: a named set of environment
// changes applied together before a re-execution.
type Rung struct {
	// Name identifies the rung in reports ("retry", "pad-64", ...).
	Name string
	// Perturbations are applied to a fresh clone of the base environment.
	Perturbations []faultmodel.Perturbation
}

// DefaultLadder returns the RX-inspired perturbation ladder: plain retry
// first (cheapest), then allocation padding, message shuffling, and
// priority raise with load shedding.
func DefaultLadder() []Rung {
	return []Rung{
		{Name: "retry"},
		{Name: "pad-64", Perturbations: []faultmodel.Perturbation{faultmodel.PadAllocations(64)}},
		{Name: "shuffle", Perturbations: []faultmodel.Perturbation{faultmodel.ShuffleMessages()}},
		{Name: "deprioritize-load", Perturbations: []faultmodel.Perturbation{
			faultmodel.RaisePriority(1),
			faultmodel.ShedLoad(0.25),
		}},
	}
}

// Executor re-executes a failing program under perturbed environments.
type Executor[I, O any] struct {
	program EnvProgram[I, O]
	baseEnv *faultmodel.Env
	ladder  []Rung
	// Rollback restores a consistent state before each re-execution; nil
	// for pure programs.
	rollback func(ctx context.Context) error
	metrics  *core.Metrics

	// lastRung records the name of the rung that produced the last
	// successful result ("" when the first execution succeeded).
	lastRung string
}

var _ core.Executor[int, int] = (*Executor[int, int])(nil)

// Option configures an Executor.
type Option[I, O any] func(*Executor[I, O])

// WithRollback installs the state-restoration hook invoked before every
// re-execution.
func WithRollback[I, O any](rollback func(ctx context.Context) error) Option[I, O] {
	return func(e *Executor[I, O]) { e.rollback = rollback }
}

// WithMetrics attaches a metrics collector.
func WithMetrics[I, O any](m *core.Metrics) Option[I, O] {
	return func(e *Executor[I, O]) { e.metrics = m }
}

// New builds a perturbation executor over program, starting from baseEnv
// (cloned per execution) and escalating through ladder on failure.
func New[I, O any](program EnvProgram[I, O], baseEnv *faultmodel.Env, ladder []Rung, opts ...Option[I, O]) (*Executor[I, O], error) {
	if program == nil {
		return nil, errors.New("envperturb: nil program")
	}
	if baseEnv == nil {
		return nil, errors.New("envperturb: nil base environment")
	}
	l := make([]Rung, len(ladder))
	copy(l, ladder)
	e := &Executor[I, O]{program: program, baseEnv: baseEnv, ladder: l}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// NewCheckpointRecovery builds the plain checkpoint-recovery executor: on
// failure the state is rolled back and the program re-executed under the
// unchanged environment, up to retries times. It is the technique
// executor for the paper's "checkpoint-recovery" row.
func NewCheckpointRecovery[I, O any](program EnvProgram[I, O], baseEnv *faultmodel.Env, retries int, opts ...Option[I, O]) (*Executor[I, O], error) {
	if retries < 0 {
		return nil, errors.New("envperturb: negative retries")
	}
	ladder := make([]Rung, retries)
	for i := range ladder {
		ladder[i] = Rung{Name: fmt.Sprintf("retry-%d", i+1)}
	}
	return New(program, baseEnv, ladder, opts...)
}

// LastRung reports which ladder rung produced the last successful result;
// empty means the first execution succeeded.
func (e *Executor[I, O]) LastRung() string { return e.lastRung }

// Execute implements core.Executor.
func (e *Executor[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	if e.metrics != nil {
		e.metrics.RecordRequest()
	}
	attempts := 1
	out, err := e.program(ctx, e.baseEnv.Clone(), input)
	if err == nil {
		e.lastRung = ""
		e.record(attempts, true)
		return out, nil
	}
	lastErr := err
	for _, rung := range e.ladder {
		if cerr := ctx.Err(); cerr != nil {
			e.record(attempts, false)
			return zero, cerr
		}
		if e.rollback != nil {
			if rerr := e.rollback(ctx); rerr != nil {
				e.record(attempts, false)
				return zero, fmt.Errorf("rollback before rung %s: %w", rung.Name, rerr)
			}
		}
		env := e.baseEnv.Clone()
		for _, p := range rung.Perturbations {
			p(env)
		}
		attempts++
		out, err = e.program(ctx, env, input)
		if err == nil {
			e.lastRung = rung.Name
			e.record(attempts, true)
			return out, nil
		}
		lastErr = fmt.Errorf("rung %s: %w", rung.Name, err)
	}
	e.record(attempts, false)
	return zero, fmt.Errorf("perturbation ladder exhausted after %d attempts: %w", attempts, lastErr)
}

func (e *Executor[I, O]) record(attempts int, succeeded bool) {
	if e.metrics == nil {
		return
	}
	e.metrics.RecordVariantExecutions(attempts)
	if attempts > 1 {
		e.metrics.RecordFailureDetected()
	}
	switch {
	case !succeeded:
		e.metrics.RecordFailure()
	case attempts > 1:
		e.metrics.RecordFailureMasked()
	}
}

package envperturb

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// overflowProgram fails unless the environment provides at least 64 bytes
// of allocation padding: an environment-dependent deterministic bug.
func overflowProgram() EnvProgram[int, int] {
	bug := faultmodel.EnvBohrbug{ID: 1, TriggerFraction: 1, MaskedByPadding: 64}
	return func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
		if bug.Activated(faultmodel.Invocation{InputKey: faultmodel.HashInt(x), Env: env}) {
			return 0, errors.New("buffer overflow")
		}
		return x * 2, nil
	}
}

// heisenProgram fails with probability p independently per execution.
func heisenProgram(p float64, rng *xrand.Rand) EnvProgram[int, int] {
	bug := faultmodel.Heisenbug{ID: 2, Prob: p}
	return func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
		if bug.Activated(faultmodel.Invocation{Env: env, Rand: rng}) {
			return 0, errors.New("race condition")
		}
		return x * 2, nil
	}
}

func TestCleanProgramNoPerturbation(t *testing.T) {
	prog := func(_ context.Context, _ *faultmodel.Env, x int) (int, error) { return x + 1, nil }
	e, err := New(prog, faultmodel.DefaultEnv(), DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(context.Background(), 1)
	if err != nil || got != 2 {
		t.Errorf("= (%d, %v)", got, err)
	}
	if e.LastRung() != "" {
		t.Errorf("LastRung = %q, want empty for first-try success", e.LastRung())
	}
}

func TestPaddingRungHealsOverflow(t *testing.T) {
	var m core.Metrics
	e, err := New(overflowProgram(), faultmodel.DefaultEnv(), DefaultLadder(),
		WithMetrics[int, int](&m))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(context.Background(), 5)
	if err != nil || got != 10 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if e.LastRung() != "pad-64" {
		t.Errorf("LastRung = %q, want pad-64", e.LastRung())
	}
	s := m.Snapshot()
	// First try + plain retry + padded retry = 3 executions.
	if s.VariantExecutions != 3 || s.FailuresMasked != 1 {
		t.Errorf("metrics = %+v", s)
	}
}

func TestCheckpointRecoveryCannotHealEnvBohrbug(t *testing.T) {
	// Plain re-execution never changes the environment, so the
	// deterministic overflow fails on every retry.
	e, err := NewCheckpointRecovery(overflowProgram(), faultmodel.DefaultEnv(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), 5); err == nil {
		t.Error("checkpoint-recovery should not mask a deterministic env-dependent bug")
	}
}

func TestCheckpointRecoveryHealsHeisenbug(t *testing.T) {
	rng := xrand.New(3)
	e, err := NewCheckpointRecovery(heisenProgram(0.5, rng), faultmodel.DefaultEnv(), 10)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 200; i++ {
		if _, err := e.Execute(context.Background(), i); err != nil {
			failures++
		}
	}
	// P(11 consecutive activations) = 0.5^11 ≈ 0.05%; over 200 requests
	// we expect ~0.1 residual failures.
	if failures > 3 {
		t.Errorf("checkpoint-recovery left %d/200 Heisenbug failures", failures)
	}
}

func TestRollbackInvokedBeforeEachRetry(t *testing.T) {
	rollbacks := 0
	e, err := NewCheckpointRecovery(overflowProgram(), faultmodel.DefaultEnv(), 3,
		WithRollback[int, int](func(context.Context) error {
			rollbacks++
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = e.Execute(context.Background(), 1)
	if rollbacks != 3 {
		t.Errorf("rollbacks = %d, want 3", rollbacks)
	}
}

func TestRollbackFailureAborts(t *testing.T) {
	boom := errors.New("rollback broken")
	e, err := NewCheckpointRecovery(overflowProgram(), faultmodel.DefaultEnv(), 3,
		WithRollback[int, int](func(context.Context) error { return boom }))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Execute(context.Background(), 1)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want rollback error", err)
	}
}

func TestLadderExhaustion(t *testing.T) {
	always := func(_ context.Context, _ *faultmodel.Env, _ int) (int, error) {
		return 0, errors.New("unconditional bug")
	}
	var m core.Metrics
	e, err := New(always, faultmodel.DefaultEnv(), DefaultLadder(), WithMetrics[int, int](&m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), 1); err == nil {
		t.Error("want error")
	}
	if s := m.Snapshot(); s.Failures != 1 || s.VariantExecutions != 5 {
		t.Errorf("metrics = %+v", s)
	}
}

func TestBaseEnvNotMutatedByPerturbations(t *testing.T) {
	base := faultmodel.DefaultEnv()
	e, err := New(overflowProgram(), base, DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if base.AllocPadding != 0 || base.Order != faultmodel.FIFOOrder {
		t.Errorf("base environment mutated: %+v", base)
	}
}

func TestShuffleRungHealsOrderingBug(t *testing.T) {
	bug := faultmodel.EnvBohrbug{ID: 9, TriggerFraction: 1, MaskedByShuffle: true}
	prog := func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
		if bug.Activated(faultmodel.Invocation{InputKey: faultmodel.HashInt(x), Env: env}) {
			return 0, errors.New("deadlock")
		}
		return x, nil
	}
	e, err := New(prog, faultmodel.DefaultEnv(), DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(context.Background(), 7)
	if err != nil || got != 7 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if e.LastRung() != "shuffle" {
		t.Errorf("LastRung = %q, want shuffle", e.LastRung())
	}
}

func TestConstructorValidation(t *testing.T) {
	prog := overflowProgram()
	if _, err := New[int, int](nil, faultmodel.DefaultEnv(), nil); err == nil {
		t.Error("nil program")
	}
	if _, err := New(prog, nil, nil); err == nil {
		t.Error("nil env")
	}
	if _, err := NewCheckpointRecovery(prog, faultmodel.DefaultEnv(), -1); err == nil {
		t.Error("negative retries")
	}
}

func TestContextCancellationStopsLadder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	prog := func(_ context.Context, _ *faultmodel.Env, _ int) (int, error) {
		calls++
		cancel() // cancel after the first (failing) execution
		return 0, errors.New("fails")
	}
	e, err := New(prog, faultmodel.DefaultEnv(), DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Execute(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("program ran %d times after cancellation", calls)
	}
}

package rejuv

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// rejuvObserver captures observation events for assertions.
type rejuvObserver struct {
	mu       sync.Mutex
	execs    []string
	ends     int
	outcomes []obs.Outcome
	variants []string
	errs     int
	adjs     []struct{ accepted, detected bool }
	rolls    int
}

func (r *rejuvObserver) RequestStart(executor string, _ uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.execs = append(r.execs, executor)
}

func (r *rejuvObserver) RequestEnd(_ string, _ uint64, _ time.Duration, o obs.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends++
	r.outcomes = append(r.outcomes, o)
}

func (r *rejuvObserver) VariantStart(string, string, uint64) {}

func (r *rejuvObserver) VariantEnd(_, variant string, _ uint64, _ time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.variants = append(r.variants, variant)
	if err != nil {
		r.errs++
	}
}

func (r *rejuvObserver) Adjudicated(_ string, _ uint64, accepted, detected bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.adjs = append(r.adjs, struct{ accepted, detected bool }{accepted, detected})
}

func (r *rejuvObserver) ComponentDisabled(string, string, uint64) {}

func (r *rejuvObserver) RetryAttempt(string, string, uint64, int) {}

func (r *rejuvObserver) Rollback(string, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rolls++
}

// alwaysAging activates on every request with age >= 1 (age reaches 1 on
// the first request's tick).
func alwaysAging() faultmodel.AgingFault {
	return faultmodel.AgingFault{ID: 9, HazardAtScale: 1, Scale: 1, Shape: 1}
}

func TestRejuvenatorObserverRollbackOnRejuvenation(t *testing.T) {
	rec := &rejuvObserver{}
	r, err := NewRejuvenator(identity(), faultmodel.AgingFault{}, PeriodicPolicy{Every: 1}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r.SetObserver(rec)
	// First request ages the process to 1; the second rejuvenates first.
	for i := 0; i < 2; i++ {
		if _, err := r.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	if rec.rolls != 1 || r.Rejuvenations() != 1 {
		t.Errorf("rollback events = %d, rejuvenations = %d", rec.rolls, r.Rejuvenations())
	}
	if len(rec.execs) != 2 || rec.execs[0] != "rejuvenator" {
		t.Errorf("request spans = %v", rec.execs)
	}
	for i, a := range rec.adjs {
		if !a.accepted || a.detected {
			t.Errorf("adjudication %d = %+v", i, a)
		}
	}
	if rec.outcomes[0] != obs.OutcomeSuccess || rec.outcomes[1] != obs.OutcomeSuccess {
		t.Errorf("outcomes = %v", rec.outcomes)
	}
}

func TestRejuvenatorObserverAgingFailureDetected(t *testing.T) {
	rec := &rejuvObserver{}
	r, err := NewRejuvenator(identity(), alwaysAging(), NeverPolicy{}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r.SetObserver(rec)
	if _, err := r.Execute(context.Background(), 1); err == nil {
		t.Fatal("want aging failure")
	}
	// The fault preempts the variant, but one execution is still reported.
	if len(rec.variants) != 1 || rec.variants[0] != "svc" || rec.errs != 1 {
		t.Errorf("variant events = %v, errs = %d", rec.variants, rec.errs)
	}
	if len(rec.adjs) != 1 || rec.adjs[0].accepted || !rec.adjs[0].detected {
		t.Errorf("adjudication = %+v", rec.adjs)
	}
	if rec.outcomes[0] != obs.OutcomeFailed {
		t.Errorf("outcome = %v", rec.outcomes[0])
	}
}

func TestRejuvenatorObserverPlainVariantErrorNotAdjudicated(t *testing.T) {
	rec := &rejuvObserver{}
	broken := core.NewVariant("broken", func(context.Context, int) (int, error) {
		return 0, errors.New("app error")
	})
	r, err := NewRejuvenator(broken, faultmodel.AgingFault{}, NeverPolicy{}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r.SetObserver(rec)
	if _, err := r.Execute(context.Background(), 1); err == nil {
		t.Fatal("want variant error")
	}
	// Rejuvenation is preventive: it has no failure detector, so a plain
	// variant error must not be adjudicated (legacy counters recorded
	// nothing here either).
	if len(rec.adjs) != 0 {
		t.Errorf("adjudications = %+v, want none", rec.adjs)
	}
	if rec.ends != 1 || rec.outcomes[0] != obs.OutcomeFailed {
		t.Errorf("request end = %d outcome = %v", rec.ends, rec.outcomes)
	}
}

func TestRejuvenatorMetricsOnAgingFailure(t *testing.T) {
	// Legacy counter parity on the fault path: one request, one variant
	// execution, one detected failure, one executor failure.
	var m core.Metrics
	r, err := NewRejuvenator(identity(), alwaysAging(), NeverPolicy{}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r.SetMetrics(&m)
	if _, err := r.Execute(context.Background(), 1); err == nil {
		t.Fatal("want aging failure")
	}
	s := m.Snapshot()
	if s.Requests != 1 || s.VariantExecutions != 1 || s.FailuresDetected != 1 || s.Failures != 1 {
		t.Errorf("metrics = %+v", s)
	}
}

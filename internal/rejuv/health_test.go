package rejuv

import (
	"context"
	"strings"
	"testing"

	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs/health"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func TestHealthPolicyUnit(t *testing.T) {
	env := faultmodel.DefaultEnv()
	score := 1.0
	p := HealthPolicy{Score: func() float64 { return score }, MinScore: 0.6, MinAge: 5}
	env.Age = 10
	if p.ShouldRejuvenate(env) {
		t.Error("healthy process should not rejuvenate")
	}
	score = 0.3
	if !p.ShouldRejuvenate(env) {
		t.Error("degraded process past MinAge should rejuvenate")
	}
	env.Age = 2
	if p.ShouldRejuvenate(env) {
		t.Error("MinAge cooldown should hold the trigger")
	}
	env.Age = 10
	if (HealthPolicy{MinScore: 0.6}).ShouldRejuvenate(env) {
		t.Error("nil Score never triggers")
	}
	if !strings.Contains(p.Name(), "health") {
		t.Errorf("policy name = %q", p.Name())
	}
}

// TestHealthTriggeredRejuvenation wires the diagnosis engine into the
// rejuvenator: aging failures degrade the executor score, the policy
// fires on the degraded score, and the engine's evidence ends up
// classifying the variant as aging.
func TestHealthTriggeredRejuvenation(t *testing.T) {
	engine := health.New(health.Config{Alpha: 0.3})
	r, err := NewRejuvenator(identity(), steepAging(), HealthPolicy{
		Score:    engine.ScoreFunc(rejuvenatorName),
		MinScore: 0.6,
		MinAge:   10,
	}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r.SetObserver(engine)

	ctx := context.Background()
	failures := 0
	for i := 0; i < 600; i++ {
		if _, err := r.Execute(ctx, i); err != nil {
			failures++
		}
	}
	if r.Rejuvenations() == 0 {
		t.Fatal("health policy never triggered")
	}
	if failures == 0 {
		t.Fatal("aging fault never activated; test exercises nothing")
	}
	// The failure runs cured by rejuvenation are aging evidence.
	var class health.FaultClass
	for _, e := range engine.Snapshot() {
		if e.Executor != rejuvenatorName {
			continue
		}
		if e.Rollbacks == 0 {
			t.Error("engine saw no rollback events")
		}
		for _, v := range e.Variants {
			class = v.Class
		}
	}
	if class != health.ClassAging {
		t.Errorf("diagnosed class = %v, want %v", class, health.ClassAging)
	}
}

package rejuv

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/supervise"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func identityVariant() core.Variant[int, int] {
	return core.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
}

func TestNewSupervisedValidation(t *testing.T) {
	v := identityVariant()
	rng := xrand.New(1)
	fault := faultmodel.AgingFault{}
	sup := supervise.New(supervise.Options{})
	if _, err := NewSupervised(v, fault, PeriodicPolicy{Every: 5}, rng, nil, "aged"); err == nil {
		t.Error("nil restarter accepted")
	}
	if _, err := NewSupervised(v, fault, nil, rng, sup, "aged"); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewSupervised(v, fault, PeriodicPolicy{Every: 5}, rng, sup, ""); err == nil {
		t.Error("empty child name accepted")
	}
}

func TestSupervisedRejuvenationViaSupervisor(t *testing.T) {
	c := obs.NewCollector()
	sup := supervise.New(supervise.Options{
		Name:      "rejuv-sup",
		Intensity: supervise.Intensity{MaxRestarts: 50, Window: time.Minute},
		Observer:  c,
	})
	sv, err := NewSupervised(identityVariant(), faultmodel.AgingFault{}, PeriodicPolicy{Every: 10},
		xrand.New(1), sup, "aged")
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Add(supervise.ChildSpec{
		Name: "aged",
		Init: sv.ChildInit,
		Run:  func(ctx context.Context) error { <-ctx.Done(); return ctx.Err() },
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sup.Serve(ctx) }()

	// Age the process past the policy period: the trigger must go through
	// the supervisor (a measured restart), not flip the env in place.
	for i := 0; i < 200; i++ {
		if _, err := sv.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Microsecond) // give the supervisor room to run Init
	}
	deadline := time.Now().Add(5 * time.Second)
	for sv.Rejuvenations() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sv.RestartsRequested() == 0 {
		t.Fatal("policy never requested a supervised restart")
	}
	if sv.Rejuvenations() == 0 {
		t.Fatal("no rejuvenation completed through ChildInit")
	}
	if got := sv.Inner().Env().Age; got >= 200 {
		t.Errorf("age = %d; rejuvenation should have reset it", got)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not shut down")
	}

	// Each completed rejuvenation is a supervised restart with an MTTR
	// sample on the supervisor's executor.
	var snap obs.ExecutorSnapshot
	for _, e := range c.Snapshot() {
		if e.Executor == "rejuv-sup" {
			snap = e
		}
	}
	if snap.Restarts == 0 || snap.MTTR.Count == 0 {
		t.Errorf("obs: restarts=%d mttr=%d, want both > 0", snap.Restarts, snap.MTTR.Count)
	}
	// ChildInit also runs once at the initial boot, which resets a fresh
	// env without a corresponding restart.
	if int(snap.Restarts) != sv.Rejuvenations()-1 {
		t.Errorf("restarts=%d, rejuvenations=%d; every post-boot rejuvenation should be a supervised restart",
			snap.Restarts, sv.Rejuvenations())
	}
}

func TestSupervisedPendingSuppressesRestartFlood(t *testing.T) {
	// A restarter that never completes restarts: requested count must
	// stay at 1 no matter how many times the policy fires.
	stall := &stallingRestarter{}
	sv, err := NewSupervised(identityVariant(), faultmodel.AgingFault{}, PeriodicPolicy{Every: 5},
		xrand.New(1), stall, "aged")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := sv.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	if sv.RestartsRequested() != 1 {
		t.Errorf("requested = %d, want 1 (pending restart must suppress re-triggers)", sv.RestartsRequested())
	}
	if stall.calls != 1 {
		t.Errorf("restarter calls = %d, want 1", stall.calls)
	}
}

type stallingRestarter struct{ calls int }

func (s *stallingRestarter) Restart(string) error { s.calls++; return nil }

func TestSupervisedRestartErrorKeepsServing(t *testing.T) {
	// A failing restarter (e.g. supervisor not serving) must not wedge
	// request serving; the trigger retries on a later request.
	failing := &failingRestarter{}
	sv, err := NewSupervised(identityVariant(), faultmodel.AgingFault{}, PeriodicPolicy{Every: 5},
		xrand.New(1), failing, "aged")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if out, err := sv.Execute(context.Background(), i); err != nil || out != i {
			t.Fatalf("Execute(%d) = (%d, %v)", i, out, err)
		}
	}
	if failing.calls < 2 {
		t.Errorf("failed restart should be retried; calls = %d", failing.calls)
	}
	if sv.RestartsRequested() != 0 {
		t.Errorf("requested = %d, want 0 (failed requests are not pending)", sv.RestartsRequested())
	}
}

type failingRestarter struct{ calls int }

func (f *failingRestarter) Restart(string) error {
	f.calls++
	return errors.New("not serving")
}

package rejuv

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func identity() core.Variant[int, int] {
	return core.NewVariant("svc", func(_ context.Context, x int) (int, error) {
		return x, nil
	})
}

func steepAging() faultmodel.AgingFault {
	// Hazard 0 when fresh, ~1 beyond age 50.
	return faultmodel.AgingFault{ID: 1, HazardAtScale: 1, Scale: 50, Shape: 4}
}

func TestPeriodicPolicy(t *testing.T) {
	p := PeriodicPolicy{Every: 10}
	env := faultmodel.DefaultEnv()
	if p.ShouldRejuvenate(env) {
		t.Error("fresh process should not rejuvenate")
	}
	env.Age = 10
	if !p.ShouldRejuvenate(env) {
		t.Error("aged process should rejuvenate")
	}
	if (PeriodicPolicy{Every: 0}).ShouldRejuvenate(env) {
		t.Error("Every=0 disables rejuvenation")
	}
	if p.Name() == "" {
		t.Error("empty policy name")
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := ThresholdPolicy{MaxFragmentation: 0.5, MaxLeakedBytes: 1000}
	env := faultmodel.DefaultEnv()
	if p.ShouldRejuvenate(env) {
		t.Error("fresh process")
	}
	env.Fragmentation = 0.6
	if !p.ShouldRejuvenate(env) {
		t.Error("fragmentation over threshold")
	}
	env.Fragmentation = 0
	env.LeakedBytes = 2000
	if !p.ShouldRejuvenate(env) {
		t.Error("leak over threshold")
	}
	if (ThresholdPolicy{}).ShouldRejuvenate(env) {
		t.Error("zero thresholds disable checks")
	}
}

func TestNeverPolicy(t *testing.T) {
	env := faultmodel.DefaultEnv()
	env.Age = 1 << 20
	if (NeverPolicy{}).ShouldRejuvenate(env) {
		t.Error("NeverPolicy rejuvenated")
	}
	if (NeverPolicy{}).Name() != "never" {
		t.Error("name")
	}
}

func TestRejuvenatorPreventsAgingFailures(t *testing.T) {
	serve := func(policy Policy, seed uint64) (failures int) {
		r, err := NewRejuvenator(identity(), steepAging(), policy, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if _, err := r.Execute(context.Background(), i); err != nil {
				failures++
			}
		}
		return failures
	}
	withRejuv := serve(PeriodicPolicy{Every: 20}, 1)
	withoutRejuv := serve(NeverPolicy{}, 1)
	if withRejuv >= withoutRejuv {
		t.Errorf("rejuvenation did not reduce failures: with=%d without=%d", withRejuv, withoutRejuv)
	}
	if withRejuv > 5 {
		t.Errorf("frequent rejuvenation should almost eliminate aging failures, got %d", withRejuv)
	}
}

func TestRejuvenatorCountsRejuvenations(t *testing.T) {
	r, err := NewRejuvenator(identity(), steepAging(), PeriodicPolicy{Every: 10}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, _ = r.Execute(context.Background(), i)
	}
	if got := r.Rejuvenations(); got < 8 || got > 10 {
		t.Errorf("rejuvenations = %d, want ~9-10 for period 10 over 100 requests", got)
	}
	if r.Env().Age > 10 {
		t.Errorf("age = %d, should stay below the period", r.Env().Age)
	}
}

func TestRejuvenatorMetrics(t *testing.T) {
	var m core.Metrics
	r, err := NewRejuvenator(identity(), faultmodel.AgingFault{}, NeverPolicy{}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r.SetMetrics(&m)
	if _, err := r.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.Requests != 1 || s.Failures != 0 {
		t.Errorf("metrics = %+v", s)
	}
}

func TestRejuvenatorConstructorValidation(t *testing.T) {
	if _, err := NewRejuvenator[int, int](nil, steepAging(), NeverPolicy{}, xrand.New(1)); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("nil variant: %v", err)
	}
	if _, err := NewRejuvenator(identity(), steepAging(), nil, xrand.New(1)); err == nil {
		t.Error("nil policy")
	}
	if _, err := NewRejuvenator(identity(), steepAging(), NeverPolicy{}, nil); err == nil {
		t.Error("nil rng")
	}
}

func TestSimulateCompletionNoFaults(t *testing.T) {
	cfg := CompletionConfig{
		Work:               100,
		CheckpointInterval: 10,
		CheckpointCost:     1,
		Fault:              faultmodel.AgingFault{}, // zero hazard
	}
	got, err := SimulateCompletion(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// 100 work units + 10 checkpoints.
	if got != 110 {
		t.Errorf("completion = %f, want 110", got)
	}
}

func TestSimulateCompletionRejuvenationCostCounted(t *testing.T) {
	cfg := CompletionConfig{
		Work:               100,
		CheckpointInterval: 10,
		CheckpointCost:     1,
		RejuvenateEveryN:   2,
		RejuvenationCost:   5,
		Fault:              faultmodel.AgingFault{},
	}
	got, err := SimulateCompletion(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// 100 units + 10 checkpoints + 4 rejuvenations (after ckps 2,4,6,8;
	// none after the final checkpoint because the work is complete).
	if got != 130 {
		t.Errorf("completion = %f, want 130", got)
	}
}

func TestSimulateCompletionAlwaysTerminates(t *testing.T) {
	// Even with aggressive hazard, failure recovery resets the age, so
	// the run terminates (the process makes progress while young).
	cfg := CompletionConfig{
		Work:               200,
		CheckpointInterval: 5,
		CheckpointCost:     0.5,
		RecoveryCost:       10,
		Fault:              faultmodel.AgingFault{ID: 1, HazardAtScale: 0.8, Scale: 30, Shape: 3},
	}
	got, err := SimulateCompletion(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if got < 200 {
		t.Errorf("completion %f cannot be below the raw work", got)
	}
}

func TestCompletionUCurve(t *testing.T) {
	// The headline Garg et al. result: completion time as a function of
	// the rejuvenation period is U-shaped — an interior rejuvenation
	// frequency beats both extremes.
	base := CompletionConfig{
		Work:               2000,
		CheckpointInterval: 20,
		CheckpointCost:     1,
		RejuvenationCost:   25,
		RecoveryCost:       200,
		Fault:              faultmodel.AgingFault{ID: 1, HazardAtScale: 0.02, Scale: 200, Shape: 4},
	}
	mean := func(everyN int) float64 {
		cfg := base
		cfg.RejuvenateEveryN = everyN
		m, err := MeanCompletion(cfg, 60, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	tooOften := mean(1) // rejuvenate after every checkpoint
	moderate := mean(3) // interior point
	never := mean(0)    // no rejuvenation: failures dominate
	if !(moderate < never) {
		t.Errorf("moderate rejuvenation (%f) should beat none (%f)", moderate, never)
	}
	if !(moderate < tooOften) {
		t.Errorf("moderate rejuvenation (%f) should beat over-rejuvenation (%f)", moderate, tooOften)
	}
}

func TestCompletionConfigValidation(t *testing.T) {
	good := CompletionConfig{Work: 10, CheckpointInterval: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []CompletionConfig{
		{Work: 0, CheckpointInterval: 1},
		{Work: 10, CheckpointInterval: 0},
		{Work: 10, CheckpointInterval: 1, CheckpointCost: -1},
		{Work: 10, CheckpointInterval: 1, RejuvenateEveryN: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := SimulateCompletion(bad[0], xrand.New(1)); err == nil {
		t.Error("SimulateCompletion accepted invalid config")
	}
	if _, err := SimulateCompletion(good, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := MeanCompletion(good, 0, xrand.New(1)); err == nil {
		t.Error("zero trials accepted")
	}
}

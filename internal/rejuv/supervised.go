package rejuv

import (
	"context"
	"errors"
	"sync"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Restarter asks a supervision tree to restart a named child.
// supervise.Supervisor satisfies it; the indirection keeps rejuv from
// depending on the supervision package.
type Restarter interface {
	Restart(name string) error
}

// Supervised is the supervision-integrated flavor of rejuvenation:
// when the policy fires, instead of rejuvenating in place (a bare
// flag-flip on the simulated environment), it asks the supervisor to
// restart its child — and the environment reset happens inside the
// child's Init, as part of a real supervised micro-reboot whose
// downtime the supervisor measures and whose frequency its
// restart-intensity window bounds.
//
// Wire it up by registering ChildInit as the child's Init. The child
// stands for the live aging process, so its Run blocks until the
// supervisor stops or restarts it:
//
//	sup := supervise.New(supervise.Options{...})
//	sv, _ := rejuv.NewSupervised(variant, fault, policy, rng, sup, "aged")
//	_ = sup.Add(supervise.ChildSpec{
//		Name: "aged",
//		Init: sv.ChildInit,
//		Run:  func(ctx context.Context) error { <-ctx.Done(); return ctx.Err() },
//	})
//
// Supervised serializes requests with an internal mutex, so unlike the
// bare Rejuvenator it is safe to call Execute concurrently with the
// supervisor running ChildInit.
type Supervised[I, O any] struct {
	mu        sync.Mutex
	rej       *Rejuvenator[I, O]
	policy    Policy
	restarter Restarter
	child     string

	pending   bool // a restart was requested and has not completed yet
	requested int
}

// NewSupervised builds a supervised rejuvenator over variant and fault.
// policy decides when a restart is requested; restarter and child name
// the supervision-tree target.
func NewSupervised[I, O any](variant core.Variant[I, O], fault faultmodel.AgingFault, policy Policy, rng *xrand.Rand, restarter Restarter, child string) (*Supervised[I, O], error) {
	if restarter == nil {
		return nil, errors.New("rejuv: nil restarter")
	}
	if policy == nil {
		return nil, errors.New("rejuv: nil policy")
	}
	if child == "" {
		return nil, errors.New("rejuv: empty child name")
	}
	// The inner rejuvenator never self-rejuvenates: the reset is owned by
	// the supervised restart path (ChildInit).
	rej, err := NewRejuvenator(variant, fault, NeverPolicy{}, rng)
	if err != nil {
		return nil, err
	}
	return &Supervised[I, O]{
		rej:       rej,
		policy:    policy,
		restarter: restarter,
		child:     child,
	}, nil
}

var _ core.Executor[int, int] = (*Supervised[int, int])(nil)

// Inner exposes the underlying rejuvenator (observer wiring, Env
// inspection, FragmentationGrowth/LeakPerRequest tuning).
func (s *Supervised[I, O]) Inner() *Rejuvenator[I, O] { return s.rej }

// RestartsRequested reports how many supervised restarts the policy has
// asked for.
func (s *Supervised[I, O]) RestartsRequested() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requested
}

// Rejuvenations reports how many restarts completed (ChildInit ran).
func (s *Supervised[I, O]) Rejuvenations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rej.Rejuvenations()
}

// ChildInit is the supervise.ChildSpec.Init body: it performs the
// deferred environment reset as part of the supervised restart. Its
// completion is what ends the restart's measured downtime.
func (s *Supervised[I, O]) ChildInit(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rej.env.Rejuvenate()
	s.rej.rejuvenations++
	s.pending = false
	return nil
}

// Execute implements core.Executor: it applies the policy — requesting
// a supervised restart instead of rejuvenating in place — then serves
// the request through the aging process.
func (s *Supervised[I, O]) Execute(ctx context.Context, input I) (O, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.pending && s.policy.ShouldRejuvenate(s.rej.env) {
		// One request in flight at a time: repeat triggers while the
		// restart is queued must not flood the supervisor.
		if err := s.restarter.Restart(s.child); err == nil {
			s.pending = true
			s.requested++
		}
	}
	return s.rej.Execute(ctx, input)
}

// Package rejuv implements software rejuvenation (Huang, Kintala et al.):
// the preventive use of environment redundancy. Some systems fail due to
// "age" — resource leaks, fragmentation, state corruption accumulating
// over time — and a proper reinitialization of the volatile state avoids
// such failures before they occur. Rejuvenation acts independently of any
// failure detection, so in the taxonomy it is a preventive mechanism with
// no failure-triggered adjudicator.
//
// The package provides:
//
//   - Rejuvenator: a serving wrapper that rejuvenates a simulated aging
//     process according to a policy (periodic or threshold-based);
//   - the checkpoint-assisted completion-time model of Garg, Huang,
//     Kintala and Trivedi ("Minimizing completion time of a program by
//     checkpointing and rejuvenation"): a long-running program
//     checkpoints every c work units and rejuvenates every N checkpoints;
//     the experiment sweeps N to locate the completion-time optimum.
//
// Taxonomy position (paper Table 2): deliberate intention, environment
// redundancy, preventive, Heisenbugs (aging faults).
package rejuv

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Policy decides when to rejuvenate, given the process environment.
type Policy interface {
	// ShouldRejuvenate reports whether the process should be rejuvenated
	// before serving the next request.
	ShouldRejuvenate(env *faultmodel.Env) bool
	// Name identifies the policy in reports.
	Name() string
}

// PeriodicPolicy rejuvenates every Every served requests.
type PeriodicPolicy struct {
	// Every is the rejuvenation period in requests; values < 1 disable
	// rejuvenation.
	Every int
}

var _ Policy = PeriodicPolicy{}

// Name implements Policy.
func (p PeriodicPolicy) Name() string { return fmt.Sprintf("periodic(%d)", p.Every) }

// ShouldRejuvenate implements Policy.
func (p PeriodicPolicy) ShouldRejuvenate(env *faultmodel.Env) bool {
	return p.Every >= 1 && env.Age >= p.Every
}

// ThresholdPolicy rejuvenates when observed aging indicators exceed
// thresholds, the "condition-based" flavor of rejuvenation.
type ThresholdPolicy struct {
	// MaxFragmentation triggers rejuvenation when Env.Fragmentation
	// reaches this level; <= 0 disables the check.
	MaxFragmentation float64
	// MaxLeakedBytes triggers rejuvenation when Env.LeakedBytes reaches
	// this level; <= 0 disables the check.
	MaxLeakedBytes int
}

var _ Policy = ThresholdPolicy{}

// Name implements Policy.
func (p ThresholdPolicy) Name() string { return "threshold" }

// ShouldRejuvenate implements Policy.
func (p ThresholdPolicy) ShouldRejuvenate(env *faultmodel.Env) bool {
	if p.MaxFragmentation > 0 && env.Fragmentation >= p.MaxFragmentation {
		return true
	}
	if p.MaxLeakedBytes > 0 && env.LeakedBytes >= p.MaxLeakedBytes {
		return true
	}
	return false
}

// HealthPolicy rejuvenates when a live health signal degrades: the
// feedback flavor of rejuvenation, driven by the observation layer's
// diagnosis instead of a fixed period or raw environment thresholds.
// Wire Score to the diagnosis engine watching the same executor, e.g.
//
//	engine := health.New(health.Config{})
//	r, _ := rejuv.NewRejuvenator(v, fault, rejuv.HealthPolicy{
//		Score:    engine.ScoreFunc("rejuvenator"),
//		MinScore: 0.6,
//		MinAge:   10,
//	}, rng)
//	r.SetObserver(engine)
//
// EWMA scores recover gradually after a rejuvenation, so MinAge keeps
// the policy from re-triggering on every request while the score climbs
// back; Env.Age resets on rejuvenation, making it the natural cooldown
// clock.
type HealthPolicy struct {
	// Score returns the current health score in [0, 1] of the process
	// being served (typically health.Engine.ScoreFunc("rejuvenator")).
	// A nil Score never triggers.
	Score func() float64
	// MinScore is the threshold below which rejuvenation triggers.
	MinScore float64
	// MinAge is the minimum number of requests since the last
	// rejuvenation before the policy may trigger again; values < 1 allow
	// back-to-back rejuvenations.
	MinAge int
}

var _ Policy = HealthPolicy{}

// Name implements Policy.
func (p HealthPolicy) Name() string { return fmt.Sprintf("health(<%.2f)", p.MinScore) }

// ShouldRejuvenate implements Policy.
func (p HealthPolicy) ShouldRejuvenate(env *faultmodel.Env) bool {
	if p.Score == nil || env.Age < p.MinAge {
		return false
	}
	return p.Score() < p.MinScore
}

// NeverPolicy never rejuvenates (the baseline).
type NeverPolicy struct{}

var _ Policy = NeverPolicy{}

// Name implements Policy.
func (NeverPolicy) Name() string { return "never" }

// ShouldRejuvenate implements Policy.
func (NeverPolicy) ShouldRejuvenate(*faultmodel.Env) bool { return false }

// Rejuvenator serves requests through an aging process, applying the
// rejuvenation policy before each request. It is the technique executor
// for the taxonomy entry.
type Rejuvenator[I, O any] struct {
	variant core.Variant[I, O]
	policy  Policy
	env     *faultmodel.Env
	fault   faultmodel.AgingFault
	rng     *xrand.Rand

	// FragmentationGrowth is the per-request fragmentation increment.
	FragmentationGrowth float64
	// LeakPerRequest is the per-request resource leak in bytes.
	LeakPerRequest int

	rejuvenations int
	observer      obs.Observer
}

// rejuvenatorName identifies the rejuvenator in observation events.
const rejuvenatorName = "rejuvenator"

var _ core.Executor[int, int] = (*Rejuvenator[int, int])(nil)

// NewRejuvenator wraps variant in an aging process governed by fault and
// rejuvenated according to policy.
func NewRejuvenator[I, O any](variant core.Variant[I, O], fault faultmodel.AgingFault, policy Policy, rng *xrand.Rand) (*Rejuvenator[I, O], error) {
	if variant == nil {
		return nil, core.ErrNoVariants
	}
	if policy == nil {
		return nil, errors.New("rejuv: nil policy")
	}
	if rng == nil {
		return nil, errors.New("rejuv: nil rng")
	}
	return &Rejuvenator[I, O]{
		variant:             variant,
		policy:              policy,
		env:                 faultmodel.DefaultEnv(),
		fault:               fault,
		rng:                 rng,
		FragmentationGrowth: 0.01,
	}, nil
}

// SetMetrics attaches a metrics collector; it is observation shorthand
// for SetObserver(obs.ForMetrics(m)) and keeps the legacy counter
// semantics: every request counts one variant execution, and only an
// activated aging fault counts as a detected failure.
func (r *Rejuvenator[I, O]) SetMetrics(m *core.Metrics) { r.SetObserver(obs.ForMetrics(m)) }

// SetObserver attaches an observer. Rejuvenations are reported as
// rollback events (the environment is restored to its initial state);
// aging-fault activations fail the request with the failure detected.
// A plain variant error is not adjudicated — rejuvenation is preventive
// and has no failure detector of its own. Repeated calls combine.
func (r *Rejuvenator[I, O]) SetObserver(o obs.Observer) {
	r.observer = obs.Combine(r.observer, o)
}

// Rejuvenations reports how many times the process was rejuvenated.
func (r *Rejuvenator[I, O]) Rejuvenations() int { return r.rejuvenations }

// Env exposes the process environment for inspection.
func (r *Rejuvenator[I, O]) Env() *faultmodel.Env { return r.env }

// Execute implements core.Executor: it applies the policy, then serves
// the request through the aging process; an activated aging fault fails
// the request.
func (r *Rejuvenator[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	o := r.observer
	var (
		req   uint64
		start time.Time
	)
	if o != nil {
		req = obs.NextRequestID()
		start = time.Now()
		o.RequestStart(rejuvenatorName, req)
	}
	if r.policy.ShouldRejuvenate(r.env) {
		r.env.Rejuvenate()
		r.rejuvenations++
		if o != nil {
			o.Rollback(rejuvenatorName, req)
		}
	}
	r.env.Tick(r.FragmentationGrowth, r.LeakPerRequest)
	inv := faultmodel.Invocation{Env: r.env, Rand: r.rng}
	if r.fault.Activated(inv) {
		err := fmt.Errorf("aging failure at age %d: %w",
			r.env.Age, &faultmodel.ActivatedError{Fault: r.fault.Name(), Variant: r.variant.Name()})
		if o != nil {
			// The fault preempts the variant, but the invocation still
			// counts as one (failed) execution of the aging process.
			o.VariantStart(rejuvenatorName, r.variant.Name(), req)
			o.VariantEnd(rejuvenatorName, r.variant.Name(), req, 0, err)
			o.Adjudicated(rejuvenatorName, req, false, true)
			o.RequestEnd(rejuvenatorName, req, time.Since(start), obs.OutcomeFailed)
		}
		return zero, err
	}
	var vstart time.Time
	if o != nil {
		o.VariantStart(rejuvenatorName, r.variant.Name(), req)
		vstart = time.Now()
	}
	out, err := r.variant.Execute(ctx, input)
	if o != nil {
		o.VariantEnd(rejuvenatorName, r.variant.Name(), req, time.Since(vstart), err)
		if err == nil {
			o.Adjudicated(rejuvenatorName, req, true, false)
			o.RequestEnd(rejuvenatorName, req, time.Since(start), obs.OutcomeSuccess)
		} else {
			// A plain variant error is not adjudicated: rejuvenation is
			// preventive and brings no failure detector of its own.
			o.RequestEnd(rejuvenatorName, req, time.Since(start), obs.OutcomeFailed)
		}
	}
	return out, err
}

// CompletionConfig parameterizes the Garg et al. completion-time model.
type CompletionConfig struct {
	// Work is the total work in units; each unit costs one time unit.
	Work int
	// CheckpointInterval is the number of work units between checkpoints.
	CheckpointInterval int
	// CheckpointCost is the time cost of taking one checkpoint.
	CheckpointCost float64
	// RejuvenateEveryN rejuvenates after every N checkpoints; 0 disables
	// rejuvenation.
	RejuvenateEveryN int
	// RejuvenationCost is the time cost of one rejuvenation.
	RejuvenationCost float64
	// RecoveryCost is the time cost of recovering from a failure (repair
	// plus restart), on top of the lost work since the last checkpoint.
	RecoveryCost float64
	// Fault is the aging law; its hazard is evaluated per work unit
	// against the age (work units since the last rejuvenation, failure
	// recovery, or start).
	Fault faultmodel.AgingFault
}

// Validate checks the configuration.
func (c CompletionConfig) Validate() error {
	if c.Work < 1 || c.CheckpointInterval < 1 {
		return errors.New("rejuv: work and checkpoint interval must be positive")
	}
	if c.CheckpointCost < 0 || c.RejuvenationCost < 0 || c.RecoveryCost < 0 {
		return errors.New("rejuv: costs must be non-negative")
	}
	if c.RejuvenateEveryN < 0 {
		return errors.New("rejuv: RejuvenateEveryN must be non-negative")
	}
	return nil
}

// SimulateCompletion runs the completion-time model once and returns the
// total time to finish all work units.
//
// The process executes work units sequentially. Every CheckpointInterval
// completed units it pays CheckpointCost and commits progress. After
// every RejuvenateEveryN checkpoints it pays RejuvenationCost and resets
// its age. When the aging fault activates during a unit, the process pays
// RecoveryCost, loses the units completed since the last checkpoint, and
// restarts from the checkpoint with a fresh age (a failure-triggered
// restart also rejuvenates, as in the Garg model).
func SimulateCompletion(cfg CompletionConfig, rng *xrand.Rand) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if rng == nil {
		return 0, errors.New("rejuv: nil rng")
	}
	var (
		clock          float64
		committed      int // work units safely checkpointed
		sinceCkp       int // units done since last checkpoint
		age            int // units since last rejuvenation/restart
		ckpsSinceRejuv int
	)
	for committed+sinceCkp < cfg.Work {
		// Attempt one work unit.
		clock++
		age++
		if rng.Bool(cfg.Fault.Hazard(age)) {
			// Failure: lose uncommitted progress, pay recovery, restart
			// with fresh age.
			clock += cfg.RecoveryCost
			sinceCkp = 0
			age = 0
			ckpsSinceRejuv = 0
			continue
		}
		sinceCkp++
		if sinceCkp < cfg.CheckpointInterval && committed+sinceCkp < cfg.Work {
			continue
		}
		// Checkpoint (also taken at completion to commit the tail).
		clock += cfg.CheckpointCost
		committed += sinceCkp
		sinceCkp = 0
		ckpsSinceRejuv++
		if cfg.RejuvenateEveryN > 0 && ckpsSinceRejuv >= cfg.RejuvenateEveryN && committed < cfg.Work {
			clock += cfg.RejuvenationCost
			age = 0
			ckpsSinceRejuv = 0
		}
	}
	return clock, nil
}

// MeanCompletion estimates the expected completion time over trials runs.
func MeanCompletion(cfg CompletionConfig, trials int, rng *xrand.Rand) (float64, error) {
	if trials < 1 {
		return 0, errors.New("rejuv: trials must be positive")
	}
	var sum float64
	for i := 0; i < trials; i++ {
		t, err := SimulateCompletion(cfg, rng)
		if err != nil {
			return 0, err
		}
		sum += t
	}
	return sum / float64(trials), nil
}

// Package datadiv implements data diversity (Ammann and Knight): the same
// program is re-executed on logically equivalent re-expressions of the
// input, escaping failure regions of the input space without requiring
// multiple program versions. Re-expressions are exact (same expected
// output) or approximate (output acceptable within a tolerance).
//
// Two execution disciplines are provided, mirroring the paper:
//
//   - RetryBlock: the retry-block discipline borrowed from recovery
//     blocks — run on the original input, and on failure retry on
//     re-expressed inputs (sequential alternatives pattern, explicit
//     adjudicator);
//   - NCopy: N-copy programming, the data analogue of N-version
//     programming — run N copies on re-expressed inputs in parallel and
//     vote (parallel evaluation pattern, implicit adjudicator).
//
// The package also implements data diversity for security (Nguyen-Tuong,
// Evans, Knight et al.): an N-variant data representation in which
// identical concrete values have different interpretations per variant,
// so a data-corruption attack that writes the same concrete bytes into
// every variant is detected by comparison.
//
// Taxonomy position (paper Table 2): deliberate intention, data
// redundancy, reactive explicit/implicit adjudicator, development faults
// (and malicious faults for the security form).
package datadiv

import (
	"context"
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Reexpression transforms an input into a logically equivalent one.
type Reexpression[I any] struct {
	// Name identifies the re-expression in reports.
	Name string
	// Apply produces the re-expressed input. rng may be used for
	// randomized re-expression families; it is never nil when invoked
	// through RetryBlock or NCopy.
	Apply func(input I, rng *xrand.Rand) I
	// Exact reports whether the re-expression preserves the exact
	// expected output (true) or only an acceptable approximation (false).
	Exact bool
}

// RetryBlock is the retry-block discipline of data diversity.
type RetryBlock[I, O any] struct {
	program core.Variant[I, O]
	test    core.AcceptanceTest[I, O]
	res     []Reexpression[I]
	budget  int
	rng     *xrand.Rand
	metrics *core.Metrics
}

var _ core.Executor[int, int] = (*RetryBlock[int, int])(nil)

// NewRetryBlock builds a retry block: program runs on the original input
// first; when the explicit acceptance test rejects the result (or the
// program fails), the input is re-expressed and the program retried, up
// to budget total attempts. Re-expressions are applied in order, cycling
// if the budget exceeds their number.
func NewRetryBlock[I, O any](program core.Variant[I, O], test core.AcceptanceTest[I, O], res []Reexpression[I], budget int, rng *xrand.Rand) (*RetryBlock[I, O], error) {
	if program == nil {
		return nil, core.ErrNoVariants
	}
	if test == nil {
		return nil, errors.New("datadiv: nil acceptance test")
	}
	if len(res) == 0 {
		return nil, errors.New("datadiv: no re-expressions")
	}
	if budget < 1 {
		return nil, errors.New("datadiv: budget must be at least 1")
	}
	if rng == nil {
		return nil, errors.New("datadiv: nil rng")
	}
	rs := make([]Reexpression[I], len(res))
	copy(rs, res)
	return &RetryBlock[I, O]{program: program, test: test, res: rs, budget: budget, rng: rng}, nil
}

// SetMetrics attaches a metrics collector.
func (r *RetryBlock[I, O]) SetMetrics(m *core.Metrics) { r.metrics = m }

// Execute implements core.Executor.
func (r *RetryBlock[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	if r.metrics != nil {
		r.metrics.RecordRequest()
	}
	attempt := func(in I) (O, error) {
		out, err := r.program.Execute(ctx, in)
		if err != nil {
			return zero, err
		}
		if err := r.test(in, out); err != nil {
			return zero, err
		}
		return out, nil
	}

	attempts := 1
	out, lastErr := attempt(input)
	if lastErr == nil {
		r.record(attempts, true)
		return out, nil
	}
	for i := 0; attempts < r.budget; i++ {
		if err := ctx.Err(); err != nil {
			r.record(attempts, false)
			return zero, err
		}
		re := r.res[i%len(r.res)]
		attempts++
		out, err := attempt(re.Apply(input, r.rng))
		if err == nil {
			r.record(attempts, true)
			return out, nil
		}
		lastErr = fmt.Errorf("re-expression %s: %w", re.Name, err)
	}
	r.record(attempts, false)
	return zero, fmt.Errorf("retry block exhausted after %d attempts: %w: %w",
		attempts, core.ErrAllVariantsFailed, lastErr)
}

func (r *RetryBlock[I, O]) record(attempts int, succeeded bool) {
	if r.metrics == nil {
		return
	}
	r.metrics.RecordVariantExecutions(attempts)
	if attempts > 1 {
		r.metrics.RecordFailureDetected()
	}
	switch {
	case !succeeded:
		r.metrics.RecordFailure()
	case attempts > 1:
		r.metrics.RecordFailureMasked()
	}
}

// NCopy is N-copy programming: the data analogue of N-version
// programming. The single program runs on n re-expressed copies of the
// input (the first copy is the original input) and an implicit vote
// adjudicates the outputs.
type NCopy[I, O any] struct {
	program core.Variant[I, O]
	res     []Reexpression[I]
	n       int
	adj     core.Adjudicator[O]
	rng     *xrand.Rand
	metrics *core.Metrics
}

var _ core.Executor[int, int] = (*NCopy[int, int])(nil)

// NewNCopy builds an N-copy executor with n copies. Copy 0 runs on the
// original input; copy i runs on res[(i-1) mod len(res)] applied to the
// input. adj adjudicates the n outputs (a vote.Plurality is the usual
// choice because approximate re-expressions may produce near-but-unequal
// outputs under exact equality; pass a tolerance-aware vote for numeric
// outputs).
func NewNCopy[I, O any](program core.Variant[I, O], res []Reexpression[I], n int, adj core.Adjudicator[O], rng *xrand.Rand) (*NCopy[I, O], error) {
	if program == nil {
		return nil, core.ErrNoVariants
	}
	if len(res) == 0 {
		return nil, errors.New("datadiv: no re-expressions")
	}
	if n < 2 {
		return nil, errors.New("datadiv: n-copy needs at least 2 copies")
	}
	if adj == nil {
		return nil, errors.New("datadiv: nil adjudicator")
	}
	if rng == nil {
		return nil, errors.New("datadiv: nil rng")
	}
	rs := make([]Reexpression[I], len(res))
	copy(rs, res)
	return &NCopy[I, O]{program: program, res: rs, n: n, adj: adj, rng: rng}, nil
}

// SetMetrics attaches a metrics collector.
func (c *NCopy[I, O]) SetMetrics(m *core.Metrics) { c.metrics = m }

// Execute implements core.Executor. Copies run sequentially over the
// deterministic rng (data diversity replicates data, not processes; the
// single program is the unit of execution).
func (c *NCopy[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	if c.metrics != nil {
		c.metrics.RecordRequest()
		c.metrics.RecordVariantExecutions(c.n)
	}
	results := make([]core.Result[O], c.n)
	for i := 0; i < c.n; i++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		in := input
		name := "copy-0-original"
		if i > 0 {
			re := c.res[(i-1)%len(c.res)]
			in = re.Apply(input, c.rng)
			name = fmt.Sprintf("copy-%d-%s", i, re.Name)
		}
		out, err := c.program.Execute(ctx, in)
		results[i] = core.Result[O]{Variant: name, Value: out, Err: err}
	}
	value, err := c.adj.Adjudicate(results)
	if c.metrics != nil {
		anyFailed := false
		for _, r := range results {
			if !r.OK() {
				anyFailed = true
				break
			}
		}
		if anyFailed {
			c.metrics.RecordFailureDetected()
		}
		switch {
		case err != nil:
			c.metrics.RecordFailure()
		case anyFailed:
			c.metrics.RecordFailureMasked()
		}
	}
	return value, err
}

package datadiv

import (
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Reusable re-expression families. Ammann and Knight's data diversity
// requires per-application re-expression algorithms; the families below
// cover the standard cases their paper discusses for numeric programs —
// translation, scaling, and permutation — as exact re-expressions (paired
// with output decoders where needed) and small random perturbations as
// approximate ones.

// TranslateInts returns an exact re-expression for integer-slice inputs
// of translation-invariant computations (e.g. variance, range): every
// element is shifted by a random offset in [1, maxOffset].
func TranslateInts(maxOffset int) Reexpression[[]int] {
	return Reexpression[[]int]{
		Name: "translate",
		Apply: func(in []int, rng *xrand.Rand) []int {
			offset := 1 + rng.Intn(maxOffset)
			out := make([]int, len(in))
			for i, v := range in {
				out[i] = v + offset
			}
			return out
		},
		Exact: true,
	}
}

// PermuteInts returns an exact re-expression for integer-slice inputs of
// order-invariant computations (e.g. sum, min, max, median): the elements
// are randomly permuted.
func PermuteInts() Reexpression[[]int] {
	return Reexpression[[]int]{
		Name: "permute",
		Apply: func(in []int, rng *xrand.Rand) []int {
			out := make([]int, len(in))
			copy(out, in)
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		},
		Exact: true,
	}
}

// ScaleFloat returns an exact re-expression for scale-equivariant
// float computations f with f(c*x) = c*f(x) (e.g. sqrt is equivariant
// with c² scaling; absolute value, max). The caller decodes the output by
// dividing by the factor it registered; Factor reports the scale used on
// the most recent application.
type ScaleFloat struct {
	// Factors are the candidate scale factors drawn uniformly.
	Factors []float64

	lastFactor float64
}

// NewScaleFloat builds a scaling re-expression family with the given
// candidate factors (defaults to {2, 4, 8} when empty).
func NewScaleFloat(factors ...float64) *ScaleFloat {
	if len(factors) == 0 {
		factors = []float64{2, 4, 8}
	}
	fs := make([]float64, len(factors))
	copy(fs, factors)
	return &ScaleFloat{Factors: fs, lastFactor: 1}
}

// LastFactor reports the factor used by the most recent Apply.
func (s *ScaleFloat) LastFactor() float64 { return s.lastFactor }

// Reexpression returns the re-expression view of the family.
func (s *ScaleFloat) Reexpression() Reexpression[float64] {
	return Reexpression[float64]{
		Name: "scale",
		Apply: func(in float64, rng *xrand.Rand) float64 {
			s.lastFactor = s.Factors[rng.Intn(len(s.Factors))]
			return in * s.lastFactor
		},
		Exact: true,
	}
}

// JitterFloat returns an approximate re-expression perturbing the input
// by a uniform relative amount within ±magnitude (e.g. 0.001 for 0.1%),
// for programs whose outputs are acceptable within a tolerance.
func JitterFloat(magnitude float64) Reexpression[float64] {
	return Reexpression[float64]{
		Name: "jitter",
		Apply: func(in float64, rng *xrand.Rand) float64 {
			rel := (2*rng.Float64() - 1) * magnitude
			return in * (1 + rel)
		},
		Exact: false,
	}
}

package datadiv

import (
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Data diversity for security: N-variant data representations
// (Nguyen-Tuong, Evans, Knight, Cox, Davidson — "Security through
// redundant data diversity"). A value is stored in N variants under
// variant-specific transformations (here XOR masks), with the property
// that identical concrete representations have different interpretations.
// An attacker who corrupts the stored representations with the same
// concrete value in every variant — the only thing a single exploit
// payload can do — necessarily produces diverging interpretations, which
// the comparison detects.

// ErrCorruptionDetected reports that the variant interpretations of a
// cell diverge: the stored data was corrupted.
var ErrCorruptionDetected = errors.New("datadiv: data corruption detected by variant comparison")

// NVariantCell stores one uint64 value under n variant-specific XOR
// masks. The zero value is unusable; create cells with NewNVariantCell.
type NVariantCell struct {
	masks []uint64
	cells []uint64
}

// NewNVariantCell creates a cell with n variants whose masks are drawn
// from rng. n must be at least 2 for corruption to be detectable.
func NewNVariantCell(n int, rng *xrand.Rand) (*NVariantCell, error) {
	if n < 2 {
		return nil, errors.New("datadiv: n-variant cell needs at least 2 variants")
	}
	if rng == nil {
		return nil, errors.New("datadiv: nil rng")
	}
	masks := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := range masks {
		m := rng.Uint64()
		for seen[m] {
			m = rng.Uint64()
		}
		seen[m] = true
		masks[i] = m
	}
	c := &NVariantCell{masks: masks, cells: make([]uint64, n)}
	c.Set(0)
	return c, nil
}

// N returns the number of variants.
func (c *NVariantCell) N() int { return len(c.masks) }

// Set stores value in every variant under its mask.
func (c *NVariantCell) Set(value uint64) {
	for i, m := range c.masks {
		c.cells[i] = value ^ m
	}
}

// Get decodes all variants and compares their interpretations. If they
// agree, the common value is returned; any divergence reports
// ErrCorruptionDetected.
func (c *NVariantCell) Get() (uint64, error) {
	v0 := c.cells[0] ^ c.masks[0]
	for i := 1; i < len(c.cells); i++ {
		if c.cells[i]^c.masks[i] != v0 {
			return 0, fmt.Errorf("variant %d disagrees: %w", i, ErrCorruptionDetected)
		}
	}
	return v0, nil
}

// CorruptUniform simulates a data-corruption attack that overwrites the
// concrete representation of every variant with the same raw value — the
// best a mask-oblivious exploit can achieve.
func (c *NVariantCell) CorruptUniform(raw uint64) {
	for i := range c.cells {
		c.cells[i] = raw
	}
}

// CorruptVariant simulates corrupting the concrete representation of a
// single variant.
func (c *NVariantCell) CorruptVariant(i int, raw uint64) error {
	if i < 0 || i >= len(c.cells) {
		return fmt.Errorf("datadiv: variant %d out of range", i)
	}
	c.cells[i] = raw
	return nil
}

package datadiv

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// knightProgram models the canonical data-diversity workload: a program
// with an input-dependent failure region. It computes x*2 but fails when
// x falls in [100, 110) — a narrow failure region that a small input
// perturbation escapes.
func knightProgram() core.Variant[int, int] {
	return core.NewVariant("knight", func(_ context.Context, x int) (int, error) {
		if x >= 100 && x < 110 {
			return 0, errors.New("failure region")
		}
		return x * 2, nil
	})
}

// shiftReexpression moves the input by delta and compensates in the
// output domain via the acceptance test; for the linear program f(x)=2x,
// re-expressing x as x+delta yields f(x+delta) = f(x) + 2*delta, so an
// exact re-expression pairs the shift with output correction. For test
// simplicity we use a program-aware exact re-expression on a wrapper
// input type.
type divInput struct {
	X      int
	Adjust int // output correction accumulated by re-expressions
}

func wrappedProgram() core.Variant[divInput, int] {
	return core.NewVariant("knight", func(_ context.Context, in divInput) (int, error) {
		if in.X >= 100 && in.X < 110 {
			return 0, errors.New("failure region")
		}
		return in.X*2 - in.Adjust, nil
	})
}

func shiftBy(delta int) Reexpression[divInput] {
	return Reexpression[divInput]{
		Name: "shift",
		Apply: func(in divInput, _ *xrand.Rand) divInput {
			return divInput{X: in.X + delta, Adjust: in.Adjust + 2*delta}
		},
		Exact: true,
	}
}

func acceptAnything[I any]() core.AcceptanceTest[I, int] {
	return func(_ I, _ int) error { return nil }
}

func TestRetryBlockSucceedsOnCleanInput(t *testing.T) {
	rb, err := NewRetryBlock(wrappedProgram(), acceptAnything[divInput](),
		[]Reexpression[divInput]{shiftBy(20)}, 3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rb.Execute(context.Background(), divInput{X: 5})
	if err != nil || got != 10 {
		t.Errorf("= (%d, %v), want (10, nil)", got, err)
	}
}

func TestRetryBlockEscapesFailureRegion(t *testing.T) {
	var m core.Metrics
	rb, err := NewRetryBlock(wrappedProgram(), acceptAnything[divInput](),
		[]Reexpression[divInput]{shiftBy(20)}, 3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rb.SetMetrics(&m)
	// x=105 is inside the failure region; shifted to 125 it succeeds, and
	// the exact re-expression makes the corrected output equal 2*105.
	got, err := rb.Execute(context.Background(), divInput{X: 105})
	if err != nil || got != 210 {
		t.Errorf("= (%d, %v), want (210, nil)", got, err)
	}
	s := m.Snapshot()
	if s.VariantExecutions != 2 || s.FailuresMasked != 1 {
		t.Errorf("metrics = %+v", s)
	}
}

func TestRetryBlockBudgetExhaustion(t *testing.T) {
	// A shift of 2 keeps x=100 inside [100,110) for the whole budget.
	rb, err := NewRetryBlock(wrappedProgram(), acceptAnything[divInput](),
		[]Reexpression[divInput]{shiftBy(2)}, 3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rb.Execute(context.Background(), divInput{X: 100})
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryBlockCyclesReexpressions(t *testing.T) {
	rb, err := NewRetryBlock(wrappedProgram(), acceptAnything[divInput](),
		[]Reexpression[divInput]{shiftBy(2), shiftBy(4)}, 6, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// x=104: +2 → 106 (fails), +4 → 108 (fails), then cycling re-applies
	// the list from the start on the *original* input, so attempts stay
	// within {106, 108} and the block exhausts. This verifies cycling
	// doesn't accidentally compound shifts.
	_, err = rb.Execute(context.Background(), divInput{X: 104})
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryBlockAcceptanceRejection(t *testing.T) {
	rejectOdd := func(_ divInput, out int) error {
		if out%2 != 0 {
			return core.ErrNotAccepted
		}
		return nil
	}
	prog := core.NewVariant("odd", func(_ context.Context, in divInput) (int, error) {
		return in.X, nil // odd inputs produce odd (rejected) outputs
	})
	rb, err := NewRetryBlock(prog, rejectOdd,
		[]Reexpression[divInput]{{
			Name:  "next-even",
			Apply: func(in divInput, _ *xrand.Rand) divInput { return divInput{X: in.X + 1} },
			Exact: false,
		}}, 2, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rb.Execute(context.Background(), divInput{X: 7})
	if err != nil || got != 8 {
		t.Errorf("= (%d, %v), want approximate result 8", got, err)
	}
}

func TestRetryBlockConstructorValidation(t *testing.T) {
	prog := wrappedProgram()
	res := []Reexpression[divInput]{shiftBy(1)}
	rng := xrand.New(1)
	if _, err := NewRetryBlock[divInput, int](nil, acceptAnything[divInput](), res, 1, rng); err == nil {
		t.Error("nil program")
	}
	if _, err := NewRetryBlock(prog, nil, res, 1, rng); err == nil {
		t.Error("nil test")
	}
	if _, err := NewRetryBlock(prog, acceptAnything[divInput](), nil, 1, rng); err == nil {
		t.Error("no re-expressions")
	}
	if _, err := NewRetryBlock(prog, acceptAnything[divInput](), res, 0, rng); err == nil {
		t.Error("zero budget")
	}
	if _, err := NewRetryBlock(prog, acceptAnything[divInput](), res, 1, nil); err == nil {
		t.Error("nil rng")
	}
}

func TestNCopyVotesAcrossCopies(t *testing.T) {
	var m core.Metrics
	nc, err := NewNCopy(wrappedProgram(),
		[]Reexpression[divInput]{shiftBy(20), shiftBy(40)},
		3,
		vote.Plurality(core.EqualOf[int]()),
		xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	nc.SetMetrics(&m)
	// Original input 105 fails; both re-expressed copies succeed and
	// agree on the corrected output 210.
	got, err := nc.Execute(context.Background(), divInput{X: 105})
	if err != nil || got != 210 {
		t.Errorf("= (%d, %v), want (210, nil)", got, err)
	}
	if s := m.Snapshot(); s.FailuresMasked != 1 || s.VariantExecutions != 3 {
		t.Errorf("metrics = %+v", s)
	}
}

func TestNCopyAllCopiesInFailureRegion(t *testing.T) {
	nc, err := NewNCopy(wrappedProgram(),
		[]Reexpression[divInput]{shiftBy(2)},
		2,
		vote.Plurality(core.EqualOf[int]()),
		xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = nc.Execute(context.Background(), divInput{X: 101})
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestNCopyConstructorValidation(t *testing.T) {
	prog := wrappedProgram()
	res := []Reexpression[divInput]{shiftBy(1)}
	adj := vote.Plurality(core.EqualOf[int]())
	rng := xrand.New(1)
	if _, err := NewNCopy[divInput, int](nil, res, 2, adj, rng); err == nil {
		t.Error("nil program")
	}
	if _, err := NewNCopy(prog, nil, 2, adj, rng); err == nil {
		t.Error("no re-expressions")
	}
	if _, err := NewNCopy(prog, res, 1, adj, rng); err == nil {
		t.Error("n < 2")
	}
	if _, err := NewNCopy(prog, res, 2, nil, rng); err == nil {
		t.Error("nil adjudicator")
	}
	if _, err := NewNCopy(prog, res, 2, adj, nil); err == nil {
		t.Error("nil rng")
	}
}

func TestEscapeProbabilityGrowsWithCopies(t *testing.T) {
	// Statistical check of the data-diversity premise: with a random
	// failure region of width 10 in [0,1000), the probability that at
	// least one of k random re-expressions escapes grows with k.
	rng := xrand.New(42)
	escape := func(k int) float64 {
		const trials = 4000
		escaped := 0
		for tr := 0; tr < trials; tr++ {
			lo := rng.Intn(990)
			x := lo + rng.Intn(10) // input inside the failure region
			for i := 0; i < k; i++ {
				y := (x + 1 + rng.Intn(999)) % 1000
				if y < lo || y >= lo+10 {
					escaped++
					break
				}
			}
		}
		return float64(escaped) / trials
	}
	p1, p3 := escape(1), escape(3)
	if !(p3 > p1) {
		t.Errorf("escape probability should grow with retries: p1=%f p3=%f", p1, p3)
	}
	if math.Abs(p1-0.99) > 0.02 { // 1 - 9/999 ≈ 0.991
		t.Errorf("p1 = %f, want ≈0.99", p1)
	}
}

func TestNVariantCellRoundTrip(t *testing.T) {
	c, err := NewNVariantCell(3, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
	c.Set(12345)
	got, err := c.Get()
	if err != nil || got != 12345 {
		t.Errorf("Get = (%d, %v)", got, err)
	}
}

func TestNVariantCellDetectsUniformCorruption(t *testing.T) {
	c, err := NewNVariantCell(2, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	c.Set(42)
	c.CorruptUniform(0xdeadbeef)
	if _, err := c.Get(); !errors.Is(err, ErrCorruptionDetected) {
		t.Errorf("err = %v, want ErrCorruptionDetected", err)
	}
}

func TestNVariantCellDetectsSingleVariantCorruption(t *testing.T) {
	c, err := NewNVariantCell(3, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	c.Set(42)
	if err := c.CorruptVariant(1, 0x1234); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(); !errors.Is(err, ErrCorruptionDetected) {
		t.Errorf("err = %v, want ErrCorruptionDetected", err)
	}
	if err := c.CorruptVariant(9, 0); err == nil {
		t.Error("out-of-range variant: want error")
	}
}

func TestNVariantCellConstructorValidation(t *testing.T) {
	if _, err := NewNVariantCell(1, xrand.New(1)); err == nil {
		t.Error("n < 2: want error")
	}
	if _, err := NewNVariantCell(2, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

// Property: set/get round-trips any value, and uniform corruption with
// any raw value is always detected (masks are distinct by construction).
func TestNVariantCellProperties(t *testing.T) {
	c, err := NewNVariantCell(3, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	f := func(v, raw uint64) bool {
		c.Set(v)
		got, err := c.Get()
		if err != nil || got != v {
			return false
		}
		c.CorruptUniform(raw)
		_, err = c.Get()
		return errors.Is(err, ErrCorruptionDetected)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package datadiv

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

func TestTranslateIntsShiftsUniformly(t *testing.T) {
	re := TranslateInts(10)
	rng := xrand.New(1)
	in := []int{1, 5, 9}
	out := re.Apply(in, rng)
	if len(out) != len(in) {
		t.Fatalf("length changed: %v", out)
	}
	offset := out[0] - in[0]
	if offset < 1 || offset > 10 {
		t.Errorf("offset %d out of range", offset)
	}
	for i := range in {
		if out[i]-in[i] != offset {
			t.Errorf("non-uniform shift: %v -> %v", in, out)
		}
	}
	if in[0] != 1 {
		t.Error("input mutated")
	}
	if !re.Exact {
		t.Error("translation should be exact")
	}
}

// Property: variance (a translation-invariant statistic) is preserved by
// TranslateInts.
func TestTranslateIntsPreservesVariance(t *testing.T) {
	variance := func(xs []int) float64 {
		if len(xs) < 2 {
			return 0
		}
		var sum float64
		for _, x := range xs {
			sum += float64(x)
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			d := float64(x) - mean
			ss += d * d
		}
		return ss / float64(len(xs))
	}
	re := TranslateInts(100)
	rng := xrand.New(2)
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		in := make([]int, len(raw))
		for i, v := range raw {
			in[i] = int(v)
		}
		out := re.Apply(in, rng)
		return math.Abs(variance(in)-variance(out)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteIntsIsPermutation(t *testing.T) {
	re := PermuteInts()
	rng := xrand.New(3)
	in := []int{5, 3, 9, 3, 1}
	out := re.Apply(in, rng)
	if len(out) != len(in) {
		t.Fatal("length changed")
	}
	count := func(xs []int) map[int]int {
		m := map[int]int{}
		for _, x := range xs {
			m[x]++
		}
		return m
	}
	ci, co := count(in), count(out)
	for k, v := range ci {
		if co[k] != v {
			t.Fatalf("multiset changed: %v -> %v", in, out)
		}
	}
	// Sum (order-invariant) must be preserved trivially.
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if sum(in) != sum(out) {
		t.Error("sum changed")
	}
}

func TestScaleFloatRoundTrip(t *testing.T) {
	family := NewScaleFloat(4, 16)
	re := family.Reexpression()
	rng := xrand.New(4)
	// sqrt is equivariant: sqrt(c^2 * x) = c * sqrt(x). Using factors
	// that are perfect squares, the decoder divides by sqrt(factor).
	x := 9.0
	scaled := re.Apply(x, rng)
	factor := family.LastFactor()
	if factor != 4 && factor != 16 {
		t.Fatalf("factor = %f", factor)
	}
	got := math.Sqrt(scaled) / math.Sqrt(factor)
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("decoded sqrt = %f, want 3", got)
	}
}

func TestScaleFloatDefaults(t *testing.T) {
	family := NewScaleFloat()
	if len(family.Factors) != 3 {
		t.Errorf("default factors = %v", family.Factors)
	}
	if family.LastFactor() != 1 {
		t.Errorf("initial LastFactor = %f", family.LastFactor())
	}
}

func TestJitterFloatBounded(t *testing.T) {
	re := JitterFloat(0.01)
	rng := xrand.New(5)
	if re.Exact {
		t.Error("jitter must be approximate")
	}
	for i := 0; i < 200; i++ {
		x := 100.0
		y := re.Apply(x, rng)
		if math.Abs(y-x)/x > 0.01+1e-12 {
			t.Fatalf("jitter exceeded bound: %f", y)
		}
	}
}

package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned, plain-text tables. Every experiment in the
// repository reports its results through a Table so that the output of
// cmd/experiments mirrors the row/column structure of the paper's tables
// and figures.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	hs := make([]string, len(headers))
	copy(hs, headers)
	return &Table{title: title, headers: hs}
}

// AddRow appends a row. Values are formatted with %v; float64 values are
// formatted with 4 significant digits to keep columns readable.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns, an underlined title and a
// header separator.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// formatFloat renders a float compactly: integers without a decimal part,
// everything else with four significant decimals.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// CSV renders the table as RFC-4180-style CSV (header row first, title
// omitted), for piping experiment output into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

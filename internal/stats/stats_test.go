package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"symmetric", []float64{1, 2, 3}, 2},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %f, want %f", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known sample variance (unbiased) of this classic data set is 4.571428...
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-9) {
		t.Errorf("Variance = %f, want %f", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-9) {
		t.Errorf("StdDev = %f", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of single sample = %f, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%f): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%f) = %f, want %f", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p < 0: want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p > 100: want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	m, err := Median([]float64{1, 9, 5})
	if err != nil || m != 5 {
		t.Errorf("median odd = %f, err %v", m, err)
	}
	m, err = Median([]float64{1, 3})
	if err != nil || m != 2 {
		t.Errorf("median even = %f, err %v", m, err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %f, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %f, want -1", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err == nil {
		t.Error("too few samples: want error")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance: want error")
	}
}

func TestNewProportion(t *testing.T) {
	p, err := NewProportion(95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Estimate != 0.95 {
		t.Errorf("estimate = %f", p.Estimate)
	}
	if !(p.Lo < 0.95 && 0.95 < p.Hi) {
		t.Errorf("interval [%f, %f] does not contain the estimate", p.Lo, p.Hi)
	}
	if p.Lo < 0 || p.Hi > 1 {
		t.Errorf("interval [%f, %f] escapes [0,1]", p.Lo, p.Hi)
	}
}

func TestNewProportionEdges(t *testing.T) {
	for _, s := range []int{0, 100} {
		p, err := NewProportion(s, 100)
		if err != nil {
			t.Fatal(err)
		}
		if p.Lo < 0 || p.Hi > 1 || p.Lo > p.Hi {
			t.Errorf("successes=%d: bad interval [%f, %f]", s, p.Lo, p.Hi)
		}
	}
	if _, err := NewProportion(1, 0); err == nil {
		t.Error("zero trials: want error")
	}
	if _, err := NewProportion(-1, 10); err == nil {
		t.Error("negative successes: want error")
	}
	if _, err := NewProportion(11, 10); err == nil {
		t.Error("successes > trials: want error")
	}
}

func TestProportionIntervalShrinksWithTrials(t *testing.T) {
	small, _ := NewProportion(50, 100)
	large, _ := NewProportion(5000, 10000)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Errorf("interval did not shrink: small width %f, large width %f",
			small.Hi-small.Lo, large.Hi-large.Lo)
	}
}

// Property: the Wilson interval always contains the point estimate and
// stays within [0,1].
func TestProportionProperty(t *testing.T) {
	f := func(s uint16, extra uint16) bool {
		trials := int(s) + int(extra) + 1
		succ := int(s)
		p, err := NewProportion(succ, trials)
		if err != nil {
			return false
		}
		return p.Lo >= 0 && p.Hi <= 1 && p.Lo <= p.Estimate && p.Estimate <= p.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", 2)
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5000") {
		t.Errorf("missing cells in output:\n%s", out)
	}
	if !strings.Contains(out, "2") {
		t.Errorf("integer float not rendered compactly:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
	if tbl.Title() != "Demo" {
		t.Errorf("Title = %q", tbl.Title())
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("", "col", "x")
	tbl.AddRow("longvalue", "y")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), out)
	}
	// Header's second column should be aligned with the row's second column.
	if strings.Index(lines[0], "x") != strings.Index(lines[2], "y") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("Title Ignored", "name", "value")
	tbl.AddRow("plain", 1.5)
	tbl.AddRow("with,comma", `say "hi"`)
	got := tbl.CSV()
	want := "name,value\nplain,1.5000\n\"with,comma\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// Package stats provides the small set of statistical primitives the
// experiment harness needs: summary statistics, binomial confidence
// intervals for reliability estimates, and Pearson correlation for
// validating the correlated-failure generator.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns an error for an
// empty sample or p outside [0, 100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples (xs[i], ys[i]). It returns an error if the slices differ in
// length, have fewer than two samples, or either sample has zero variance.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: sample length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Proportion is a binomial success-rate estimate with a confidence
// interval, used to report reliability from Monte Carlo trials.
type Proportion struct {
	Successes int
	Trials    int
	// Estimate is Successes/Trials.
	Estimate float64
	// Lo and Hi bound the 95% Wilson score interval.
	Lo, Hi float64
}

// z95 is the standard normal quantile for a two-sided 95% interval.
const z95 = 1.959963984540054

// NewProportion estimates a binomial proportion with a 95% Wilson score
// interval. The Wilson interval behaves well even for estimates at or near
// 0 and 1, which reliability experiments routinely produce.
func NewProportion(successes, trials int) (Proportion, error) {
	if trials <= 0 {
		return Proportion{}, ErrEmpty
	}
	if successes < 0 || successes > trials {
		return Proportion{}, errors.New("stats: successes out of range")
	}
	n := float64(trials)
	p := float64(successes) / n
	z := z95
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return Proportion{
		Successes: successes,
		Trials:    trials,
		Estimate:  p,
		Lo:        math.Max(0, center-half),
		Hi:        math.Min(1, center+half),
	}, nil
}

// Summary bundles the descriptive statistics reported for a latency or
// cost sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary for xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	minV, maxV := xs[0], xs[0]
	for _, x := range xs {
		minV = math.Min(minV, x)
		maxV = math.Max(maxV, x)
	}
	p50, err := Percentile(xs, 50)
	if err != nil {
		return Summary{}, err
	}
	p95, err := Percentile(xs, 95)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    minV,
		Max:    maxV,
		P50:    p50,
		P95:    p95,
	}, nil
}

// Package vote implements the adjudicators of the framework: the voting
// mechanisms that act as implicit adjudicators in N-version programming
// and process replicas, and the acceptance-test adjudicators that act as
// explicit adjudicators in recovery blocks and self-checking components.
//
// A general voting algorithm compares the results of the program variants
// and selects the final one based on the output of the majority. Since a
// final output needs a majority quorum, the number of variants determines
// the number of tolerable failures: to tolerate k faulty results a system
// must consist of 2k+1 versions (paper, Section 4.1).
package vote

import (
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
)

// VersionsNeeded returns the number of versions required to tolerate k
// faulty results under majority voting: 2k+1.
func VersionsNeeded(k int) int {
	if k < 0 {
		return 1
	}
	return 2*k + 1
}

// TolerableFaults returns the number of faulty results an n-version
// majority vote can tolerate: floor((n-1)/2).
func TolerableFaults(n int) int {
	if n <= 0 {
		return 0
	}
	return (n - 1) / 2
}

// group is an equivalence class of agreeing results.
type group[O any] struct {
	value O
	count int
}

// classes partitions the successful results into equivalence classes
// under eq, preserving first-seen order.
func classes[O any](results []core.Result[O], eq core.Equal[O]) []group[O] {
	var gs []group[O]
outer:
	for _, r := range results {
		if !r.OK() {
			continue
		}
		for i := range gs {
			if eq(gs[i].value, r.Value) {
				gs[i].count++
				continue outer
			}
		}
		gs = append(gs, group[O]{value: r.Value, count: 1})
	}
	return gs
}

// largest returns the index of the class with the most votes and whether
// that maximum is unique.
func largest[O any](gs []group[O]) (idx int, unique bool) {
	idx = -1
	best := 0
	unique = true
	for i, g := range gs {
		switch {
		case g.count > best:
			best, idx, unique = g.count, i, true
		case g.count == best:
			unique = false
		}
	}
	return idx, unique
}

// Majority returns an implicit adjudicator that selects the value agreed
// on by a strict majority of the n variants (not merely of the successful
// ones): a value wins only with more than n/2 votes, so up to
// TolerableFaults(n) arbitrary faulty results are outvoted. It returns
// core.ErrNoConsensus when no value reaches the quorum.
func Majority[O any](eq core.Equal[O]) core.Adjudicator[O] {
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(results) == 0 {
			return zero, core.ErrNoVariants
		}
		quorum := len(results)/2 + 1
		for _, g := range classes(results, eq) {
			if g.count >= quorum {
				return g.value, nil
			}
		}
		return zero, fmt.Errorf("majority of %d needs %d agreeing results: %w",
			len(results), quorum, core.ErrNoConsensus)
	})
}

// Plurality returns an implicit adjudicator that selects the most common
// successful value, regardless of quorum. Ties and all-failed inputs
// yield core.ErrNoConsensus. Plurality trades the strict fault-tolerance
// guarantee of Majority for availability.
func Plurality[O any](eq core.Equal[O]) core.Adjudicator[O] {
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(results) == 0 {
			return zero, core.ErrNoVariants
		}
		gs := classes(results, eq)
		idx, unique := largest(gs)
		if idx < 0 {
			return zero, fmt.Errorf("all %d variants failed: %w",
				len(results), core.ErrAllVariantsFailed)
		}
		if !unique {
			return zero, fmt.Errorf("plurality tie: %w", core.ErrNoConsensus)
		}
		return gs[idx].value, nil
	})
}

// Unanimity returns an implicit adjudicator that requires every variant
// to succeed with equivalent values. It is the comparison adjudicator of
// process replicas and N-variant systems: any divergence is reported as
// core.ErrDivergence (a detected failure or attack).
func Unanimity[O any](eq core.Equal[O]) core.Adjudicator[O] {
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(results) == 0 {
			return zero, core.ErrNoVariants
		}
		for _, r := range results {
			if !r.OK() {
				return zero, fmt.Errorf("variant %s failed: %w", r.Variant, core.ErrDivergence)
			}
		}
		gs := classes(results, eq)
		if len(gs) != 1 {
			return zero, fmt.Errorf("%d distinct outputs: %w", len(gs), core.ErrDivergence)
		}
		return gs[0].value, nil
	})
}

// MOfN returns an implicit adjudicator that selects the first value with
// at least m agreeing successful results (a consensus-voting quorum as in
// WS-FTM's quorum agreement). m must be at least 1.
func MOfN[O any](m int, eq core.Equal[O]) core.Adjudicator[O] {
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(results) == 0 {
			return zero, core.ErrNoVariants
		}
		if m < 1 {
			return zero, fmt.Errorf("m-of-n quorum %d is invalid: %w", m, core.ErrNoConsensus)
		}
		best := -1
		bestCount := 0
		gs := classes(results, eq)
		for i, g := range gs {
			if g.count >= m && g.count > bestCount {
				best, bestCount = i, g.count
			}
		}
		if best < 0 {
			return zero, fmt.Errorf("no value reached quorum %d: %w", m, core.ErrNoConsensus)
		}
		return gs[best].value, nil
	})
}

// Weighted returns an implicit adjudicator for weighted voting: each
// variant's vote counts with the weight registered under its name
// (defaulting to defaultWeight for unknown variants). The value whose
// total weight strictly exceeds half of the total configured weight wins.
func Weighted[O any](weights map[string]float64, defaultWeight float64, eq core.Equal[O]) core.Adjudicator[O] {
	ws := make(map[string]float64, len(weights))
	for k, v := range weights {
		ws[k] = v
	}
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(results) == 0 {
			return zero, core.ErrNoVariants
		}
		weightOf := func(name string) float64 {
			if w, ok := ws[name]; ok {
				return w
			}
			return defaultWeight
		}
		var total float64
		for _, r := range results {
			total += weightOf(r.Variant)
		}
		type wgroup struct {
			value  O
			weight float64
		}
		var gs []wgroup
	outer:
		for _, r := range results {
			if !r.OK() {
				continue
			}
			for i := range gs {
				if eq(gs[i].value, r.Value) {
					gs[i].weight += weightOf(r.Variant)
					continue outer
				}
			}
			gs = append(gs, wgroup{value: r.Value, weight: weightOf(r.Variant)})
		}
		for _, g := range gs {
			if g.weight > total/2 {
				return g.value, nil
			}
		}
		return zero, fmt.Errorf("no value reached weighted majority: %w", core.ErrNoConsensus)
	})
}

// FirstSuccess returns an adjudicator that selects the first successful
// result in variant order. It models hot-spare promotion: the acting
// component's result is used unless it failed, in which case the spare's
// result is taken.
func FirstSuccess[O any]() core.Adjudicator[O] {
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(results) == 0 {
			return zero, core.ErrNoVariants
		}
		for _, r := range results {
			if r.OK() {
				return r.Value, nil
			}
		}
		return zero, core.ErrAllVariantsFailed
	})
}

// Median returns an implicit adjudicator for numeric outputs: it selects
// the median of the successful results. With n variants and fewer than
// n/2 arbitrarily-wrong results the median is bracketed by correct
// values, making it the standard inexact-voting choice for floating-point
// computations where bitwise equality is too strict.
func Median(results []core.Result[float64]) (float64, error) {
	if len(results) == 0 {
		return 0, core.ErrNoVariants
	}
	var vals []float64
	for _, r := range results {
		if r.OK() {
			vals = append(vals, r.Value)
		}
	}
	if len(vals) == 0 {
		return 0, core.ErrAllVariantsFailed
	}
	// Insertion sort: n is the number of variants, always tiny.
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], nil
	}
	return (vals[mid-1] + vals[mid]) / 2, nil
}

// MedianAdjudicator wraps Median as a core.Adjudicator.
func MedianAdjudicator() core.Adjudicator[float64] {
	return core.AdjudicatorFunc[float64](Median)
}

// Acceptance returns an explicit adjudicator built from an acceptance
// test, as in recovery blocks: it selects the first successful result
// that passes the test. The input is captured so the test can validate
// output against input.
func Acceptance[I, O any](input I, test core.AcceptanceTest[I, O]) core.Adjudicator[O] {
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(results) == 0 {
			return zero, core.ErrNoVariants
		}
		var lastErr error = core.ErrAllVariantsFailed
		for _, r := range results {
			if !r.OK() {
				lastErr = r.Err
				continue
			}
			if err := test(input, r.Value); err != nil {
				lastErr = err
				continue
			}
			return r.Value, nil
		}
		return zero, fmt.Errorf("no acceptable result: %w", lastErr)
	})
}

// ApproxEqual returns an Equal for float64 outputs that tolerates an
// absolute difference of eps. Voting over independently implemented
// numeric computations generally needs inexact comparison: bitwise
// equality would report divergence for legitimate rounding differences
// between versions (the output-reconciliation problem the paper notes for
// replicated heterogeneous servers).
func ApproxEqual(eps float64) core.Equal[float64] {
	return func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= eps
	}
}

// Chained returns an adjudicator that tries the given adjudicators in
// order, returning the first successful verdict. The standard use is a
// strict-then-lenient cascade — Majority first, falling back to
// Plurality when availability matters more than the strict quorum
// guarantee.
func Chained[O any](adjs ...core.Adjudicator[O]) core.Adjudicator[O] {
	chain := make([]core.Adjudicator[O], len(adjs))
	copy(chain, adjs)
	return core.AdjudicatorFunc[O](func(results []core.Result[O]) (O, error) {
		var zero O
		if len(chain) == 0 {
			return zero, core.ErrNoConsensus
		}
		var lastErr error
		for _, adj := range chain {
			v, err := adj.Adjudicate(results)
			if err == nil {
				return v, nil
			}
			lastErr = err
		}
		return zero, lastErr
	})
}

package vote

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/core"
)

func ok(name string, v int) core.Result[int] {
	return core.Result[int]{Variant: name, Value: v}
}

func failed(name string) core.Result[int] {
	return core.Result[int]{Variant: name, Err: errors.New("failed")}
}

func TestVersionsNeeded(t *testing.T) {
	tests := []struct{ k, want int }{
		{-1, 1}, {0, 1}, {1, 3}, {2, 5}, {3, 7},
	}
	for _, tt := range tests {
		if got := VersionsNeeded(tt.k); got != tt.want {
			t.Errorf("VersionsNeeded(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestTolerableFaults(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {7, 3},
	}
	for _, tt := range tests {
		if got := TolerableFaults(tt.n); got != tt.want {
			t.Errorf("TolerableFaults(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// Property: the two quorum functions are inverses on the k-fault boundary.
func TestQuorumDuality(t *testing.T) {
	f := func(k uint8) bool {
		kk := int(k % 100)
		return TolerableFaults(VersionsNeeded(kk)) == kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMajoritySelectsQuorumValue(t *testing.T) {
	adj := Majority(core.EqualOf[int]())
	got, err := adj.Adjudicate([]core.Result[int]{ok("a", 7), ok("b", 7), ok("c", 9)})
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v), want (7, nil)", got, err)
	}
}

func TestMajorityCountsAgainstAllVariants(t *testing.T) {
	adj := Majority(core.EqualOf[int]())
	// 2 agreeing out of 5 variants is not a strict majority even though
	// the other three failed outright.
	_, err := adj.Adjudicate([]core.Result[int]{
		ok("a", 7), ok("b", 7), failed("c"), failed("d"), failed("e"),
	})
	if !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("err = %v, want ErrNoConsensus", err)
	}
	// 3 of 5 is a strict majority.
	got, err := adj.Adjudicate([]core.Result[int]{
		ok("a", 7), ok("b", 7), ok("c", 7), failed("d"), failed("e"),
	})
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v), want (7, nil)", got, err)
	}
}

func TestMajorityToleranceBoundary(t *testing.T) {
	// For n = 2k+1 versions, the vote succeeds with up to k wrong results
	// and fails with k+1 (wrong results all agreeing with each other is
	// the worst case).
	for _, k := range []int{1, 2, 3} {
		n := VersionsNeeded(k)
		adj := Majority(core.EqualOf[int]())
		build := func(wrong int) []core.Result[int] {
			rs := make([]core.Result[int], 0, n)
			for i := 0; i < n-wrong; i++ {
				rs = append(rs, ok("good", 1))
			}
			for i := 0; i < wrong; i++ {
				rs = append(rs, ok("bad", 2))
			}
			return rs
		}
		if got, err := adj.Adjudicate(build(k)); err != nil || got != 1 {
			t.Errorf("n=%d with %d faults: = (%d, %v), want (1, nil)", n, k, got, err)
		}
		if got, err := adj.Adjudicate(build(k + 1)); err == nil && got == 1 {
			t.Errorf("n=%d with %d faults: vote should not select the correct value", n, k+1)
		}
	}
}

func TestMajorityEmpty(t *testing.T) {
	adj := Majority(core.EqualOf[int]())
	if _, err := adj.Adjudicate(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v, want ErrNoVariants", err)
	}
}

func TestPlurality(t *testing.T) {
	adj := Plurality(core.EqualOf[int]())
	got, err := adj.Adjudicate([]core.Result[int]{
		ok("a", 7), ok("b", 7), failed("c"), failed("d"), failed("e"),
	})
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v), want (7, nil)", got, err)
	}
}

func TestPluralityTie(t *testing.T) {
	adj := Plurality(core.EqualOf[int]())
	_, err := adj.Adjudicate([]core.Result[int]{ok("a", 1), ok("b", 2)})
	if !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("tie: err = %v, want ErrNoConsensus", err)
	}
}

func TestPluralityAllFailed(t *testing.T) {
	adj := Plurality(core.EqualOf[int]())
	_, err := adj.Adjudicate([]core.Result[int]{failed("a"), failed("b")})
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("err = %v, want ErrAllVariantsFailed", err)
	}
	if _, err := adj.Adjudicate(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("empty: err = %v, want ErrNoVariants", err)
	}
}

func TestUnanimity(t *testing.T) {
	adj := Unanimity(core.EqualOf[int]())
	got, err := adj.Adjudicate([]core.Result[int]{ok("a", 3), ok("b", 3)})
	if err != nil || got != 3 {
		t.Errorf("= (%d, %v), want (3, nil)", got, err)
	}
	_, err = adj.Adjudicate([]core.Result[int]{ok("a", 3), ok("b", 4)})
	if !errors.Is(err, core.ErrDivergence) {
		t.Errorf("divergent values: err = %v, want ErrDivergence", err)
	}
	_, err = adj.Adjudicate([]core.Result[int]{ok("a", 3), failed("b")})
	if !errors.Is(err, core.ErrDivergence) {
		t.Errorf("one failure: err = %v, want ErrDivergence", err)
	}
	if _, err := adj.Adjudicate(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("empty: err = %v, want ErrNoVariants", err)
	}
}

func TestMOfN(t *testing.T) {
	adj := MOfN(2, core.EqualOf[int]())
	got, err := adj.Adjudicate([]core.Result[int]{ok("a", 5), ok("b", 5), ok("c", 9)})
	if err != nil || got != 5 {
		t.Errorf("= (%d, %v), want (5, nil)", got, err)
	}
	_, err = adj.Adjudicate([]core.Result[int]{ok("a", 5), ok("b", 6), ok("c", 9)})
	if !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("no quorum: err = %v", err)
	}
}

func TestMOfNPicksLargestQualifyingClass(t *testing.T) {
	adj := MOfN(2, core.EqualOf[int]())
	got, err := adj.Adjudicate([]core.Result[int]{
		ok("a", 5), ok("b", 5), ok("c", 9), ok("d", 9), ok("e", 9),
	})
	if err != nil || got != 9 {
		t.Errorf("= (%d, %v), want (9, nil)", got, err)
	}
}

func TestMOfNInvalidQuorum(t *testing.T) {
	adj := MOfN(0, core.EqualOf[int]())
	if _, err := adj.Adjudicate([]core.Result[int]{ok("a", 1)}); !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("err = %v, want ErrNoConsensus", err)
	}
	if _, err := adj.Adjudicate(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestWeighted(t *testing.T) {
	adj := Weighted(map[string]float64{"trusted": 3}, 1, core.EqualOf[int]())
	// trusted (3) vs two defaults (1+1): total 5, trusted value needs > 2.5.
	got, err := adj.Adjudicate([]core.Result[int]{
		ok("trusted", 1), ok("x", 2), ok("y", 2),
	})
	if err != nil || got != 1 {
		t.Errorf("= (%d, %v), want (1, nil)", got, err)
	}
}

func TestWeightedNoMajority(t *testing.T) {
	adj := Weighted(nil, 1, core.EqualOf[int]())
	_, err := adj.Adjudicate([]core.Result[int]{ok("a", 1), ok("b", 2)})
	if !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("err = %v, want ErrNoConsensus", err)
	}
	if _, err := adj.Adjudicate(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestWeightedFailedVariantWeighsAgainst(t *testing.T) {
	// A failed heavy variant still contributes to the total weight, so a
	// light successful variant may not reach majority.
	adj := Weighted(map[string]float64{"heavy": 5}, 1, core.EqualOf[int]())
	_, err := adj.Adjudicate([]core.Result[int]{
		{Variant: "heavy", Err: errors.New("x")}, ok("light", 2),
	})
	if !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("err = %v, want ErrNoConsensus", err)
	}
}

// A dead tie at the default weight: two classes of two unknown variants
// each hold exactly total/2, and the strict > total/2 rule must refuse
// both rather than pick one arbitrarily — the same reason Majority
// counts against all variants, applied to weighted quorums.
func TestWeightedTieAtDefaultWeight(t *testing.T) {
	adj := Weighted(nil, 1.0, core.EqualOf[int]())
	_, err := adj.Adjudicate([]core.Result[int]{
		ok("a", 7), ok("b", 7), ok("c", 9), ok("d", 9),
	})
	if !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("tied weighted vote err = %v, want ErrNoConsensus", err)
	}
	// Registered weights can break the same tie.
	adj = Weighted(map[string]float64{"a": 2.0}, 1.0, core.EqualOf[int]())
	got, err := adj.Adjudicate([]core.Result[int]{
		ok("a", 7), ok("b", 7), ok("c", 9), ok("d", 9),
	})
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v), want weighted winner 7", got, err)
	}
}

// All variants abstained (failed): every link in the chain errs, and the
// caller must see the *last* link's error — for a strict-then-lenient
// cascade that is the lenient adjudicator's diagnosis, the one that
// actually explains why even the fallback refused.
func TestChainedAllAbstain(t *testing.T) {
	adj := Chained(Majority(core.EqualOf[int]()), Plurality(core.EqualOf[int]()))
	_, err := adj.Adjudicate([]core.Result[int]{failed("a"), failed("b"), failed("c")})
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("all-abstain err = %v, want Plurality's ErrAllVariantsFailed", err)
	}
	if errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("all-abstain err = %v leaked the first link's ErrNoConsensus", err)
	}
}

func TestFirstSuccess(t *testing.T) {
	adj := FirstSuccess[int]()
	got, err := adj.Adjudicate([]core.Result[int]{failed("a"), ok("b", 8), ok("c", 9)})
	if err != nil || got != 8 {
		t.Errorf("= (%d, %v), want (8, nil)", got, err)
	}
	_, err = adj.Adjudicate([]core.Result[int]{failed("a")})
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("err = %v", err)
	}
	if _, err := adj.Adjudicate(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestMedian(t *testing.T) {
	rs := []core.Result[float64]{
		{Variant: "a", Value: 1.0},
		{Variant: "b", Value: 100.0}, // wildly wrong variant
		{Variant: "c", Value: 1.1},
	}
	got, err := Median(rs)
	if err != nil || got != 1.1 {
		t.Errorf("= (%f, %v), want (1.1, nil)", got, err)
	}
}

func TestMedianEven(t *testing.T) {
	rs := []core.Result[float64]{
		{Variant: "a", Value: 1},
		{Variant: "b", Value: 3},
	}
	got, err := Median(rs)
	if err != nil || got != 2 {
		t.Errorf("= (%f, %v), want (2, nil)", got, err)
	}
}

func TestMedianSkipsFailures(t *testing.T) {
	rs := []core.Result[float64]{
		{Variant: "a", Err: errors.New("x")},
		{Variant: "b", Value: 5},
	}
	got, err := Median(rs)
	if err != nil || got != 5 {
		t.Errorf("= (%f, %v), want (5, nil)", got, err)
	}
	if _, err := Median([]core.Result[float64]{{Variant: "a", Err: errors.New("x")}}); !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("all failed: err = %v", err)
	}
	if _, err := Median(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestMedianAdjudicator(t *testing.T) {
	adj := MedianAdjudicator()
	got, err := adj.Adjudicate([]core.Result[float64]{{Variant: "a", Value: 4}})
	if err != nil || got != 4 {
		t.Errorf("= (%f, %v)", got, err)
	}
}

// Property: with a strict minority of arbitrarily wrong values, the median
// of n odd results always lies within the range of the correct values.
func TestMedianRobustnessProperty(t *testing.T) {
	f := func(wrongRaw [2]float64) bool {
		results := []core.Result[float64]{
			{Variant: "good1", Value: 10},
			{Variant: "good2", Value: 10.5},
			{Variant: "good3", Value: 11},
			{Variant: "bad1", Value: wrongRaw[0]},
			{Variant: "bad2", Value: wrongRaw[1]},
		}
		m, err := Median(results)
		if err != nil {
			return false
		}
		return m >= 10 && m <= 11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAcceptance(t *testing.T) {
	test := func(input int, output int) error {
		if output != input*2 {
			return core.ErrNotAccepted
		}
		return nil
	}
	adj := Acceptance(21, core.AcceptanceTest[int, int](test))
	got, err := adj.Adjudicate([]core.Result[int]{ok("wrong", 5), ok("right", 42)})
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
}

func TestAcceptanceNothingAcceptable(t *testing.T) {
	test := func(_ int, _ int) error { return core.ErrNotAccepted }
	adj := Acceptance(0, core.AcceptanceTest[int, int](test))
	_, err := adj.Adjudicate([]core.Result[int]{ok("a", 1)})
	if !errors.Is(err, core.ErrNotAccepted) {
		t.Errorf("err = %v, want wrapping ErrNotAccepted", err)
	}
	if _, err := adj.Adjudicate(nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestAcceptanceSkipsFailedResults(t *testing.T) {
	test := func(_ int, _ int) error { return nil }
	adj := Acceptance(0, core.AcceptanceTest[int, int](test))
	got, err := adj.Adjudicate([]core.Result[int]{failed("a"), ok("b", 7)})
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v), want (7, nil)", got, err)
	}
}

// Property: majority never selects a value held by fewer than half of the
// results, whatever the vote distribution.
func TestMajoritySafetyProperty(t *testing.T) {
	f := func(votes []uint8) bool {
		if len(votes) == 0 || len(votes) > 30 {
			return true
		}
		results := make([]core.Result[int], len(votes))
		counts := map[int]int{}
		for i, v := range votes {
			val := int(v % 4)
			results[i] = ok("v", val)
			counts[val]++
		}
		adj := Majority(core.EqualOf[int]())
		got, err := adj.Adjudicate(results)
		if err != nil {
			return true // no quorum is always safe
		}
		return counts[got] >= len(votes)/2+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	eq := ApproxEqual(0.01)
	if !eq(1.0, 1.005) || !eq(1.005, 1.0) {
		t.Error("within tolerance should be equal")
	}
	if eq(1.0, 1.02) {
		t.Error("outside tolerance should differ")
	}
	adj := Majority(ApproxEqual(0.01))
	got, err := adj.Adjudicate([]core.Result[float64]{
		{Variant: "a", Value: 1.000},
		{Variant: "b", Value: 1.004},
		{Variant: "c", Value: 9.9},
	})
	if err != nil || got != 1.000 {
		t.Errorf("approx vote = (%f, %v)", got, err)
	}
}

func TestChained(t *testing.T) {
	adj := Chained(Majority(core.EqualOf[int]()), Plurality(core.EqualOf[int]()))
	// No strict majority (2 of 5), but a clear plurality.
	got, err := adj.Adjudicate([]core.Result[int]{
		ok("a", 7), ok("b", 7), ok("c", 1), ok("d", 2), ok("e", 3),
	})
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v), want plurality fallback 7", got, err)
	}
	// Strict majority satisfied by the first link.
	got, err = adj.Adjudicate([]core.Result[int]{ok("a", 7), ok("b", 7), ok("c", 1)})
	if err != nil || got != 7 {
		t.Errorf("= (%d, %v)", got, err)
	}
	// All links fail.
	if _, err := adj.Adjudicate([]core.Result[int]{ok("a", 1), ok("b", 2)}); !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("err = %v", err)
	}
	// Empty chain.
	empty := Chained[int]()
	if _, err := empty.Adjudicate([]core.Result[int]{ok("a", 1)}); !errors.Is(err, core.ErrNoConsensus) {
		t.Errorf("empty chain err = %v", err)
	}
}

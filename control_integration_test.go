package redundancy_test

// Experiment E28's acceptance test: the autonomic control plane closes
// the loop from fleet-wide diagnosis to live reconfiguration. The same
// three-replica fleet — one replica aging toward wear-out, one killed
// mid-run, one with a deterministic bohrbug — runs twice: with the
// controller frozen by its kill switch the fleet collapses below the
// availability objective; with the loop live the controller replaces
// the dead replica (MTTR measured), rejuvenates the aging one,
// substitutes the buggy one, takes a bounded number of actions (no
// flapping), and holds availability at or above 99%. Nothing leaks a
// goroutine.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

func TestE28AutonomicControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("the control-plane arms run for a few wall-clock seconds")
	}
	before := runtime.NumGoroutine()

	static := runE28Arm(t, false)
	controlled := runE28Arm(t, true)

	// The static arm proves the faults are real: with the controller
	// frozen the accumulated failures push availability far below the
	// objective.
	if static.availability >= 0.95 {
		t.Errorf("static arm availability = %.4f, want < 0.95 (the fault schedule should collapse an unmanaged fleet)", static.availability)
	}
	if len(static.actions) != 0 {
		t.Errorf("static arm took actions %v despite the kill switch", static.actions)
	}

	// The controlled arm survives the same schedule.
	if controlled.availability < 0.99 {
		t.Errorf("controlled arm availability = %.4f, want >= 0.99", controlled.availability)
	}
	if controlled.actions["replace"] < 1 {
		t.Errorf("controlled arm actions = %v, want at least one replace", controlled.actions)
	}
	if controlled.actions["rejuvenate"] < 1 {
		t.Errorf("controlled arm actions = %v, want at least one rejuvenate", controlled.actions)
	}
	if controlled.actions["substitute"] != 1 {
		t.Errorf("controlled arm actions = %v, want exactly one substitute (it is terminal)", controlled.actions)
	}
	if controlled.mttr <= 0 {
		t.Errorf("controlled arm reported no replacement MTTR")
	} else if controlled.mttr > 3*time.Second {
		t.Errorf("replacement MTTR = %v, want well under the run length", controlled.mttr)
	}
	// Bounded intervention: hysteresis and the rate limit keep the loop
	// from flapping — a budget far below one action per tick.
	total := 0
	for _, n := range controlled.actions {
		total += n
	}
	if total > 12 {
		t.Errorf("controlled arm took %d actions (%v), want a bounded handful", total, controlled.actions)
	}

	// Everything is shut down; demand the goroutine count recovered.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked across the control-plane arms: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// e28Result is one arm's outcome.
type e28Result struct {
	availability float64
	actions      map[string]int
	mttr         time.Duration
}

// e28Proc is one replica's simulated process: wear-out aging plus an
// optional deterministic bug, with a substitution hook.
type e28Proc struct {
	name  string
	limit int64
	bugAt int64

	served     atomic.Int64
	substitute atomic.Pointer[redundancy.ServiceProxy]
}

func (p *e28Proc) execute(ctx context.Context, x int) (int, error) {
	if p.bugAt > 0 && int64(x) >= p.bugAt {
		if proxy := p.substitute.Load(); proxy != nil {
			return proxy.Invoke(ctx, "double", x)
		}
		return 0, fmt.Errorf("%s: deterministic fault on input %d", p.name, x)
	}
	if p.limit > 0 && p.served.Load() >= p.limit {
		return 0, fmt.Errorf("%s: worn out", p.name)
	}
	p.served.Add(1)
	return 2 * x, nil
}

// runE28Arm stands up the fleet with the controller either live or
// frozen and drives the workload. Time constants are compressed
// relative to cmd/faultsim -control to keep the test fast.
func runE28Arm(t *testing.T, controlOn bool) e28Result {
	t.Helper()
	const (
		requests   = 900
		agingLimit = 180
		killAt     = 300
		bugAt      = 540
		objective  = 20 * time.Millisecond
	)
	collector := redundancy.NewCollector()
	engine := redundancy.NewHealthEngine(redundancy.HealthConfig{})
	slo := redundancy.NewSLOTracker(redundancy.SLOConfig{
		Default:    redundancy.SLObjective{Target: 0.999, Latency: objective},
		FastWindow: 300 * time.Millisecond,
		SlowWindow: 2 * time.Second,
	})
	observer := redundancy.CombineObservers(collector, engine, slo)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	network := redundancy.NewPipeNetwork()
	var mu sync.Mutex
	procs := map[string]*e28Proc{
		"r1": {name: "r1", limit: agingLimit},
		"r2": {name: "r2"},
		"r3": {name: "r3", bugAt: bugAt},
	}
	servers := map[string]*redundancy.ReplicaServer[int, int]{}
	nextReplica := 4
	var killedAt time.Time
	var mttr time.Duration

	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:     "e28-fleet",
		Observer: observer,
	})
	startReplica := func(name string, proc *e28Proc, dynamic bool) error {
		ln, err := network.Listen(name)
		if err != nil {
			return err
		}
		v := redundancy.NewVariant("proc", proc.execute)
		srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{
			Name:     name,
			Observer: observer,
		})
		mu.Lock()
		procs[name] = proc
		servers[name] = srv
		mu.Unlock()
		if dynamic {
			return supervisor.StartChild(srv.AsChild())
		}
		return supervisor.Add(srv.AsChild())
	}
	names := []string{"r1", "r2", "r3"}
	for _, name := range names {
		if err := startReplica(name, procs[name], false); err != nil {
			t.Fatalf("startReplica(%s): %v", name, err)
		}
	}
	defer func() {
		mu.Lock()
		all := make([]*redundancy.ReplicaServer[int, int], 0, len(servers))
		for _, s := range servers {
			all = append(all, s)
		}
		mu.Unlock()
		for _, s := range all {
			s.Close()
		}
	}()

	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Name:         "e28-detector",
		Interval:     40 * time.Millisecond,
		Timeout:      30 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    5,
		Observer:     observer,
	})
	for _, name := range names {
		detector.Watch(name, network.Dial(name))
	}
	if err := supervisor.Add(detector.AsChild()); err != nil {
		t.Fatalf("add detector: %v", err)
	}

	breakers := redundancy.NewBreakers(redundancy.BreakerConfig{
		ConsecutiveFailures: 8,
		OpenFor:             120 * time.Millisecond,
	})
	endpoints := make([]redundancy.ReplicaEndpoint, 0, len(names))
	for _, name := range names {
		endpoints = append(endpoints, redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)})
	}
	remote, err := redundancy.NewRemoteVariant[int, int]("fleet", redundancy.RemoteConfig{
		CallTimeout: 150 * time.Millisecond,
		HedgeAfter:  25 * time.Millisecond,
		MaxHedges:   2,
		Breakers:    breakers,
		Detector:    detector,
		Observer:    observer,
	}, endpoints...)
	if err != nil {
		t.Fatalf("NewRemoteVariant: %v", err)
	}
	defer remote.Close()
	budget := redundancy.NewRetryBudget(50, 0.1)
	client, err := redundancy.NewSingle[int, int](remote,
		redundancy.WithObserver(observer),
		redundancy.WithRetryPolicy(redundancy.RetryPolicy{
			MaxAttempts: 2,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			Jitter:      0.5,
			Seed:        1,
			Budget:      budget,
		}))
	if err != nil {
		t.Fatalf("NewSingle: %v", err)
	}

	registry := redundancy.NewServiceRegistry()
	calcSig := redundancy.ServiceSignature{Name: "calc", Ops: []string{"double"}}
	substituteSvc, err := redundancy.NewSimService("calc-v2", calcSig,
		map[string]func(int) (int, error){"double": func(x int) (int, error) { return 2 * x, nil }})
	if err != nil {
		t.Fatalf("NewSimService: %v", err)
	}
	if err := registry.Register(substituteSvc, nil); err != nil {
		t.Fatalf("Register: %v", err)
	}

	resolve := func(target string) (*e28Proc, string) {
		executor, _, _ := strings.Cut(target, "/")
		name := strings.TrimPrefix(executor, "replica:")
		mu.Lock()
		defer mu.Unlock()
		return procs[name], executor
	}
	// probe verifies a repair by sending the current workload input
	// straight at the repaired replica. Without it the relapse evidence
	// waits on the load balancer wandering back to the replica, which
	// under a slow scheduler may never happen before the run ends; the
	// probe's outcome flows through the replica server's observer, so
	// the health engine sees whether the repair took.
	var lastInput atomic.Int64
	probe := func(ctx context.Context, name string) {
		pr, err := redundancy.NewRemoteVariant[int, int](name+"-probe", redundancy.RemoteConfig{
			CallTimeout: 150 * time.Millisecond,
		}, redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)})
		if err != nil {
			return
		}
		defer pr.Close()
		_, _ = pr.Execute(ctx, int(lastInput.Load())) // failure is evidence, not an error
	}
	actuators := map[string]redundancy.ControlActuator{
		redundancy.ControlActionReplace: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			mu.Lock()
			name := fmt.Sprintf("r%d", nextReplica)
			nextReplica++
			killed := killedAt
			mu.Unlock()
			if err := startReplica(name, &e28Proc{name: name, limit: agingLimit}, true); err != nil {
				return a, err
			}
			if err := remote.AddEndpoint(redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)}); err != nil {
				return a, err
			}
			detector.Watch(name, network.Dial(name))
			if err := remote.RemoveEndpoint(a.Target); err != nil {
				return a, err
			}
			detector.Forget(a.Target)
			if !killed.IsZero() {
				mu.Lock()
				mttr = time.Since(killed)
				mu.Unlock()
			}
			a.New = name
			return a, nil
		},
		redundancy.ControlActionHedgeTune: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			d, err := a.HedgeTarget()
			if err != nil {
				return a, err
			}
			remote.SetHedgeAfter(d)
			return a, nil
		},
		redundancy.ControlActionDepositTune: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			rate, err := a.DepositTarget()
			if err != nil {
				return a, err
			}
			budget.SetDepositPerRequest(rate)
			return a, nil
		},
		redundancy.ControlActionRejuvenate: func(ctx context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			proc, executor := resolve(a.Target)
			if proc == nil {
				return a, fmt.Errorf("unknown target %q", a.Target)
			}
			proc.served.Store(0)
			observer.Rollback(executor, 0)
			breakers.Reset(strings.TrimPrefix(executor, "replica:"))
			probe(ctx, strings.TrimPrefix(executor, "replica:"))
			return a, nil
		},
		redundancy.ControlActionSubstitute: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			proc, executor := resolve(a.Target)
			if proc == nil {
				return a, fmt.Errorf("unknown target %q", a.Target)
			}
			proxy, err := redundancy.NewServiceProxy(registry, calcSig, 0.5)
			if err != nil {
				return a, err
			}
			proc.substitute.Store(proxy)
			breakers.Reset(strings.TrimPrefix(executor, "replica:"))
			a.New = proxy.Bound()
			return a, nil
		},
	}

	watched := make([]string, 0, 9)
	for i := 1; i <= 9; i++ {
		watched = append(watched, fmt.Sprintf("replica:r%d", i))
	}
	controller := redundancy.NewController(redundancy.ControllerConfig{
		Name:              "controller",
		Tick:              50 * time.Millisecond,
		MaxActionsPerKind: 4,
		RateWindow:        time.Second,
		Sources: redundancy.ControlSources{
			Observed: collector.Snapshot,
			SLO:      slo.Snapshot,
			Detector: detector.States,
			Evidence: detector.Evidence,
			Health:   engine.Snapshot,
			FastBurn: slo.FastBurn,
			P99: func(executor string) time.Duration {
				if h := collector.ExecutorLatency(executor); h != nil {
					return h.P99()
				}
				return 0
			},
		},
		Policies: []redundancy.ControlPolicy{
			&redundancy.ReplacementPolicy{DeadAfter: 5, AccuseDeadAfter: 8},
			redundancy.NewTailPolicy(redundancy.TailPolicyConfig{
				Client:     "fleet",
				Objective:  objective,
				MinHedge:   5 * time.Millisecond,
				MaxHedge:   50 * time.Millisecond,
				HedgeAfter: remote.HedgeAfter,
				Deposit:    budget.DepositPerRequest,
			}),
			redundancy.NewDiagnosisPolicy(redundancy.DiagnosisPolicyConfig{
				FailStreakThreshold:     8,
				RelapseLimit:            1,
				RejuvenateCooldownTicks: 5,
				Executors:               watched,
			}),
		},
		Actuators: actuators,
		Observer:  observer,
	})
	controller.SetEnabled(controlOn)
	if err := supervisor.Add(controller.AsChild()); err != nil {
		t.Fatalf("add controller: %v", err)
	}

	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	ok := 0
	for i := 1; i <= requests; i++ {
		if i == killAt {
			mu.Lock()
			srv := servers["r2"]
			killedAt = time.Now()
			mu.Unlock()
			srv.Close()
		}
		lastInput.Store(int64(i))
		got, err := client.Execute(ctx, i)
		if err == nil && got == 2*i {
			ok++
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	<-supDone

	mu.Lock()
	gotMTTR := mttr
	mu.Unlock()
	return e28Result{
		availability: float64(ok) / float64(requests),
		actions:      controller.Counts(),
		mttr:         gotMTTR,
	}
}

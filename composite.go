package redundancy

import (
	"github.com/softwarefaults/redundancy/internal/composite"
	"github.com/softwarefaults/redundancy/internal/datadiv"
)

// Fault-tolerant process composition (the paper's WS-BPEL sources:
// Dobson's retry / alternate / voting / self-checking constructs plus
// compensation handlers).
type (
	// ProcessStep is one compensable unit of a composite process.
	ProcessStep[T any] = composite.Step[T]
	// CompositeProcess is an ordered, compensable pipeline of steps.
	CompositeProcess[T any] = composite.Process[T]
)

// Composite process errors.
var (
	// ErrProcessFailed reports an unrecoverable step failure after
	// compensation.
	ErrProcessFailed = composite.ErrProcessFailed
	// ErrCompensationFailed reports that undoing completed steps failed.
	ErrCompensationFailed = composite.ErrCompensationFailed
)

// NewCompositeProcess builds a compensable process from steps.
func NewCompositeProcess[T any](name string, steps ...ProcessStep[T]) (*CompositeProcess[T], error) {
	return composite.NewProcess(name, steps...)
}

// RetryInvoke wraps an endpoint with up to retries re-invocations (the
// BPEL retry command). For an observed retry loop, use RetryInvokeOpts.
func RetryInvoke[T any](v Variant[T, T], retries int) (Executor[T, T], error) {
	return composite.Retry(v, retries)
}

// RetryInvokeOpts is RetryInvoke with pattern options: WithObserver and
// WithMetrics see each attempt as a variant span and re-invocations as
// retry events.
func RetryInvokeOpts[T any](v Variant[T, T], retries int, opts ...PatternOption) (Executor[T, T], error) {
	return composite.Retry(v, retries, opts...)
}

// AlternatesInvoke builds a sequential-alternates invocation over
// statically provided endpoints. For an observed invocation, use
// AlternatesInvokeOpts.
func AlternatesInvoke[T any](test AcceptanceTest[T, T], endpoints ...Variant[T, T]) (Executor[T, T], error) {
	return composite.Alternates(test, endpoints)
}

// AlternatesInvokeOpts is AlternatesInvoke with pattern options forwarded
// to the underlying Figure 1c executor.
func AlternatesInvokeOpts[T any](test AcceptanceTest[T, T], endpoints []Variant[T, T], opts ...PatternOption) (Executor[T, T], error) {
	return composite.Alternates(test, endpoints, opts...)
}

// VotingInvoke builds a parallel majority-voting invocation over
// independently operated endpoints. For an observed invocation, use
// VotingInvokeOpts.
func VotingInvoke[T any](eq Equal[T], endpoints ...Variant[T, T]) (Executor[T, T], error) {
	return composite.Voting(eq, endpoints)
}

// VotingInvokeOpts is VotingInvoke with pattern options forwarded to the
// underlying Figure 1a executor.
func VotingInvokeOpts[T any](eq Equal[T], endpoints []Variant[T, T], opts ...PatternOption) (Executor[T, T], error) {
	return composite.Voting(eq, endpoints, opts...)
}

// HotSparesInvoke builds a parallel-selection invocation with per-call
// re-enabled spares. For an observed invocation, use HotSparesInvokeOpts.
func HotSparesInvoke[T any](test AcceptanceTest[T, T], endpoints ...Variant[T, T]) (Executor[T, T], error) {
	return composite.HotSpares(test, endpoints)
}

// HotSparesInvokeOpts is HotSparesInvoke with pattern options forwarded
// to the underlying Figure 1b executor.
func HotSparesInvokeOpts[T any](test AcceptanceTest[T, T], endpoints []Variant[T, T], opts ...PatternOption) (Executor[T, T], error) {
	return composite.HotSpares(test, endpoints, opts...)
}

// Reusable re-expression families for data diversity.

// TranslateInts returns an exact re-expression shifting every element of
// an integer slice by a random offset (for translation-invariant
// computations).
func TranslateInts(maxOffset int) Reexpression[[]int] {
	return datadiv.TranslateInts(maxOffset)
}

// PermuteInts returns an exact re-expression permuting an integer slice
// (for order-invariant computations).
func PermuteInts() Reexpression[[]int] { return datadiv.PermuteInts() }

// JitterFloat returns an approximate re-expression perturbing a float by
// a bounded relative amount.
func JitterFloat(magnitude float64) Reexpression[float64] {
	return datadiv.JitterFloat(magnitude)
}

// ScaleFamily is the stateful scaling re-expression family for
// scale-equivariant computations.
type ScaleFamily = datadiv.ScaleFloat

// NewScaleFamily builds a scaling re-expression family.
func NewScaleFamily(factors ...float64) *ScaleFamily {
	return datadiv.NewScaleFloat(factors...)
}

package redundancy_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

func double(name string, bias int) redundancy.Variant[int, int] {
	return redundancy.NewVariant(name, func(_ context.Context, x int) (int, error) {
		return x*2 + bias, nil
	})
}

func TestPublicNVersion(t *testing.T) {
	sys, err := redundancy.NewNVersion(
		[]redundancy.Variant[int, int]{double("a", 0), double("b", 0), double("c", 1)},
		redundancy.EqualOf[int](),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Execute(context.Background(), 21)
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
	if redundancy.VersionsNeeded(1) != 3 || redundancy.TolerableFaults(5) != 2 {
		t.Error("quorum helpers wrong")
	}
}

func TestPublicRecoveryBlock(t *testing.T) {
	state := struct{ Calls int }{}
	primary := redundancy.NewVariant("primary", func(_ context.Context, x int) (int, error) {
		return 0, errors.New("primary fails")
	})
	alternate := double("alternate", 0)
	blk, err := redundancy.NewRecoveryBlock("blk", &state,
		func(_ int, out int) error {
			if out%2 != 0 {
				return redundancy.ErrNotAccepted
			}
			return nil
		},
		[]redundancy.Variant[int, int]{primary, alternate},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := blk.Execute(context.Background(), 4)
	if err != nil || got != 8 {
		t.Errorf("= (%d, %v), want (8, nil)", got, err)
	}
}

func TestPublicSelfChecking(t *testing.T) {
	acting, err := redundancy.NewCheckedComponent(double("acting", 1),
		func(_ int, out int) error {
			if out%2 != 0 {
				return redundancy.ErrNotAccepted
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	spare, err := redundancy.NewComparedPair(double("s1", 0), double("s2", 0), redundancy.EqualOf[int]())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := redundancy.NewSelfCheckingSystem(
		[]redundancy.SelfCheckingComponent[int, int]{acting, spare})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Execute(context.Background(), 5)
	if err != nil || got != 10 {
		t.Errorf("= (%d, %v), want spare result 10", got, err)
	}
}

func TestPublicPatternsAndAdjudicators(t *testing.T) {
	var m redundancy.Metrics
	pe, err := redundancy.NewParallelEvaluation(
		[]redundancy.Variant[int, int]{double("a", 0), double("b", 0)},
		redundancy.Unanimity(redundancy.EqualOf[int]()),
		redundancy.WithMetrics(&m),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := pe.Execute(context.Background(), 1); err != nil || got != 2 {
		t.Errorf("= (%d, %v)", got, err)
	}
	if m.Snapshot().VariantExecutions != 2 {
		t.Error("metrics not recorded")
	}
	if _, err := redundancy.MedianAdjudicator().Adjudicate([]redundancy.Result[float64]{
		{Variant: "x", Value: 3},
	}); err != nil {
		t.Error(err)
	}
}

func TestPublicDataDiversity(t *testing.T) {
	rng := redundancy.NewRand(1)
	program := redundancy.NewVariant("p", func(_ context.Context, x int) (int, error) {
		if x == 13 {
			return 0, errors.New("failure region")
		}
		return x, nil
	})
	rb, err := redundancy.NewRetryBlock(program,
		func(_ int, _ int) error { return nil },
		[]redundancy.Reexpression[int]{{
			Name:  "bump",
			Apply: func(x int, _ *redundancy.Rand) int { return x + 1 },
			Exact: false,
		}},
		2, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rb.Execute(context.Background(), 13)
	if err != nil || got != 14 {
		t.Errorf("= (%d, %v)", got, err)
	}

	cell, err := redundancy.NewNVariantCell(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	cell.Set(7)
	cell.CorruptUniform(0xdead)
	if _, err := cell.Get(); !errors.Is(err, redundancy.ErrCorruptionDetected) {
		t.Errorf("err = %v", err)
	}
}

func TestPublicEnvironmentTechniques(t *testing.T) {
	// RX ladder heals an env-dependent failure.
	calls := 0
	prog := func(_ context.Context, env *redundancy.Env, x int) (int, error) {
		calls++
		if env.AllocPadding < 64 {
			return 0, errors.New("overflow")
		}
		return x, nil
	}
	exec, err := redundancy.NewPerturbationExecutor(prog, redundancy.DefaultEnv(),
		redundancy.DefaultPerturbationLadder())
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Execute(context.Background(), 9)
	if err != nil || got != 9 {
		t.Errorf("= (%d, %v)", got, err)
	}

	// Checkpoint runner round-trip.
	runner, err := redundancy.NewCheckpointRunner(0,
		func(s int, op int) (int, error) { return s + op, nil }, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []int{1, 2, 3} {
		if err := runner.Step(op); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := runner.Recover(); err != nil {
		t.Fatal(err)
	}
	if runner.State() != 6 {
		t.Errorf("state = %d", runner.State())
	}
}

func TestPublicReplicaSystem(t *testing.T) {
	sys, err := redundancy.NewReplicaSystem(3, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(redundancy.ReplicaRequest{
		Op: redundancy.ReplicaWrite, Addr: 1, Value: 5,
	}); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Execute(redundancy.ReplicaRequest{
		Op: redundancy.ReplicaWrite, Addr: sys.Process(0).Base(), Absolute: true, Value: 5,
	})
	if !errors.Is(err, redundancy.ErrAttackDetected) {
		t.Errorf("err = %v", err)
	}
}

func TestPublicMicroreboot(t *testing.T) {
	sys, err := redundancy.NewComponentSystem(redundancy.ComponentSpec{
		Name: "root", InitCost: 10,
		Children: []redundancy.ComponentSpec{{Name: "leaf", InitCost: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Fail("leaf"); err != nil {
		t.Fatal(err)
	}
	mgr, err := redundancy.NewRecoveryManager(sys)
	if err != nil {
		t.Fatal(err)
	}
	if cost := mgr.Recover(); cost != 1 {
		t.Errorf("cost = %f", cost)
	}
}

func TestPublicWrappers(t *testing.T) {
	h, err := redundancy.NewHeap(256)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	healer, err := redundancy.NewHeapHealer(h, redundancy.RejectOverflow)
	if err != nil {
		t.Fatal(err)
	}
	if err := healer.Write(blk, 0, make([]byte, 64)); !errors.Is(err, redundancy.ErrOverflowPrevented) {
		t.Errorf("err = %v", err)
	}

	res := redundancy.NewCOTSResource()
	w, err := redundancy.NewProtocolWrapper(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Use(); err != nil {
		t.Errorf("wrapped use-before-open: %v", err)
	}
}

func TestPublicServiceSubstitution(t *testing.T) {
	sig := redundancy.ServiceSignature{Name: "calc", Ops: []string{"add"}}
	mk := func(name string) *redundancy.SimService {
		s, err := redundancy.NewSimService(name, sig, map[string]func(int) (int, error){
			"add": func(x int) (int, error) { return x + 1, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	reg := redundancy.NewServiceRegistry()
	s1, s2 := mk("s1"), mk("s2")
	if err := reg.Register(s1, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(s2, nil); err != nil {
		t.Fatal(err)
	}
	proxy, err := redundancy.NewServiceProxy(reg, sig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s1.SetDown(true)
	got, err := proxy.Invoke(context.Background(), "add", 1)
	if err != nil || got != 2 {
		t.Errorf("= (%d, %v)", got, err)
	}
	if proxy.Substitutions != 1 {
		t.Errorf("substitutions = %d", proxy.Substitutions)
	}
}

func TestPublicRuleEngine(t *testing.T) {
	engine, err := redundancy.NewRuleEngine(redundancy.RecoveryRule{
		Name:  "any",
		Match: redundancy.MatchAny(redundancy.MatchComponent("svc")),
		Actions: []redundancy.RecoveryAction{{
			Name: "retry",
			Run:  func(context.Context, *redundancy.Incident) error { return nil },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Handle(context.Background(), &redundancy.Incident{Component: "svc"})
	if err != nil || out.Action != "retry" {
		t.Errorf("= (%+v, %v)", out, err)
	}
}

func TestPublicRobustStructures(t *testing.T) {
	l := redundancy.NewRobustList()
	l.Append(1)
	l.Append(2)
	ids := l.NodeIDs()
	l.CorruptNext(ids[0], 999)
	if len(l.Audit()) == 0 {
		t.Error("corruption undetected")
	}
	if err := l.Repair(); err != nil {
		t.Fatal(err)
	}
	m := redundancy.NewRobustMap()
	m.Put("k", 1)
	m.CorruptPrimary("k", 9)
	if v, err := m.Get("k"); err != nil || v != 1 {
		t.Errorf("= (%d, %v)", v, err)
	}
}

func TestPublicGeneticRepair(t *testing.T) {
	cfg := redundancy.DefaultRepairConfig([]string{"x", "y"})
	cfg.MaxGenerations = 50
	res, err := redundancy.RepairProgram(
		nil, nil, cfg, redundancy.NewRand(1))
	if err == nil {
		t.Error("nil program accepted")
	}
	_ = res
}

func TestPublicWorkarounds(t *testing.T) {
	engine, err := redundancy.NewWorkaroundEngine([]redundancy.RewritingRule{{
		Name:  "noop",
		Match: []string{"x"},
		Replace: func(w []redundancy.WorkaroundOp) []redundancy.WorkaroundOp {
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if engine == nil {
		t.Fatal("nil engine")
	}
}

func TestPublicTaxonomy(t *testing.T) {
	techs := redundancy.Techniques()
	if len(techs) != 17 {
		t.Errorf("techniques = %d, want 17", len(techs))
	}
	nvp, err := redundancy.TechniqueByName("N-version programming")
	if err != nil {
		t.Fatal(err)
	}
	if nvp.Intention != redundancy.Deliberate || nvp.Type != redundancy.CodeRedundancy {
		t.Errorf("NVP classification: %+v", nvp)
	}
	if !strings.Contains(redundancy.Table1().String(), "opportunistic") {
		t.Error("Table 1 rendering broken")
	}
	if !strings.Contains(redundancy.Table2().String(), "Rejuvenation") {
		t.Error("Table 2 rendering broken")
	}
	if !strings.Contains(redundancy.ImplementationTable().String(), "internal/nvp") {
		t.Error("implementation table broken")
	}
}

func TestPublicAnalyticModels(t *testing.T) {
	if r := redundancy.NVersionReliability(3, 0.1); r < 0.97 || r > 0.98 {
		t.Errorf("R(3, 0.1) = %f", r)
	}
	if r := redundancy.NVersionReliabilityCorrelated(3, 0.1, 1); r != 0.9 {
		t.Errorf("correlated R = %f", r)
	}
}

func TestPublicRejuvenation(t *testing.T) {
	cfg := redundancy.CompletionConfig{
		Work:               100,
		CheckpointInterval: 10,
		CheckpointCost:     1,
	}
	total, err := redundancy.SimulateCompletion(cfg, redundancy.NewRand(1))
	if err != nil || total != 110 {
		t.Errorf("= (%f, %v)", total, err)
	}
	mean, err := redundancy.MeanCompletion(cfg, 3, redundancy.NewRand(1))
	if err != nil || mean != 110 {
		t.Errorf("= (%f, %v)", mean, err)
	}
	v := redundancy.NewVariant("id", func(_ context.Context, x int) (int, error) { return x, nil })
	r, err := redundancy.NewRejuvenator(v, redundancy.AgingFault{}, redundancy.NeverRejuvenate{}, redundancy.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Execute(context.Background(), 1); err != nil {
		t.Error(err)
	}
}

func TestPublicOptimizer(t *testing.T) {
	opt, err := redundancy.NewOptimizer(
		[]redundancy.OptimizerProfile[int, int]{{
			Variant: double("impl", 0),
			Latency: func(float64) float64 { return 1 },
		}},
		10, 2, func() float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if got, err := opt.Execute(context.Background(), 2); err != nil || got != 4 {
		t.Errorf("= (%d, %v)", got, err)
	}
}

func TestPublicGuardAndApproxEqual(t *testing.T) {
	crashing := redundancy.NewVariant("crash", func(_ context.Context, _ int) (int, error) {
		panic("boom")
	})
	_, err := redundancy.GuardVariant(crashing).Execute(context.Background(), 1)
	if !errors.Is(err, redundancy.ErrVariantPanicked) {
		t.Errorf("err = %v", err)
	}
	eq := redundancy.ApproxEqual(0.1)
	if !eq(1.0, 1.05) || eq(1.0, 1.2) {
		t.Error("ApproxEqual misbehaves")
	}
}

func TestPublicCompositeProcess(t *testing.T) {
	charge := redundancy.NewVariant("charge", func(_ context.Context, cents int) (int, error) {
		return cents + 1, nil
	})
	retry, err := redundancy.RetryInvoke(charge, 2)
	if err != nil {
		t.Fatal(err)
	}
	priceA := redundancy.NewVariant("a", func(_ context.Context, x int) (int, error) { return x * 2, nil })
	priceB := redundancy.NewVariant("b", func(_ context.Context, x int) (int, error) { return x * 2, nil })
	priceC := redundancy.NewVariant("c", func(_ context.Context, x int) (int, error) { return x * 3, nil })
	voting, err := redundancy.VotingInvoke(redundancy.EqualOf[int](), priceA, priceB, priceC)
	if err != nil {
		t.Fatal(err)
	}
	p, err := redundancy.NewCompositeProcess("order",
		redundancy.ProcessStep[int]{Name: "charge", Invoke: retry},
		redundancy.ProcessStep[int]{Name: "price", Invoke: voting},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute(context.Background(), 10)
	if err != nil || got != 22 {
		t.Errorf("= (%d, %v), want (22, nil)", got, err)
	}
}

func TestPublicReexpressionFamilies(t *testing.T) {
	rng := redundancy.NewRand(3)
	tr := redundancy.TranslateInts(5)
	out := tr.Apply([]int{1, 2}, rng)
	if out[1]-out[0] != 1 {
		t.Errorf("translation broke spacing: %v", out)
	}
	pm := redundancy.PermuteInts()
	if got := pm.Apply([]int{1, 2, 3}, rng); len(got) != 3 {
		t.Errorf("permute = %v", got)
	}
	jf := redundancy.JitterFloat(0.01)
	if y := jf.Apply(100, rng); y < 99 || y > 101 {
		t.Errorf("jitter = %f", y)
	}
	fam := redundancy.NewScaleFamily(4)
	_ = fam.Reexpression().Apply(2, rng)
	if fam.LastFactor() != 4 {
		t.Errorf("LastFactor = %f", fam.LastFactor())
	}
}

func TestPublicAvailabilityAlgebra(t *testing.T) {
	a, err := redundancy.SteadyStateAvailability(99*time.Hour, time.Hour)
	if err != nil || a != 0.99 {
		t.Errorf("availability = (%f, %v)", a, err)
	}
	p, err := redundancy.ParallelAvailability(0.9, 0.9)
	if err != nil || p != 0.99 {
		t.Errorf("parallel = (%f, %v)", p, err)
	}
	s, err := redundancy.SeriesAvailability(0.9, 0.9)
	if err != nil || s < 0.8099 || s > 0.8101 {
		t.Errorf("series = (%f, %v)", s, err)
	}
	r, err := redundancy.MajorityReliability(3, 0.9)
	if err != nil || r < 0.97 || r > 0.98 {
		t.Errorf("majority = (%f, %v)", r, err)
	}
	if _, err := redundancy.KOfNReliability(3, 2, 0.9); err != nil {
		t.Error(err)
	}
	d, err := redundancy.DowntimePerYear(0.999)
	if err != nil || d <= 0 {
		t.Errorf("downtime = (%v, %v)", d, err)
	}
	if len(redundancy.TechniquesByIntention(redundancy.Opportunistic)) != 5 {
		t.Error("opportunistic techniques query wrong")
	}
	if len(redundancy.TechniquesByType(redundancy.DataRedundancy)) != 3 {
		t.Error("data-redundancy techniques query wrong")
	}
	if len(redundancy.TechniquesByFaultClass(redundancy.MaliciousFaults)) != 3 {
		t.Error("malicious techniques query wrong")
	}
	if len(redundancy.TechniquesByPattern(redundancy.EnvironmentPattern)) == 0 {
		t.Error("pattern query wrong")
	}
}

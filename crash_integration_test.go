package redundancy_test

// The crash-recovery acceptance test: a seeded kill schedule of panics
// and crash errors against a supervised worker whose state lives in a
// durable WAL-backed checkpoint store. It checks the end-to-end claims:
// no acknowledged write is ever lost across any kill, every kill maps
// to exactly one supervised restart with a measured MTTR sample, a
// persistent failure escalates instead of restarting forever, panics
// injected into pattern executors are contained as variant errors, and
// no goroutine survives the run.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

type crashAccState struct {
	Sum   int64
	Count int
}

func TestCrashRecoveryAcceptance(t *testing.T) {
	before := runtime.NumGoroutine()

	dir := t.TempDir()
	camp := redundancy.RecoveryChaosCampaign(11)
	total := camp.Total()

	collector := redundancy.NewCollector()
	apply := func(s crashAccState, op int) (crashAccState, error) {
		return crashAccState{Sum: s.Sum + int64(op), Count: s.Count + 1}, nil
	}

	var (
		runner  *redundancy.DurableRunner[crashAccState, int]
		next    int
		acked   int
		fired   = make(map[int]bool)
		kills   int
		reopens int
		unsafe  bool
	)
	sup := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:      "crash-acceptance",
		Intensity: redundancy.RestartIntensity{MaxRestarts: total, Window: time.Minute},
		Observer:  collector,
	})
	if err := sup.Add(redundancy.ChildSpec{
		Name:    "worker",
		Restart: redundancy.RestartTransient,
		Init: func(context.Context) error {
			r, err := redundancy.OpenDurableRunner(dir, crashAccState{}, apply,
				redundancy.DurableOptions{SnapshotInterval: 32, Observer: collector})
			if err != nil {
				return err
			}
			reopens++
			// The acceptance claim, checked after every single kill: the
			// recovered state is exactly the acknowledged prefix.
			if r.State().Count != acked {
				unsafe = true
			}
			runner = r
			next = acked
			return nil
		},
		Run: func(ctx context.Context) error {
			for next < total {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				req := uint64(next)
				if !fired[next] && camp.PanicAt(req, "worker") {
					fired[next] = true
					kills++
					panic(fmt.Sprintf("scheduled panic at op %d", next))
				}
				if !fired[next] && camp.CrashAt(req, "worker") {
					fired[next] = true
					kills++
					return fmt.Errorf("scheduled kill at op %d", next)
				}
				if _, err := runner.Step(int(req % 31)); err != nil {
					return err
				}
				acked++
				next++
			}
			return runner.Close()
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sup.Serve(context.Background()); err != nil {
		t.Fatalf("Serve = %v", err)
	}

	if kills == 0 {
		t.Fatal("campaign scheduled no kills; the test exercised nothing")
	}
	if unsafe {
		t.Error("an acknowledged write went missing after a restart")
	}
	if acked != total {
		t.Errorf("acknowledged %d of %d ops", acked, total)
	}
	if got := sup.Restarts("worker"); got != kills {
		t.Errorf("restarts = %d, want %d (one per kill)", got, kills)
	}
	if reopens != kills+1 {
		t.Errorf("store opens = %d, want kills+1 = %d", reopens, kills+1)
	}

	// A cold reopen — the next process incarnation — sees the full
	// workload.
	final, err := redundancy.OpenDurableRunner(dir, crashAccState{}, apply,
		redundancy.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	var wantSum int64
	for i := 0; i < total; i++ {
		wantSum += int64(uint64(i) % 31)
	}
	if got := final.State(); got.Count != total || got.Sum != wantSum {
		t.Errorf("recovered state = %+v, want count %d sum %d", got, total, wantSum)
	}

	// Every kill produced an MTTR sample within budget, and the durable
	// store reported its replays and checkpoints to the same collector.
	var snap, store redundancy.ExecutorObservation
	for _, e := range collector.Snapshot() {
		switch e.Executor {
		case "crash-acceptance":
			snap = e
		case "durable":
			store = e
		}
	}
	if int(snap.Restarts) != kills || int(snap.MTTR.Count) != kills {
		t.Errorf("obs restarts=%d mttr samples=%d, want %d each", snap.Restarts, snap.MTTR.Count, kills)
	}
	if snap.MTTR.P99 > time.Second {
		t.Errorf("p99 MTTR = %v, over the 1s budget", snap.MTTR.P99)
	}
	if store.WALReplays != int64(kills)+1 {
		t.Errorf("WAL replays = %d, want %d", store.WALReplays, kills+1)
	}
	if store.Checkpoints == 0 {
		t.Error("no checkpoints recorded during the run")
	}

	// No goroutine survives the campaign.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines: %d before, %d after", before, got)
	}
}

func TestCrashEscalationAcceptance(t *testing.T) {
	// A persistent (Bohrbug) failure must exhaust the restart budget and
	// escalate rather than thrash forever.
	collector := redundancy.NewCollector()
	sup := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:      "crash-escalation",
		Intensity: redundancy.RestartIntensity{MaxRestarts: 3, Window: time.Minute},
		Observer:  collector,
	})
	if err := sup.Add(redundancy.ChildSpec{
		Name: "doomed",
		Run:  func(context.Context) error { panic("deterministic failure") },
	}); err != nil {
		t.Fatal(err)
	}
	err := sup.Serve(context.Background())
	if !errors.Is(err, redundancy.ErrSupervisorEscalated) {
		t.Fatalf("Serve = %v, want ErrSupervisorEscalated", err)
	}
	if !errors.Is(err, redundancy.ErrChildPanicked) {
		t.Errorf("escalation should carry the panic cause: %v", err)
	}
	if got := sup.Restarts("doomed"); got != 3 {
		t.Errorf("restarts before escalation = %d, want 3", got)
	}
	for _, e := range collector.Snapshot() {
		if e.Executor == "crash-escalation" && e.Escalations != 1 {
			t.Errorf("escalations observed = %d, want 1", e.Escalations)
		}
	}
}

func TestCrashPanicContainmentThroughPatterns(t *testing.T) {
	// A chaos phase that panics inside variants: the pattern executor
	// must contain the panic as a variant failure and serve from the
	// healthy alternate — redundancy over a crashing unit.
	camp := &redundancy.ChaosCampaign{
		Name: "panic-containment",
		Seed: 5,
		Phases: []redundancy.ChaosPhase{
			{Name: "panics", Requests: 200, Panics: 0.3},
		},
	}
	flaky := redundancy.NewVariant("flaky", func(_ context.Context, x int) (int, error) {
		return x, nil
	})
	steady := redundancy.NewVariant("steady", func(_ context.Context, x int) (int, error) {
		return x, nil
	})
	vs := redundancy.ChaosVariants(camp, []redundancy.Variant[int, int]{flaky})
	vs = append(vs, steady)
	accept := func(_ int, _ int) error { return nil }
	exec, err := redundancy.NewSequentialAlternatives(vs, accept, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := redundancy.RunChaosCampaign(context.Background(), camp, exec,
		func(req uint64) int { return int(req) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	totals := rep.Totals()
	if totals.Succeeded != camp.Total() {
		t.Errorf("succeeded %d of %d: injected panics leaked past the executor",
			totals.Succeeded, camp.Total())
	}

	// Direct check that the contained panic surfaces as the sentinel, not
	// as a crash of the calling goroutine.
	single, err := redundancy.NewSingle(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	sawPanic := false
	for req := uint64(0); req < 200 && !sawPanic; req++ {
		ctx := redundancy.WithChaosRequestIndex(context.Background(), req)
		if _, err := single.Execute(ctx, int(req)); err != nil {
			if !strings.Contains(err.Error(), "panic") {
				t.Fatalf("contained failure should mention the panic: %v", err)
			}
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Error("no panic was injected in 200 requests at 30%")
	}
}

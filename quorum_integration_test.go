package redundancy_test

// Experiment E27's acceptance test: a 2k+1 quorum fleet under a lying-
// replica adversary. Replicas that execute correctly, ack every
// heartbeat, and return plausible wrong answers — always, on an
// intermittent input subset, or colluding on the same inputs with the
// same lie — must never get a wrong answer accepted while the liars
// number at most k; availability holds, and the vote-disagreement
// accusation channel convicts the liars (TPR >= 0.9) without framing
// honest replicas (FPR <= 0.05). The converse matters as much: the same
// colluding pair that loses every vote at n=5 wins them at n=3, because
// 2 > k=1 — the paper's 2k+1 sizing bound demonstrated from both sides.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

func TestE27ByzantineQuorum(t *testing.T) {
	before := runtime.NumGoroutine()

	cases := []struct {
		strategy redundancy.AdversaryStrategy
		liars    int
	}{
		{redundancy.AdversaryAlways, 1},
		{redundancy.AdversaryIntermittent, 2},
		{redundancy.AdversaryCollude, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_%d_of_5", tc.strategy, tc.liars), func(t *testing.T) {
			res := runE27Fleet(t, 5, tc.strategy, tc.liars, 400)
			if res.wrong != 0 {
				t.Errorf("%d wrong answers accepted; a quorum of 5 must outvote %d %s liars",
					res.wrong, tc.liars, tc.strategy)
			}
			avail := float64(res.ok) / float64(res.total)
			if avail < 0.99 {
				t.Errorf("availability %.4f < 0.99 (%d/%d served)", avail, res.ok, res.total)
			}
			if res.tpr < 0.9 {
				t.Errorf("conviction TPR %.2f < 0.9: liars escaped (membership %v)", res.tpr, res.states)
			}
			if res.fpr > 0.05 {
				t.Errorf("conviction FPR %.2f > 0.05: honest replicas framed (membership %v)", res.fpr, res.states)
			}
		})
	}

	t.Run("collude_2_of_3_breaks_the_quorum", func(t *testing.T) {
		// The same cartel of 2, now a majority: n=3 tolerates only k=1.
		res := runE27Fleet(t, 3, redundancy.AdversaryCollude, 2, 400)
		if res.wrong == 0 {
			t.Errorf("colluding majority served no wrong answers at n=3 — the 2k+1 bound should be violated here")
		}
		if res.attacked == 0 {
			t.Fatalf("adversary never attacked; test is vacuous")
		}
	})

	// Everything shut down per subtest; demand the goroutine count
	// recovered before declaring no leaks.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked across the quorum runs: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// e27Result is what one fleet run measures.
type e27Result struct {
	total, ok, wrong, attacked int
	tpr, fpr                   float64
	states                     map[string]redundancy.ReplicaState
}

// runE27Fleet drives `requests` calls through a quorum of n replicas
// whose first `liarCount` members lie with the given strategy, and
// returns the availability, wrong-answer, and conviction measurements.
func runE27Fleet(t *testing.T, n int, strategy redundancy.AdversaryStrategy, liarCount, requests int) e27Result {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const seed = 7
	collector := redundancy.NewCollector()
	network := redundancy.NewPipeNetwork()

	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i+1)
	}
	liars := make(map[string]bool, n)
	var adversaries []*redundancy.ByzantineAdversary[int, int]
	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{Name: "byzantine-fleet"})
	for i, name := range names {
		ln, err := network.Listen(name)
		if err != nil {
			t.Fatalf("Listen(%q): %v", name, err)
		}
		var v redundancy.Variant[int, int] = redundancy.NewVariant("double",
			func(_ context.Context, x int) (int, error) { return 2 * x, nil })
		liars[name] = i < liarCount
		if liars[name] {
			adv := &redundancy.ByzantineAdversary[int, int]{
				Base:     v,
				Strategy: strategy,
				Seed:     seed,
				Replica:  name,
				Lie:      func(_, correct int) int { return correct + 2 },
				Key:      func(x int) uint64 { return uint64(x) * 0x9e3779b97f4a7c15 },
			}
			adversaries = append(adversaries, adv)
			v = adv
		}
		srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{Name: name, Observer: collector})
		if err := supervisor.Add(srv.AsChild()); err != nil {
			t.Fatalf("supervise %s: %v", name, err)
		}
		defer srv.Close()
	}
	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()
	defer func() { cancel(); <-supDone }()

	// The heartbeat detector: liars ack promptly, so only the quorum's
	// vote-disagreement accusations can convict them.
	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Interval:     50 * time.Millisecond,
		Timeout:      40 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Observer:     collector,
	})
	endpoints := make([]redundancy.ReplicaEndpoint, n)
	for i, name := range names {
		endpoints[i] = redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)}
		detector.Watch(name, network.Dial(name))
	}
	detDone := make(chan error, 1)
	go func() { detDone <- detector.Run(ctx) }()
	defer func() { cancel(); <-detDone }()

	quorum, err := redundancy.NewQuorumVariant[int, int]("quorum", redundancy.QuorumConfig{
		CallTimeout: 500 * time.Millisecond,
		Faults:      redundancy.TolerableFaults(n),
		Detector:    detector,
		Observer:    collector,
	}, redundancy.Majority(redundancy.EqualOf[int]()), redundancy.EqualOf[int](), endpoints...)
	if err != nil {
		t.Fatalf("NewQuorumVariant: %v", err)
	}
	defer quorum.Close()

	var res e27Result
	for i := 0; i < requests; i++ {
		res.total++
		attackedHere := false
		for _, adv := range adversaries {
			if adv.Lies(i) {
				attackedHere = true
			}
		}
		if attackedHere {
			res.attacked++
		}
		got, err := quorum.Execute(ctx, i)
		if err == nil && got == 2*i {
			res.ok++
		}
		if err == nil && got != 2*i {
			res.wrong++
		}
	}

	// Conviction quality: the detector's verdicts against ground truth.
	res.states = detector.States()
	var convictedLiars, convictedHonest, honest int
	for name, isLiar := range liars {
		convicted := res.states[name] != redundancy.ReplicaAlive
		switch {
		case isLiar && convicted:
			convictedLiars++
		case !isLiar:
			honest++
			if convicted {
				convictedHonest++
			}
		}
	}
	if liarCount > 0 {
		res.tpr = float64(convictedLiars) / float64(liarCount)
	}
	if honest > 0 {
		res.fpr = float64(convictedHonest) / float64(honest)
	}
	return res
}

package redundancy_test

// Ablation benchmarks: cost of the design choices DESIGN.md calls out —
// adjudicator selection, checkpoint interval, ensemble size, and
// rewriting-rule budget.

import (
	"fmt"
	"testing"

	redundancy "github.com/softwarefaults/redundancy"
)

// BenchmarkAblationAdjudicators compares the adjudication cost of the
// voting disciplines over the same 5-result vector.
func BenchmarkAblationAdjudicators(b *testing.B) {
	results := []redundancy.Result[int]{
		{Variant: "a", Value: 1},
		{Variant: "b", Value: 1},
		{Variant: "c", Value: 1},
		{Variant: "d", Value: 2},
		{Variant: "e", Value: 2},
	}
	adjudicators := []struct {
		name string
		adj  redundancy.Adjudicator[int]
	}{
		{"majority", redundancy.Majority(redundancy.EqualOf[int]())},
		{"plurality", redundancy.Plurality(redundancy.EqualOf[int]())},
		{"m-of-n(3)", redundancy.MOfN(3, redundancy.EqualOf[int]())},
		{"weighted", redundancy.Weighted(map[string]float64{"a": 2}, 1, redundancy.EqualOf[int]())},
		{"first-success", redundancy.FirstSuccess[int]()},
	}
	for _, a := range adjudicators {
		b.Run(a.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.adj.Adjudicate(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMedianVote measures the inexact-voting alternative.
func BenchmarkAblationMedianVote(b *testing.B) {
	results := []redundancy.Result[float64]{
		{Variant: "a", Value: 1.0},
		{Variant: "b", Value: 1.01},
		{Variant: "c", Value: 99.0},
	}
	adj := redundancy.MedianAdjudicator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := adj.Adjudicate(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCheckpointInterval measures how the checkpoint period
// trades steady-state step cost (snapshot frequency) for recovery work.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	type state struct{ Values [64]int }
	for _, interval := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("interval=%d", interval), func(b *testing.B) {
			runner, err := redundancy.NewCheckpointRunner(state{},
				func(s state, op int) (state, error) {
					s.Values[op%64]++
					return s, nil
				}, interval)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := runner.Step(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReplicatedStoreSize measures voting and reconciliation
// cost as the replica count grows.
func BenchmarkAblationReplicatedStoreSize(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			replicas := make([]redundancy.StoreReplica, n)
			for i := range replicas {
				replicas[i] = redundancy.NewSimStoreReplica(fmt.Sprintf("r%d", i))
			}
			store, err := redundancy.NewReplicatedStore(replicas)
			if err != nil {
				b.Fatal(err)
			}
			if err := store.Put("key", "value"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Get("key"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWorkaroundRuleBudget measures candidate generation as
// the rewriting-rule set grows.
func BenchmarkAblationWorkaroundRuleBudget(b *testing.B) {
	rules := intSetRules()
	seq := redundancy.WorkaroundSequence{
		{Name: "add", Args: []int{1}},
		{Name: "addrange", Args: []int{0, 5}},
		{Name: "addrange", Args: []int{10, 15}},
	}
	for k := 1; k <= len(rules); k++ {
		b.Run(fmt.Sprintf("rules=%d", k), func(b *testing.B) {
			engine, err := redundancy.NewWorkaroundEngine(rules[:k])
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cands := engine.Candidates(seq); len(cands) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// BenchmarkAblationRejuvenationPeriod measures the completion-time model
// cost across rejuvenation periods (the E6 sweep's inner loop).
func BenchmarkAblationRejuvenationPeriod(b *testing.B) {
	for _, n := range []int{0, 3, 12} {
		b.Run(fmt.Sprintf("everyN=%d", n), func(b *testing.B) {
			cfg := redundancy.CompletionConfig{
				Work:               1000,
				CheckpointInterval: 20,
				CheckpointCost:     1,
				RejuvenateEveryN:   n,
				RejuvenationCost:   25,
				RecoveryCost:       200,
				Fault:              redundancy.AgingFault{ID: 1, HazardAtScale: 0.02, Scale: 200, Shape: 4},
			}
			rng := redundancy.NewRand(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := redundancy.SimulateCompletion(cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

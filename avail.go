package redundancy

import (
	"time"

	"github.com/softwarefaults/redundancy/internal/avail"
)

// Classical dependability algebra: the structural formulas the
// experiments cross-check against.

// SteadyStateAvailability returns MTBF / (MTBF + MTTR).
func SteadyStateAvailability(mtbf, mttr time.Duration) (float64, error) {
	return avail.Availability(mtbf, mttr)
}

// SeriesAvailability composes availabilities (or reliabilities) in
// series: all components must be up.
func SeriesAvailability(values ...float64) (float64, error) {
	return avail.Series(values...)
}

// ParallelAvailability composes availabilities in parallel redundancy:
// the system is down only when every component is down.
func ParallelAvailability(values ...float64) (float64, error) {
	return avail.Parallel(values...)
}

// KOfNReliability returns the probability that at least k of n
// independent components with per-component probability p are up.
func KOfNReliability(n, k int, p float64) (float64, error) {
	return avail.KOfN(n, k, p)
}

// MajorityReliability returns the structural reliability of an
// n-component majority-voting system with per-component success
// probability p.
func MajorityReliability(n int, p float64) (float64, error) {
	return avail.Majority(n, p)
}

// DowntimePerYear converts an availability into expected downtime per
// 365-day year.
func DowntimePerYear(availability float64) (time.Duration, error) {
	return avail.DowntimePerYear(availability)
}
